"""Failure injection: the system degrades loudly, not silently.

Corrupted disk images, missing base images, dangling pointers, invalid
plans, misconfigured indexes — every fault surfaces as a typed exception,
and the surviving state stays consistent.
"""

import pytest

from repro import (
    Field,
    FieldType,
    MainMemoryDatabase,
    QueryError,
    RecoveryError,
    SchemaError,
    StorageError,
    eq,
)
from repro.errors import (
    CorruptImageError,
    DanglingPointerError,
    HeapOverflowError,
    PartitionFullError,
    TornWriteError,
    PlanError,
    TransactionError,
    UnsupportedOperationError,
)
from repro.storage.partition import Partition, PartitionConfig
from repro.storage.tuples import TupleRef


class TestDiskFaults:
    def test_corrupted_disk_image_raises_on_recovery(self, durable_db):
        durable_db.checkpoint()
        # Corrupt one image in place.  The garbage frames cleanly (the
        # CRC covers the bytes as written), so the failure surfaces at
        # decode — still the same typed error as checksum damage.
        key = durable_db.recovery.disk.partition_keys()[0]
        durable_db.recovery.disk.write_partition(
            key[0], key[1], b"\x00garbage\xff"
        )
        durable_db.crash()
        with pytest.raises(CorruptImageError):
            durable_db.recover()

    def test_bitflipped_disk_image_raises_typed(self, durable_db):
        durable_db.checkpoint()
        relation, partition_id = durable_db.recovery.disk.partition_keys()[0]
        durable_db.recovery.disk.damage_partition(
            relation, partition_id, mode="corrupt"
        )
        durable_db.crash()
        with pytest.raises(CorruptImageError):
            durable_db.recover()

    def test_torn_disk_image_raises_typed(self, durable_db):
        durable_db.checkpoint()
        relation, partition_id = durable_db.recovery.disk.partition_keys()[0]
        durable_db.recovery.disk.damage_partition(
            relation, partition_id, mode="torn"
        )
        durable_db.crash()
        with pytest.raises(TornWriteError):
            durable_db.recover()

    def test_missing_disk_image_raises(self, durable_db):
        durable_db.checkpoint()
        with pytest.raises(RecoveryError):
            durable_db.recovery.disk.read_partition("Employee", 999)

    def test_recovering_unknown_working_set_raises(self, durable_db):
        durable_db.checkpoint()
        durable_db.crash()
        with pytest.raises(RecoveryError):
            durable_db.recover(working_set=[("Nonexistent", 0)])


class TestStorageFaults:
    def test_dangling_pointer_read(self, figure1_db):
        relation = figure1_db.relation("Employee")
        ref = relation.index("Employee_pk").search(23)
        relation.delete(ref)
        with pytest.raises(DanglingPointerError):
            relation.fetch(ref)

    def test_pointer_into_unknown_partition(self, figure1_db):
        relation = figure1_db.relation("Employee")
        with pytest.raises(StorageError):
            relation.fetch(TupleRef(999, 0))

    def test_oversized_tuple_rejected_cleanly(self):
        db = MainMemoryDatabase()
        from repro.storage.partition import PartitionConfig

        db.create_relation(
            "Tiny",
            [Field("k", FieldType.INT), Field("s", FieldType.STR)],
            partition_config=PartitionConfig(slot_capacity=4,
                                             heap_capacity=16),
        )
        with pytest.raises(HeapOverflowError):
            db.insert("Tiny", [1, "x" * 1000])
        # The failed insert left nothing behind.
        assert len(db.select("Tiny")) == 0

    def test_partition_full_is_isolated(self):
        part = Partition(0, PartitionConfig(slot_capacity=1,
                                            heap_capacity=64))
        part.insert([1])
        with pytest.raises(PartitionFullError):
            part.insert([2])
        assert part.live_tuples == 1


class TestQueryFaults:
    def test_plan_against_dropped_relation(self, figure1_db):
        from repro.errors import CatalogError
        from repro.query.plan import ScanNode

        with pytest.raises(CatalogError):
            figure1_db.execute(ScanNode("Ghost"))

    def test_range_scan_on_hash_index_rejected(self, figure1_db):
        figure1_db.create_index(
            "Employee", "age_hash", "Age", kind="chained_hash"
        )
        from repro.query.select import select_tree_range

        with pytest.raises(UnsupportedOperationError):
            select_tree_range(
                figure1_db.relation("Employee").index("age_hash"), 1, 2
            )

    def test_projection_of_unknown_column(self, figure1_db):
        result = figure1_db.select("Employee")
        with pytest.raises(QueryError):
            figure1_db.project(result, ["Salary"])

    def test_sql_syntax_error_is_catchable(self, figure1_db):
        from repro.sql.lexer import SQLSyntaxError

        with pytest.raises(SQLSyntaxError):
            figure1_db.sql("SELEKT * FROM Employee")

    def test_sql_unknown_table(self, figure1_db):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            figure1_db.sql("SELECT * FROM Ghost")


class TestTransactionFaults:
    def test_volatile_db_rejects_recovery_calls(self, figure1_db):
        for call in (
            figure1_db.checkpoint,
            figure1_db.crash,
            figure1_db.recover,
            figure1_db.finish_recovery,
        ):
            with pytest.raises(TransactionError):
                call()

    def test_commit_failure_compensates_and_logs_nothing(self, durable_db):
        durable_db.checkpoint()
        log = durable_db.recovery.stable_log
        records_before = log.records_written
        txn = durable_db.begin()
        durable_db.insert("Employee", ["Ok", 77, 30, 455], txn=txn)
        durable_db.insert("Employee", ["Dup", 23, 30, 455], txn=txn)  # PK dup
        from repro.errors import DuplicateKeyError

        with pytest.raises(DuplicateKeyError):
            txn.commit()
        # Memory state restored...
        assert len(durable_db.select("Employee", eq("Id", 77))) == 0
        # ...and the aborted transaction's records were discarded, so a
        # crash+recover reproduces the same clean state.
        durable_db.crash()
        durable_db.recover()
        assert len(durable_db.select("Employee", eq("Id", 77))) == 0
        assert len(durable_db.select("Employee")) == 5

    def test_lock_after_abort_rejected(self, figure1_db):
        txn = figure1_db.begin()
        txn.abort()
        from repro.errors import TransactionAborted

        with pytest.raises(TransactionAborted):
            figure1_db.insert("Employee", ["X", 90, 30, 455], txn=txn)


class TestSchemaFaults:
    def test_create_duplicate_relation(self, figure1_db):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            figure1_db.create_relation(
                "Employee", [Field("x", FieldType.INT)]
            )

    def test_index_on_unknown_field(self, figure1_db):
        with pytest.raises(SchemaError):
            figure1_db.create_index("Employee", "bad", "Salary")

    def test_multiattr_index_with_unknown_component(self, figure1_db):
        with pytest.raises(SchemaError):
            figure1_db.create_index("Employee", "bad", ["Name", "Salary"])
