"""Smoke tests: every example script runs to completion.

Examples are the user-facing contract; a refactor that breaks one must
fail the suite, not the reader.
"""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    captured = io.StringIO()
    with redirect_stdout(captured):
        runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    # Every example narrates what it did.
    assert captured.getvalue().strip()


def test_all_examples_discovered():
    assert {
        "quickstart.py",
        "employee_department.py",
        "recovery_drill.py",
        "program_editor.py",
        "sql_analytics.py",
    } <= set(EXAMPLES)


class TestSQLShellRendering:
    """The REPL's rendering helpers (the loop itself needs a TTY)."""

    def _db(self):
        from repro import MainMemoryDatabase

        db = MainMemoryDatabase()
        db.sql("CREATE TABLE T (k INT, v TEXT)")
        db.sql("INSERT INTO T VALUES (1, 'one'), (2, 'two')")
        return db

    def test_render_select(self):
        from repro.sql.__main__ import render

        db = self._db()
        text = render(db.sql("SELECT * FROM T ORDER BY k"))
        assert "one" in text and "2 row(s)" in text

    def test_render_aggregate(self):
        from repro.sql.__main__ import render

        db = self._db()
        text = render(db.sql("SELECT COUNT(*) FROM T"))
        assert "2" in text

    def test_render_dml_and_ddl(self):
        from repro.sql.__main__ import render

        db = self._db()
        assert "affected" in render(db.sql("DELETE FROM T WHERE k = 1"))
        assert "inserted" in render(db.sql("INSERT INTO T VALUES (3, 'x')"))
        assert render(None) == "ok"

    def test_render_empty_result(self):
        from repro.sql.__main__ import render

        db = self._db()
        assert render(db.sql("SELECT * FROM T WHERE k = 99")) == "(empty)"

    def test_dot_commands(self, capsys):
        from repro.sql.__main__ import run_command

        db = self._db()
        assert run_command(db, ".tables") is True
        assert "T (" in capsys.readouterr().out
        assert run_command(db, ".indexes T") is True
        assert "T_pk" in capsys.readouterr().out
        assert run_command(db, ".quit") is False
        assert run_command(db, ".bogus") is True
        assert "unknown command" in capsys.readouterr().out
