"""Unit tests for relations: index-only access, updates, relocation."""

import pytest

from repro.errors import DuplicateKeyError, SchemaError, StorageError
from repro.storage.partition import PartitionConfig
from repro.storage.relation import Relation
from repro.storage.schema import Field, FieldType, Schema
from repro.storage.tuples import TupleRef


def make_relation(slots=4, heap=64, name="R") -> Relation:
    schema = Schema([Field("k", FieldType.INT), Field("s", FieldType.STR)])
    relation = Relation(name, schema, PartitionConfig(slots, heap))
    relation.create_index(f"{name}_pk", "k", kind="ttree", unique=True)
    return relation


class TestBasics:
    def test_insert_requires_an_index(self):
        schema = Schema([Field("k", FieldType.INT)])
        bare = Relation("Bare", schema)
        with pytest.raises(SchemaError):
            bare.insert([1])

    def test_insert_and_fetch(self):
        rel = make_relation()
        ref = rel.insert([1, "one"])
        assert rel.fetch(ref) == [1, "one"]
        assert len(rel) == 1

    def test_read_single_field(self):
        rel = make_relation()
        ref = rel.insert([5, "five"])
        assert rel.read_field(ref, "k") == 5
        assert rel.read_field(ref, "s") == "five"

    def test_row_arity_checked(self):
        rel = make_relation()
        with pytest.raises(SchemaError):
            rel.insert([1])

    def test_new_partitions_allocated_when_full(self):
        rel = make_relation(slots=2)
        for i in range(5):
            rel.insert([i, f"v{i}"])
        assert len(rel.partitions) >= 3
        assert len(rel) == 5

    def test_delete_removes_everywhere(self):
        rel = make_relation()
        ref = rel.insert([1, "one"])
        rel.delete(ref)
        assert len(rel) == 0
        assert rel.index("R_pk").search(1) is None

    def test_unique_violation_rolls_back_storage(self):
        rel = make_relation()
        rel.insert([1, "one"])
        with pytest.raises(DuplicateKeyError):
            rel.insert([1, "dup"])
        # The failed insert left no trace.
        assert len(rel) == 1
        assert sum(p.live_tuples for p in rel.partitions) == 1


class TestIndexManagement:
    def test_secondary_index_backfills_existing_tuples(self):
        rel = make_relation()
        refs = [rel.insert([i, f"v{i}"]) for i in range(4)]
        idx = rel.create_index("by_s", "s", kind="chained_hash")
        assert idx.search("v2") == refs[2]

    def test_duplicate_index_name_rejected(self):
        rel = make_relation()
        with pytest.raises(SchemaError):
            rel.create_index("R_pk", "s")

    def test_unknown_index_kind_rejected(self):
        rel = make_relation()
        with pytest.raises(SchemaError):
            rel.create_index("x", "s", kind="btree3000")

    def test_cannot_drop_last_index(self):
        rel = make_relation()
        with pytest.raises(SchemaError):
            rel.drop_index("R_pk")

    def test_drop_secondary_index(self):
        rel = make_relation()
        rel.create_index("by_s", "s")
        rel.drop_index("by_s")
        with pytest.raises(SchemaError):
            rel.index("by_s")

    def test_index_on_prefers_ordered(self):
        rel = make_relation()
        rel.create_index("hash_k", "k", kind="modified_linear_hash")
        found = rel.index_on("k")
        assert found.ordered

    def test_index_on_filters_by_family(self):
        rel = make_relation()
        rel.create_index("hash_k", "k", kind="modified_linear_hash")
        assert rel.index_on("k", ordered=False).kind == "modified_linear_hash"
        assert rel.index_on("k", ordered=True).kind == "ttree"
        assert rel.index_on("s", ordered=True) is None

    def test_key_extractor_reads_through_pointer(self):
        rel = make_relation()
        ref = rel.insert([9, "nine"])
        extract = rel.key_extractor("s")
        assert extract(ref) == "nine"

    def test_multi_key_extractor(self):
        rel = make_relation()
        ref = rel.insert([9, "nine"])
        extract = rel.multi_key_extractor(["k", "s"])
        assert extract(ref) == (9, "nine")


class TestUpdate:
    def test_update_plain_field(self):
        rel = make_relation()
        ref = rel.insert([1, "one"])
        rel.update(ref, "s", "uno")
        assert rel.read_field(ref, "s") == "uno"

    def test_update_indexed_field_maintains_index(self):
        rel = make_relation()
        ref = rel.insert([1, "one"])
        rel.insert([2, "two"])
        rel.update(ref, "k", 10)
        idx = rel.index("R_pk")
        assert idx.search(1) is None
        assert idx.search(10) == ref

    def test_update_heap_overflow_relocates_with_forwarding(self):
        rel = make_relation(slots=8, heap=32)
        ref = rel.insert([1, "0123456789"])
        rel.insert([2, "0123456789"])
        # Growing the string overflows partition 0's heap: the tuple moves
        # and the original pointer keeps working through forwarding.
        rel.update(ref, "s", "X" * 30)
        assert rel.read_field(ref, "s") == "X" * 30
        assert rel.resolve(ref) != ref
        # The index still finds the tuple; its stored pointer reaches the
        # same canonical location through the forwarding address.
        found = rel.index("R_pk").search(1)
        assert rel.resolve(found) == rel.resolve(ref)

    def test_update_after_relocation_follows_forwarding(self):
        rel = make_relation(slots=8, heap=32)
        ref = rel.insert([1, "0123456789"])
        rel.insert([2, "0123456789"])
        rel.update(ref, "s", "X" * 30)
        rel.update(ref, "k", 42)
        assert rel.read_field(ref, "k") == 42

    def test_update_type_checked(self):
        rel = make_relation()
        ref = rel.insert([1, "one"])
        with pytest.raises(SchemaError):
            rel.update(ref, "k", "not an int")


class TestRecoveryHooks:
    def test_change_listener_sees_insert(self):
        rel = make_relation()
        events = []
        rel.change_listener = events.append
        rel.insert([1, "one"])
        assert events[-1]["kind"] == "insert"
        assert events[-1]["values"] == [1, "one"]

    def test_change_listener_sees_update_and_delete(self):
        rel = make_relation()
        ref = rel.insert([1, "one"])
        events = []
        rel.change_listener = events.append
        rel.update(ref, "s", "x")
        rel.delete(ref)
        assert [e["kind"] for e in events] == ["update", "delete"]

    def test_relocation_emits_insert_then_forward(self):
        rel = make_relation(slots=8, heap=32)
        ref = rel.insert([1, "0123456789"])
        rel.insert([2, "0123456789"])
        events = []
        rel.change_listener = events.append
        rel.update(ref, "s", "X" * 30)
        kinds = [e["kind"] for e in events]
        assert kinds == ["insert", "forward"]

    def test_rebuild_indexes_restores_lookup(self):
        rel = make_relation()
        refs = [rel.insert([i, f"v{i}"]) for i in range(6)]
        rel.create_index("by_s", "s", kind="chained_hash")
        rel.rebuild_indexes()
        assert rel.index("R_pk").search(3) == refs[3]
        assert rel.index("by_s").search("v4") == refs[4]
        assert len(rel) == 6

    def test_adopt_partition_advances_id_counter(self):
        rel = make_relation()
        from repro.storage.partition import Partition

        rel.adopt_partition(Partition(5, rel.partition_config))
        rel.insert([1, "x"])  # must not collide with partition 5
        assert 5 in {p.id for p in rel.partitions}
