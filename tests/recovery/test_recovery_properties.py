"""Property tests for durability: crash anywhere, recover everything.

Hypothesis drives random sequences of committed transactions, aborted
transactions, autocommit operations, checkpoints, and partial log
propagation — then crashes and recovers.  The invariant: after restart
the database equals the model built from exactly the *committed*
operations.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Field, FieldType, MainMemoryDatabase

LEAN = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# An action is one of:
#   ("insert", key, value, committed)   - transactional insert
#   ("update", key_choice, value, committed)
#   ("delete", key_choice, committed)
#   ("checkpoint",)
#   ("propagate",)
actions = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.integers(0, 50),
            st.integers(0, 100),
            st.booleans(),
        ),
        st.tuples(
            st.just("update"),
            st.integers(0, 50),
            st.integers(0, 100),
            st.booleans(),
        ),
        st.tuples(st.just("delete"), st.integers(0, 50), st.booleans()),
        st.tuples(st.just("checkpoint")),
        st.tuples(st.just("propagate")),
    ),
    min_size=1,
    max_size=40,
)


def fresh_db() -> MainMemoryDatabase:
    db = MainMemoryDatabase(durable=True)
    db.create_relation(
        "T",
        [Field("k", FieldType.INT), Field("v", FieldType.INT)],
        primary_key="k",
    )
    return db


def apply_actions(db, script):
    """Run the action script; returns the committed-state model."""
    model = {}
    index = db.relation("T").index("T_pk")
    for action in script:
        kind = action[0]
        if kind == "checkpoint":
            db.checkpoint()
            continue
        if kind == "propagate":
            db.propagate_log(max_partitions=1)
            continue
        committed = action[-1]
        txn = db.begin()
        try:
            if kind == "insert":
                __, key, value, __ = action
                if key in model:
                    txn.abort()
                    continue
                db.insert("T", [key, value], txn=txn)
                if committed:
                    txn.commit()
                    model[key] = value
                else:
                    txn.abort()
            elif kind == "update":
                __, key, value, __ = action
                if key not in model:
                    txn.abort()
                    continue
                ref = index.search(key)
                db.update("T", ref, "v", value, txn=txn)
                if committed:
                    txn.commit()
                    model[key] = value
                else:
                    txn.abort()
            else:  # delete
                __, key, __ = action
                if key not in model:
                    txn.abort()
                    continue
                ref = index.search(key)
                db.delete("T", ref, txn=txn)
                if committed:
                    txn.commit()
                    del model[key]
                else:
                    txn.abort()
        except Exception:
            if txn.active:
                txn.abort()
            raise
    return model


def database_state(db):
    return {
        d["k"]: d["v"] for d in db.select("T").to_dicts()
    }


class TestDurabilityProperty:
    @LEAN
    @given(script=actions)
    def test_committed_state_survives_crash(self, script):
        db = fresh_db()
        model = apply_actions(db, script)
        assert database_state(db) == model  # sanity before the crash
        db.crash()
        db.recover()
        assert database_state(db) == model

    @LEAN
    @given(script=actions, working_fraction=st.floats(0.0, 1.0))
    def test_working_set_restart_converges(self, script, working_fraction):
        db = fresh_db()
        model = apply_actions(db, script)
        db.crash()
        keys = db.recovery.disk.partition_keys()
        cut = int(len(keys) * working_fraction)
        db.recover(working_set=keys[:cut])
        db.finish_recovery()
        assert database_state(db) == model

    @LEAN
    @given(script=actions)
    def test_double_crash_is_idempotent(self, script):
        db = fresh_db()
        model = apply_actions(db, script)
        db.crash()
        db.recover()
        db.crash()
        db.recover()
        assert database_state(db) == model
