"""Tests for the simulated disk and the change-accumulating log device."""

import pytest

from repro.errors import RecoveryError
from repro.recovery.disk import SimulatedDisk
from repro.recovery.log import StableLogBuffer
from repro.recovery.log_device import LogDevice, apply_record
from repro.storage.partition import Partition, PartitionConfig
from repro.storage.tuples import TupleRef


def fresh_partition(pid=0):
    return Partition(pid, PartitionConfig(slot_capacity=8, heap_capacity=256))


class TestSimulatedDisk:
    def test_write_read_roundtrip(self):
        disk = SimulatedDisk()
        disk.write_partition("R", 0, b"image")
        assert disk.read_partition("R", 0) == b"image"

    def test_missing_partition_raises(self):
        with pytest.raises(RecoveryError):
            SimulatedDisk().read_partition("R", 0)

    def test_io_counters(self):
        disk = SimulatedDisk()
        disk.write_partition("R", 0, b"12345")
        disk.read_partition("R", 0)
        assert disk.writes == 1 and disk.reads == 1
        assert disk.bytes_written == 5 and disk.bytes_read == 5

    def test_overwrite_replaces(self):
        disk = SimulatedDisk()
        disk.write_partition("R", 0, b"old")
        disk.write_partition("R", 0, b"new")
        assert disk.read_partition("R", 0) == b"new"

    def test_delete_and_keys(self):
        disk = SimulatedDisk()
        disk.write_partition("R", 0, b"x")
        disk.write_partition("S", 1, b"y")
        assert sorted(disk.partition_keys()) == [("R", 0), ("S", 1)]
        disk.delete_partition("R", 0)
        assert disk.partition_keys() == [("S", 1)]

    def test_reset_counters(self):
        disk = SimulatedDisk()
        disk.write_partition("R", 0, b"x")
        disk.reset_counters()
        assert disk.writes == 0 and disk.bytes_written == 0


class TestApplyRecord:
    def _record(self, kind, payload):
        from repro.recovery.log import LogRecord

        return LogRecord(1, 1, "R", 0, kind, payload)

    def test_insert_replay(self):
        part = fresh_partition()
        apply_record(
            part, self._record("insert", {"slot": 2, "values": ["a", 1]})
        )
        assert part.read(2) == ["a", 1]

    def test_update_replay(self):
        part = fresh_partition()
        part.insert_at(0, ["a", 1])
        apply_record(
            part, self._record("update", {"slot": 0, "position": 1, "value": 9})
        )
        assert part.read(0) == ["a", 9]

    def test_delete_replay(self):
        part = fresh_partition()
        part.insert_at(0, ["a", 1])
        apply_record(part, self._record("delete", {"slot": 0}))
        assert part.live_tuples == 0

    def test_forward_replay(self):
        part = fresh_partition()
        part.insert_at(0, ["a", 1])
        target = TupleRef(3, 4)
        apply_record(part, self._record("forward", {"slot": 0, "target": target}))
        assert part.forwarding(0) == target

    def test_unknown_kind_raises(self):
        with pytest.raises(RecoveryError):
            apply_record(fresh_partition(), self._record("warp", {}))

    def test_heap_exhaustion_triggers_compaction(self):
        part = Partition(0, PartitionConfig(slot_capacity=4, heap_capacity=32))
        part.insert_at(0, ["aaaaaaaaaa"])
        # Burn the heap with growing updates, abandoning old bytes.
        for __ in range(2):
            apply_record(
                part,
                self._record(
                    "update", {"slot": 0, "position": 0, "value": "b" * 10}
                ),
            )
        # This one would overflow without compaction.
        apply_record(
            part,
            self._record(
                "update", {"slot": 0, "position": 0, "value": "c" * 10}
            ),
        )
        assert part.read(0) == ["c" * 10]


class TestLogDevice:
    def _setup(self):
        disk = SimulatedDisk()
        stable = StableLogBuffer()
        device = LogDevice(disk, stable)
        base = fresh_partition()
        disk.write_partition("R", 0, base.to_bytes())
        return disk, stable, device

    def test_absorb_moves_committed_records(self):
        disk, stable, device = self._setup()
        stable.append(1, "R", 0, "insert", {"slot": 0, "values": [1]})
        stable.commit(1)
        assert device.absorb() == 1
        assert device.pending_count() == 1
        assert stable.committed_backlog == 0

    def test_propagate_applies_to_disk_copy(self):
        disk, stable, device = self._setup()
        stable.append(1, "R", 0, "insert", {"slot": 0, "values": [42]})
        stable.commit(1)
        device.absorb()
        applied = device.propagate()
        assert applied == 1
        image = Partition.from_bytes(disk.read_partition("R", 0))
        assert image.read(0) == [42]
        assert device.pending_count() == 0

    def test_propagate_respects_partition_limit(self):
        disk, stable, device = self._setup()
        disk.write_partition("R", 1, fresh_partition(1).to_bytes())
        stable.append(1, "R", 0, "insert", {"slot": 0, "values": [1]})
        stable.append(1, "R", 1, "insert", {"slot": 0, "values": [2]})
        stable.commit(1)
        device.absorb()
        device.propagate(max_partitions=1)
        assert device.pending_count() == 1

    def test_load_partition_with_merge(self):
        # The restart path: disk image + unpropagated records merged on
        # the fly.
        disk, stable, device = self._setup()
        stable.append(1, "R", 0, "insert", {"slot": 0, "values": [7]})
        stable.append(1, "R", 0, "update", {"slot": 0, "position": 0, "value": 8})
        stable.commit(1)
        device.absorb()
        merged = device.load_partition_with_merge("R", 0)
        assert merged.read(0) == [8]
        # The merged image was written back; pending records consumed.
        assert device.pending_count() == 0
        reread = Partition.from_bytes(disk.read_partition("R", 0))
        assert reread.read(0) == [8]

    def test_discard_pending_after_checkpoint(self):
        disk, stable, device = self._setup()
        stable.append(1, "R", 0, "insert", {"slot": 0, "values": [1]})
        stable.commit(1)
        device.absorb()
        assert device.discard_pending("R", 0) == 1
        assert device.pending_count() == 0

    def test_records_applied_in_lsn_order(self):
        disk, stable, device = self._setup()
        stable.append(1, "R", 0, "insert", {"slot": 0, "values": [1]})
        stable.append(1, "R", 0, "update", {"slot": 0, "position": 0, "value": 2})
        stable.append(1, "R", 0, "delete", {"slot": 0})
        stable.append(1, "R", 0, "insert", {"slot": 0, "values": [3]})
        stable.commit(1)
        device.absorb()
        device.propagate()
        image = Partition.from_bytes(disk.read_partition("R", 0))
        assert image.read(0) == [3]
