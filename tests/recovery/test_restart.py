"""End-to-end crash/restart drills (paper Section 2.4, Figure 2)."""

import pytest

from repro import eq
from repro.errors import RecoveryError
from tests.conftest import EMPLOYEES


def employee_count(db):
    return len(db.select("Employee"))


class TestCheckpointAndCrash:
    def test_checkpoint_writes_every_partition(self, durable_db):
        written = durable_db.checkpoint()
        assert written >= 2  # at least Employee + Department partitions

    def test_crash_empties_memory(self, durable_db):
        durable_db.checkpoint()
        durable_db.crash()
        assert len(durable_db.relation("Employee").partitions) == 0

    def test_volatile_db_has_no_recovery(self, figure1_db):
        from repro.errors import TransactionError

        with pytest.raises(TransactionError):
            figure1_db.crash()
        with pytest.raises(TransactionError):
            figure1_db.checkpoint()


class TestFullRestart:
    def test_checkpointed_state_restored(self, durable_db):
        durable_db.checkpoint()
        durable_db.crash()
        stats = durable_db.recover()
        assert stats.total_partitions >= 2
        assert employee_count(durable_db) == len(EMPLOYEES)

    def test_post_checkpoint_updates_merged_from_log(self, durable_db):
        durable_db.checkpoint()
        durable_db.insert("Employee", ["Late", 101, 40, 411])
        relation = durable_db.relation("Employee")
        ref = relation.index("Employee_pk").search(23)
        durable_db.update("Employee", ref, "Age", 99)
        durable_db.crash()
        stats = durable_db.recover()
        assert stats.log_records_merged >= 2
        assert employee_count(durable_db) == len(EMPLOYEES) + 1
        dave = durable_db.select("Employee", eq("Id", 23)).to_dicts()
        assert dave[0]["Age"] == 99

    def test_deletes_survive_crash(self, durable_db):
        durable_db.checkpoint()
        relation = durable_db.relation("Employee")
        ref = relation.index("Employee_pk").search(23)
        durable_db.delete("Employee", ref)
        durable_db.crash()
        durable_db.recover()
        assert employee_count(durable_db) == len(EMPLOYEES) - 1
        assert durable_db.select("Employee", eq("Id", 23)).to_dicts() == []

    def test_uncheckpointed_relation_recovers_from_log_alone(self, durable_db):
        # Partitions created after the last checkpoint get an empty base
        # image on first touch, so pure-log recovery works.
        durable_db.crash()
        durable_db.recover()
        assert employee_count(durable_db) == len(EMPLOYEES)

    def test_aborted_transactions_leave_no_trace(self, durable_db):
        durable_db.checkpoint()
        txn = durable_db.begin()
        durable_db.insert("Employee", ["Ghost", 500, 30, 459], txn=txn)
        txn.abort()
        durable_db.crash()
        durable_db.recover()
        assert durable_db.select("Employee", eq("Id", 500)).to_dicts() == []

    def test_committed_transactions_survive(self, durable_db):
        durable_db.checkpoint()
        with durable_db.begin() as txn:
            durable_db.insert("Employee", ["Kept", 501, 30, 459], txn=txn)
        durable_db.crash()
        durable_db.recover()
        assert len(durable_db.select("Employee", eq("Id", 501))) == 1

    def test_repeated_crash_recover_cycles(self, durable_db):
        durable_db.checkpoint()
        for round_no in range(3):
            durable_db.insert(
                "Employee", [f"R{round_no}", 600 + round_no, 30, 459]
            )
            durable_db.crash()
            durable_db.recover()
        assert employee_count(durable_db) == len(EMPLOYEES) + 3


class TestWorkingSetRestart:
    def test_working_set_loads_first_rest_in_background(self, durable_db):
        durable_db.checkpoint()
        durable_db.crash()
        manager = durable_db.recovery
        employee_parts = [
            ("Employee", pid)
            for (rel, pid) in manager.disk.partition_keys()
            if rel == "Employee"
        ]
        stats = durable_db.recover(working_set=employee_parts)
        assert stats.working_set_partitions == len(employee_parts)
        # Employee is usable immediately.
        assert employee_count(durable_db) == len(EMPLOYEES)
        # Department still queued.
        assert manager.background_remaining > 0
        loaded = durable_db.finish_recovery()
        assert loaded == manager.background_remaining == 0 or loaded > 0
        assert len(durable_db.select("Department")) == 4

    def test_background_reload_step_batches(self, durable_db):
        durable_db.checkpoint()
        durable_db.crash()
        durable_db.recover(working_set=[])
        manager = durable_db.recovery
        remaining_before = manager.background_remaining
        assert remaining_before >= 2
        assert manager.background_reload_step(batch=1) == 1
        assert manager.background_remaining == remaining_before - 1
        durable_db.finish_recovery()
        assert manager.background_remaining == 0

    def test_unknown_working_set_partition_rejected(self, durable_db):
        durable_db.checkpoint()
        durable_db.crash()
        with pytest.raises(RecoveryError):
            durable_db.recover(working_set=[("Employee", 999)])

    def test_foreign_key_pointers_valid_after_restart(self, durable_db):
        # Pointers are (partition, slot) pairs; reloading partitions at
        # their original ids keeps every stored TupleRef valid.
        durable_db.checkpoint()
        durable_db.crash()
        durable_db.recover()
        result = durable_db.join(
            "Employee", "Department", on=("Dept_Id", "Id"), method="auto"
        )
        pairs = {
            (d["Employee.Name"], d["Department.Name"])
            for d in result.to_dicts()
        }
        assert ("Dave", "Toy") in pairs
        assert len(pairs) == len(EMPLOYEES)


class TestLogPropagation:
    def test_propagate_log_trims_accumulation(self, durable_db):
        durable_db.checkpoint()
        durable_db.insert("Employee", ["New", 700, 30, 459])
        assert durable_db.recovery.log_device.pending_count() == 0  # not absorbed yet
        moved = durable_db.propagate_log()
        assert moved == 1
        # After propagation a crash recovery needs no log merge.
        durable_db.crash()
        stats = durable_db.recover()
        assert stats.log_records_merged == 0
        assert len(durable_db.select("Employee", eq("Id", 700))) == 1
