"""Crash-timing windows: checkpoint, append-to-flush, and propagation.

Each test injects a fault at a precise point in the durability pipeline,
crashes, and asserts restart reproduces exactly the committed state —
the Section 4 claim that a crash can hit any window without losing
committed work or resurrecting uncommitted work.
"""

import pytest

from repro import eq
from repro.errors import InjectedFaultError
from repro.fault import FaultPolicy
from repro.fault import runtime as fault_runtime
from repro.obs import runtime as obs_runtime
from tests.conftest import EMPLOYEES, build_figure1_db


@pytest.fixture(autouse=True)
def clean_runtime():
    yield
    fault_runtime.deactivate()
    obs_runtime.deactivate()


def _employee_names(db):
    return sorted(
        row[0] for row in db.select("Employee").materialize()
    )


class TestCrashDuringCheckpoint:
    def test_partial_checkpoint_recovers_committed_state(self, durable_db):
        durable_db.checkpoint()  # base images for every partition
        durable_db.insert("Employee", ["Window", 90, 31, 459])
        committed = _employee_names(durable_db)
        disk = durable_db.recovery.disk
        writes_before = disk.writes
        # Department partitions are checkpointed first (creation order),
        # so failing the first Employee partition models a crash with
        # the checkpoint half done.
        durable_db.configure_faults(
            seed=1,
            policies=[
                FaultPolicy(
                    "checkpoint.partition",
                    one_shot=True,
                    match={"relation": "Employee"},
                )
            ],
        )
        with pytest.raises(InjectedFaultError):
            durable_db.checkpoint()
        durable_db.configure_faults()
        # The crash hit mid-checkpoint: some partitions were imaged...
        assert disk.writes > writes_before
        # ...but not all of them.
        assert disk.writes < writes_before + len(
            durable_db.recovery.disk.partition_keys()
        )
        durable_db.crash()
        stats = durable_db.recover()
        assert stats.fully_recovered
        assert _employee_names(durable_db) == committed
        assert len(durable_db.select("Employee", eq("Id", 90))) == 1

    def test_interrupted_checkpoint_then_more_commits(self, durable_db):
        # Commits that land *after* the failed checkpoint still recover:
        # the half-imaged partitions merge their records onto the fresh
        # image, the rest onto the old one.
        durable_db.checkpoint()
        durable_db.configure_faults(
            seed=1,
            policies=[
                FaultPolicy(
                    "checkpoint.partition",
                    one_shot=True,
                    match={"relation": "Employee"},
                )
            ],
        )
        durable_db.insert("Employee", ["Before", 91, 33, 409])
        with pytest.raises(InjectedFaultError):
            durable_db.checkpoint()
        durable_db.configure_faults()
        durable_db.insert("Employee", ["After", 92, 34, 411])
        committed = _employee_names(durable_db)
        durable_db.crash()
        durable_db.recover()
        assert _employee_names(durable_db) == committed


class TestCrashBetweenAppendAndFlush:
    def test_committed_but_unpropagated_records_survive(self, durable_db):
        durable_db.checkpoint()
        durable_db.insert("Employee", ["Stable", 93, 28, 455])
        # The record sits committed in the battery-backed stable buffer;
        # nothing propagated it to the disk copy yet.
        assert durable_db.recovery.stable_log.committed_backlog > 0
        durable_db.crash()
        durable_db.recover()
        assert len(durable_db.select("Employee", eq("Id", 93))) == 1
        assert len(durable_db.select("Employee")) == len(EMPLOYEES) + 1

    def test_uncommitted_transaction_dies_with_the_crash(self, durable_db):
        durable_db.checkpoint()
        log = durable_db.recovery.stable_log
        # Model a transaction caught mid-append: records written to the
        # stable buffer, commit record never arrived.
        txn = durable_db.begin()
        durable_db.insert("Employee", ["Ghost", 94, 40, 455], txn=txn)
        log.append(txn.id, "Employee", 0, "insert", {"slot": 99,
                                                     "values": []})
        assert log.pending_transactions == 1
        durable_db.crash()
        durable_db.recover()
        # Deferred updates: the uncommitted work never existed.
        assert log.pending_transactions == 0
        assert len(durable_db.select("Employee", eq("Id", 94))) == 0
        assert _employee_names(durable_db) == sorted(
            name for name, *_ in EMPLOYEES
        )

    def test_mixed_commit_and_crash(self, durable_db):
        durable_db.checkpoint()
        committed_txn = durable_db.begin()
        durable_db.insert(
            "Employee", ["Kept", 95, 29, 459], txn=committed_txn
        )
        committed_txn.commit()
        doomed_txn = durable_db.begin()
        durable_db.insert("Employee", ["Lost", 96, 30, 459], txn=doomed_txn)
        durable_db.crash()
        durable_db.recover()
        assert len(durable_db.select("Employee", eq("Id", 95))) == 1
        assert len(durable_db.select("Employee", eq("Id", 96))) == 0


class TestCrashDuringPropagation:
    def test_flush_fault_requeues_and_recovers(self, durable_db):
        durable_db.checkpoint()
        durable_db.insert("Employee", ["Flush", 97, 26, 411])
        device = durable_db.recovery.log_device
        durable_db.configure_faults(
            seed=1,
            policies=[FaultPolicy("log.flush", one_shot=True)],
        )
        with pytest.raises(InjectedFaultError):
            durable_db.propagate_log()
        durable_db.configure_faults()
        # The interrupted flush lost nothing: the records went back to
        # the accumulation log...
        assert device.pending_count() > 0
        durable_db.crash()
        durable_db.recover()
        # ...and restart merges them on the fly.
        assert len(durable_db.select("Employee", eq("Id", 97))) == 1

    def test_retried_propagation_applies_once(self, durable_db):
        durable_db.checkpoint()
        durable_db.insert("Employee", ["Once", 98, 27, 409])
        durable_db.configure_faults(
            seed=1,
            policies=[FaultPolicy("log.flush", one_shot=True)],
        )
        with pytest.raises(InjectedFaultError):
            durable_db.propagate_log()
        durable_db.configure_faults()
        durable_db.propagate_log()  # retry succeeds
        assert durable_db.recovery.log_device.pending_count() == 0
        durable_db.crash()
        durable_db.recover()
        rows = durable_db.select("Employee", eq("Id", 98))
        assert len(rows) == 1  # applied exactly once, not twice


class TestCrashDuringReplication:
    """Faults on the shipping hops: every window replays exactly.

    The ``repl.ship`` / ``repl.apply`` fault points fire parent-side in
    the shipper, so a fixed seed replays the same fault sequence; the
    retry budget plus the replica's applied-LSN watermark must turn
    every injected mid-ship, mid-apply, and mid-promotion failure into
    an exact, exactly-once replay.
    """

    def test_mid_ship_corruption_replays_exactly(self, durable_db):
        durable_db.configure_replication(channel="inline", retry_attempts=3)
        durable_db.insert("Employee", ["Shipley", 90, 30, 459])
        committed = _employee_names(durable_db)
        durable_db.configure_faults(
            seed=31,
            policies=[
                FaultPolicy("repl.ship", action="corrupt", one_shot=True)
            ],
        )
        stats = durable_db.demote(reason="mid-ship window")
        durable_db.configure_faults()
        shipper = durable_db.replication.shipper
        # The corrupted batch was rejected whole and reshipped clean...
        assert shipper.rejected_batches == 1
        assert stats.records_replayed == 1
        # ...and the promoted catalog is exactly the committed state.
        assert _employee_names(durable_db) == committed
        assert len(durable_db.select("Employee", eq("Id", 90))) == 1

    def test_mid_apply_fault_replays_exactly(self, durable_db):
        durable_db.configure_replication(channel="inline", retry_attempts=3)
        durable_db.insert("Employee", ["Applegate", 91, 33, 409])
        committed = _employee_names(durable_db)
        durable_db.configure_faults(
            seed=32,
            policies=[
                FaultPolicy("repl.apply", action="error", one_shot=True)
            ],
        )
        durable_db.demote(reason="mid-apply window")
        durable_db.configure_faults()
        shipper = durable_db.replication.shipper
        assert shipper.ship_errors == 1
        assert shipper.ship_retries == 1
        assert _employee_names(durable_db) == committed

    def test_mid_promotion_multi_batch_replay_is_exactly_once(
        self, durable_db
    ):
        # One record per batch: the promotion's suffix replay crosses
        # several faulted hops, and every record must apply once.  The
        # checkpoint pins the replay suffix to exactly the new inserts.
        durable_db.checkpoint()
        durable_db.configure_replication(
            channel="inline", batch_records=1, retry_attempts=3
        )
        for i in range(4):
            durable_db.insert(
                "Employee", [f"Window{i}", 92 + i, 30 + i, 459]
            )
        committed = _employee_names(durable_db)
        durable_db.configure_faults(
            seed=33,
            policies=[
                FaultPolicy("repl.apply", action="error", every_nth=2)
            ],
        )
        durable_db.demote(reason="mid-promotion window")
        durable_db.configure_faults()
        replica = durable_db.replication.channel.request("state")
        assert replica["records_applied"] == 4
        assert replica["records_skipped"] == 0
        assert _employee_names(durable_db) == committed

    def test_faulted_promotion_replays_deterministically(self):
        def one_pass():
            db = build_figure1_db(durable=True)
            db.configure_replication(
                channel="inline", batch_records=1, retry_attempts=3
            )
            for i in range(3):
                db.insert("Employee", [f"Det{i}", 80 + i, 40 + i, 411])
            db.configure_faults(
                seed=34,
                policies=[
                    FaultPolicy("repl.ship", action="corrupt", every_nth=2),
                    FaultPolicy("repl.apply", action="error", one_shot=True),
                ],
            )
            db.demote(reason="deterministic window")
            db.configure_faults()
            shipper = db.replication.shipper
            return _employee_names(db), shipper.state()

        first_names, first_state = one_pass()
        second_names, second_state = one_pass()
        assert first_names == second_names
        # Same seed, same fault plan: retry/rejection totals replay.
        assert first_state == second_state
