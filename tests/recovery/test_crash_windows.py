"""Crash-timing windows: checkpoint, append-to-flush, and propagation.

Each test injects a fault at a precise point in the durability pipeline,
crashes, and asserts restart reproduces exactly the committed state —
the Section 4 claim that a crash can hit any window without losing
committed work or resurrecting uncommitted work.
"""

import pytest

from repro import eq
from repro.errors import InjectedFaultError
from repro.fault import FaultPolicy
from repro.fault import runtime as fault_runtime
from repro.obs import runtime as obs_runtime
from tests.conftest import EMPLOYEES


@pytest.fixture(autouse=True)
def clean_runtime():
    yield
    fault_runtime.deactivate()
    obs_runtime.deactivate()


def _employee_names(db):
    return sorted(
        row[0] for row in db.select("Employee").materialize()
    )


class TestCrashDuringCheckpoint:
    def test_partial_checkpoint_recovers_committed_state(self, durable_db):
        durable_db.checkpoint()  # base images for every partition
        durable_db.insert("Employee", ["Window", 90, 31, 459])
        committed = _employee_names(durable_db)
        disk = durable_db.recovery.disk
        writes_before = disk.writes
        # Department partitions are checkpointed first (creation order),
        # so failing the first Employee partition models a crash with
        # the checkpoint half done.
        durable_db.configure_faults(
            seed=1,
            policies=[
                FaultPolicy(
                    "checkpoint.partition",
                    one_shot=True,
                    match={"relation": "Employee"},
                )
            ],
        )
        with pytest.raises(InjectedFaultError):
            durable_db.checkpoint()
        durable_db.configure_faults()
        # The crash hit mid-checkpoint: some partitions were imaged...
        assert disk.writes > writes_before
        # ...but not all of them.
        assert disk.writes < writes_before + len(
            durable_db.recovery.disk.partition_keys()
        )
        durable_db.crash()
        stats = durable_db.recover()
        assert stats.fully_recovered
        assert _employee_names(durable_db) == committed
        assert len(durable_db.select("Employee", eq("Id", 90))) == 1

    def test_interrupted_checkpoint_then_more_commits(self, durable_db):
        # Commits that land *after* the failed checkpoint still recover:
        # the half-imaged partitions merge their records onto the fresh
        # image, the rest onto the old one.
        durable_db.checkpoint()
        durable_db.configure_faults(
            seed=1,
            policies=[
                FaultPolicy(
                    "checkpoint.partition",
                    one_shot=True,
                    match={"relation": "Employee"},
                )
            ],
        )
        durable_db.insert("Employee", ["Before", 91, 33, 409])
        with pytest.raises(InjectedFaultError):
            durable_db.checkpoint()
        durable_db.configure_faults()
        durable_db.insert("Employee", ["After", 92, 34, 411])
        committed = _employee_names(durable_db)
        durable_db.crash()
        durable_db.recover()
        assert _employee_names(durable_db) == committed


class TestCrashBetweenAppendAndFlush:
    def test_committed_but_unpropagated_records_survive(self, durable_db):
        durable_db.checkpoint()
        durable_db.insert("Employee", ["Stable", 93, 28, 455])
        # The record sits committed in the battery-backed stable buffer;
        # nothing propagated it to the disk copy yet.
        assert durable_db.recovery.stable_log.committed_backlog > 0
        durable_db.crash()
        durable_db.recover()
        assert len(durable_db.select("Employee", eq("Id", 93))) == 1
        assert len(durable_db.select("Employee")) == len(EMPLOYEES) + 1

    def test_uncommitted_transaction_dies_with_the_crash(self, durable_db):
        durable_db.checkpoint()
        log = durable_db.recovery.stable_log
        # Model a transaction caught mid-append: records written to the
        # stable buffer, commit record never arrived.
        txn = durable_db.begin()
        durable_db.insert("Employee", ["Ghost", 94, 40, 455], txn=txn)
        log.append(txn.id, "Employee", 0, "insert", {"slot": 99,
                                                     "values": []})
        assert log.pending_transactions == 1
        durable_db.crash()
        durable_db.recover()
        # Deferred updates: the uncommitted work never existed.
        assert log.pending_transactions == 0
        assert len(durable_db.select("Employee", eq("Id", 94))) == 0
        assert _employee_names(durable_db) == sorted(
            name for name, *_ in EMPLOYEES
        )

    def test_mixed_commit_and_crash(self, durable_db):
        durable_db.checkpoint()
        committed_txn = durable_db.begin()
        durable_db.insert(
            "Employee", ["Kept", 95, 29, 459], txn=committed_txn
        )
        committed_txn.commit()
        doomed_txn = durable_db.begin()
        durable_db.insert("Employee", ["Lost", 96, 30, 459], txn=doomed_txn)
        durable_db.crash()
        durable_db.recover()
        assert len(durable_db.select("Employee", eq("Id", 95))) == 1
        assert len(durable_db.select("Employee", eq("Id", 96))) == 0


class TestCrashDuringPropagation:
    def test_flush_fault_requeues_and_recovers(self, durable_db):
        durable_db.checkpoint()
        durable_db.insert("Employee", ["Flush", 97, 26, 411])
        device = durable_db.recovery.log_device
        durable_db.configure_faults(
            seed=1,
            policies=[FaultPolicy("log.flush", one_shot=True)],
        )
        with pytest.raises(InjectedFaultError):
            durable_db.propagate_log()
        durable_db.configure_faults()
        # The interrupted flush lost nothing: the records went back to
        # the accumulation log...
        assert device.pending_count() > 0
        durable_db.crash()
        durable_db.recover()
        # ...and restart merges them on the fly.
        assert len(durable_db.select("Employee", eq("Id", 97))) == 1

    def test_retried_propagation_applies_once(self, durable_db):
        durable_db.checkpoint()
        durable_db.insert("Employee", ["Once", 98, 27, 409])
        durable_db.configure_faults(
            seed=1,
            policies=[FaultPolicy("log.flush", one_shot=True)],
        )
        with pytest.raises(InjectedFaultError):
            durable_db.propagate_log()
        durable_db.configure_faults()
        durable_db.propagate_log()  # retry succeeds
        assert durable_db.recovery.log_device.pending_count() == 0
        durable_db.crash()
        durable_db.recover()
        rows = durable_db.select("Employee", eq("Id", 98))
        assert len(rows) == 1  # applied exactly once, not twice
