"""Tests for log records and the stable log buffer."""

import pytest

from repro.recovery.log import StableLogBuffer


class TestStableLogBuffer:
    def test_lsns_monotone(self):
        log = StableLogBuffer()
        r1 = log.append(1, "R", 0, "insert", {"slot": 0, "values": [1]})
        r2 = log.append(1, "R", 0, "insert", {"slot": 1, "values": [2]})
        assert r2.lsn > r1.lsn

    def test_records_invisible_until_commit(self):
        log = StableLogBuffer()
        log.append(1, "R", 0, "insert", {"slot": 0, "values": [1]})
        assert log.drain_committed() == []
        log.commit(1)
        assert len(log.drain_committed()) == 1

    def test_drain_removes_records(self):
        log = StableLogBuffer()
        log.append(1, "R", 0, "insert", {})
        log.commit(1)
        assert len(log.drain_committed()) == 1
        assert log.drain_committed() == []

    def test_drain_preserves_lsn_order_across_txns(self):
        log = StableLogBuffer()
        log.append(1, "R", 0, "insert", {"n": 1})
        log.append(2, "R", 0, "insert", {"n": 2})
        log.append(1, "R", 0, "insert", {"n": 3})
        log.commit(2)
        log.commit(1)
        drained = log.drain_committed()
        assert [r.payload["n"] for r in drained] == [1, 2, 3]

    def test_abort_removes_pending_records(self):
        # "If the transaction aborts, then the log entry is removed and
        # no undo is needed."
        log = StableLogBuffer()
        log.append(1, "R", 0, "insert", {})
        log.append(1, "R", 0, "delete", {})
        removed = log.abort(1)
        assert removed == 2
        log.commit(1)
        assert log.drain_committed() == []

    def test_commit_record_carries_lsn(self):
        log = StableLogBuffer()
        log.append(1, "R", 0, "insert", {})
        commit = log.commit(1)
        assert commit.txn_id == 1
        assert commit.lsn > 0

    def test_counters(self):
        log = StableLogBuffer()
        log.append(1, "R", 0, "insert", {})
        log.append(2, "R", 0, "insert", {})
        log.commit(1)
        log.abort(2)
        assert log.records_written == 2
        assert log.commits == 1
        assert log.aborts == 1

    def test_backlog_accounting(self):
        log = StableLogBuffer()
        log.append(1, "R", 0, "insert", {})
        assert log.pending_transactions == 1
        assert log.committed_backlog == 0
        log.commit(1)
        assert log.pending_transactions == 0
        assert log.committed_backlog == 1

    def test_crash_drops_uncommitted_keeps_committed(self):
        log = StableLogBuffer()
        log.append(1, "R", 0, "insert", {})
        log.commit(1)
        log.append(2, "R", 0, "insert", {})  # in-flight at crash time
        log.survive_crash()
        drained = log.drain_committed()
        assert len(drained) == 1
        assert drained[0].txn_id == 1
