"""Multi-threaded transaction stress: 2PL keeps invariants intact.

The classic bank-transfer test: concurrent transactions move money
between accounts; partition-level strict 2PL must keep the total balance
constant, and deadlock victims must retry cleanly.
"""

import random
import threading

import pytest

from repro import DeadlockError, Field, FieldType, MainMemoryDatabase
from repro.errors import LockTimeoutError

N_ACCOUNTS = 40
INITIAL_BALANCE = 100


@pytest.fixture
def bank():
    db = MainMemoryDatabase()
    db.create_relation(
        "Account",
        [Field("Id", FieldType.INT), Field("Balance", FieldType.INT)],
        primary_key="Id",
    )
    for account_id in range(N_ACCOUNTS):
        db.insert("Account", [account_id, INITIAL_BALANCE])
    return db


def total_balance(db):
    return sum(d["Balance"] for d in db.select("Account").to_dicts())


def transfer(db, index, payer_id, payee_id, amount):
    """One transfer transaction; returns True if committed.

    The balance reads take S locks through the transaction (the engine's
    ``fetch(..., txn=...)``), so a concurrent read-modify-write on the
    same partition resolves by upgrade-deadlock detection instead of a
    lost update.
    """
    txn = db.begin()
    try:
        payer = index.search(payer_id)
        payee = index.search(payee_id)
        payer_balance = db.fetch("Account", payer, txn=txn)["Balance"]
        payee_balance = db.fetch("Account", payee, txn=txn)["Balance"]
        db.update("Account", payer, "Balance", payer_balance - amount, txn=txn)
        db.update("Account", payee, "Balance", payee_balance + amount, txn=txn)
        txn.commit()
        return True
    except (DeadlockError, LockTimeoutError):
        # The lock() failure already aborted the transaction.
        if txn.active:
            txn.abort()
        return False


class TestConcurrentTransfers:
    def test_total_balance_invariant(self, bank):
        index = bank.relation("Account").index("Account_pk")
        committed = []
        errors = []

        def worker(seed):
            rng = random.Random(seed)
            done = 0
            for __ in range(60):
                payer = rng.randrange(N_ACCOUNTS)
                payee = rng.randrange(N_ACCOUNTS)
                if payer == payee:
                    continue
                try:
                    if transfer(bank, index, payer, payee, rng.randrange(1, 10)):
                        done += 1
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)
                    return
            committed.append(done)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        assert not errors, errors
        assert not any(t.is_alive() for t in threads), "worker hung"
        # Conservation of money despite interleaving and deadlock aborts.
        assert total_balance(bank) == N_ACCOUNTS * INITIAL_BALANCE
        # Forward progress happened.
        assert sum(committed) > 0

    def test_readers_do_not_block_each_other(self, bank):
        results = []

        def reader():
            txn = bank.begin()
            results.append(len(bank.select("Account", txn=txn)))
            txn.commit()

        threads = [threading.Thread(target=reader) for __ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(20)
        assert results == [N_ACCOUNTS] * 6

    def test_aborted_transfer_leaves_no_partial_state(self, bank):
        index = bank.relation("Account").index("Account_pk")
        txn = bank.begin()
        payer = index.search(0)
        bank.update("Account", payer, "Balance", 0, txn=txn)
        txn.abort()
        assert bank.fetch("Account", payer)["Balance"] == INITIAL_BALANCE
        assert total_balance(bank) == N_ACCOUNTS * INITIAL_BALANCE
