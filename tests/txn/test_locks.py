"""Tests for the partition-granularity lock manager."""

import threading
import time

import pytest

from repro.errors import DeadlockError, LockTimeoutError
from repro.txn.locks import LockManager, LockMode

R0 = ("R", 0)
R1 = ("R", 1)
REL = ("R", None)


class TestGrantsAndCompatibility:
    def test_shared_locks_compatible(self):
        lm = LockManager()
        lm.acquire(1, R0, LockMode.SHARED)
        lm.acquire(2, R0, LockMode.SHARED)
        assert {t for t, __ in lm.holders(R0)} == {1, 2}

    def test_exclusive_excludes_others(self):
        lm = LockManager()
        lm.acquire(1, R0, LockMode.EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            lm.acquire(2, R0, LockMode.SHARED, timeout=0.05)

    def test_reacquire_is_noop(self):
        lm = LockManager()
        lm.acquire(1, R0, LockMode.EXCLUSIVE)
        lm.acquire(1, R0, LockMode.EXCLUSIVE)
        lm.acquire(1, R0, LockMode.SHARED)  # weaker request satisfied
        assert lm.holdings(1)[R0] is LockMode.EXCLUSIVE

    def test_upgrade_without_contention(self):
        lm = LockManager()
        lm.acquire(1, R0, LockMode.SHARED)
        lm.acquire(1, R0, LockMode.EXCLUSIVE)
        assert lm.holdings(1)[R0] is LockMode.EXCLUSIVE

    def test_different_partitions_independent(self):
        lm = LockManager()
        lm.acquire(1, R0, LockMode.EXCLUSIVE)
        lm.acquire(2, R1, LockMode.EXCLUSIVE)  # no conflict
        assert lm.holdings(1) == {R0: LockMode.EXCLUSIVE}
        assert lm.holdings(2) == {R1: LockMode.EXCLUSIVE}

    def test_relation_level_resource_distinct_from_partitions(self):
        lm = LockManager()
        lm.acquire(1, REL, LockMode.EXCLUSIVE)
        lm.acquire(2, R0, LockMode.EXCLUSIVE)  # partition lock unaffected
        assert lm.holders(R0) == [(2, LockMode.EXCLUSIVE)]


class TestReleaseAndWakeup:
    def test_release_all_clears_holdings(self):
        lm = LockManager()
        lm.acquire(1, R0, LockMode.EXCLUSIVE)
        lm.acquire(1, R1, LockMode.SHARED)
        lm.release_all(1)
        assert lm.holdings(1) == {}
        assert lm.holders(R0) == []

    def test_waiter_woken_on_release(self):
        lm = LockManager()
        lm.acquire(1, R0, LockMode.EXCLUSIVE)
        acquired = threading.Event()

        def contender():
            lm.acquire(2, R0, LockMode.EXCLUSIVE, timeout=5)
            acquired.set()

        thread = threading.Thread(target=contender)
        thread.start()
        time.sleep(0.05)
        assert not acquired.is_set()
        lm.release_all(1)
        thread.join(timeout=5)
        assert acquired.is_set()

    def test_fifo_shared_does_not_overtake_exclusive_waiter(self):
        lm = LockManager()
        lm.acquire(1, R0, LockMode.SHARED)
        order = []

        def writer():
            lm.acquire(2, R0, LockMode.EXCLUSIVE, timeout=5)
            order.append("writer")
            time.sleep(0.05)
            lm.release_all(2)

        def reader():
            lm.acquire(3, R0, LockMode.SHARED, timeout=5)
            order.append("reader")
            lm.release_all(3)

        w = threading.Thread(target=writer)
        w.start()
        time.sleep(0.05)  # writer queues behind txn 1's S lock
        r = threading.Thread(target=reader)
        r.start()
        time.sleep(0.05)
        lm.release_all(1)
        w.join(5)
        r.join(5)
        assert order == ["writer", "reader"]

    def test_multiple_shared_waiters_granted_together(self):
        lm = LockManager()
        lm.acquire(1, R0, LockMode.EXCLUSIVE)
        done = []

        def reader(txn_id):
            lm.acquire(txn_id, R0, LockMode.SHARED, timeout=5)
            done.append(txn_id)

        threads = [
            threading.Thread(target=reader, args=(t,)) for t in (2, 3, 4)
        ]
        for t in threads:
            t.start()
        time.sleep(0.05)
        lm.release_all(1)
        for t in threads:
            t.join(5)
        assert sorted(done) == [2, 3, 4]


class TestDeadlockDetection:
    def test_two_transaction_cycle_detected(self):
        lm = LockManager()
        lm.acquire(1, R0, LockMode.EXCLUSIVE)
        lm.acquire(2, R1, LockMode.EXCLUSIVE)
        errors = []

        def t1():
            try:
                lm.acquire(1, R1, LockMode.EXCLUSIVE, timeout=5)
            except DeadlockError:
                errors.append(1)
                lm.release_all(1)

        def t2():
            time.sleep(0.1)  # let t1 queue first
            try:
                lm.acquire(2, R0, LockMode.EXCLUSIVE, timeout=5)
            except DeadlockError:
                errors.append(2)
                lm.release_all(2)

        a, b = threading.Thread(target=t1), threading.Thread(target=t2)
        a.start()
        b.start()
        a.join(5)
        b.join(5)
        assert errors == [2]  # the newcomer is the victim

    def test_upgrade_deadlock_detected(self):
        lm = LockManager()
        lm.acquire(1, R0, LockMode.SHARED)
        lm.acquire(2, R0, LockMode.SHARED)
        victim = []

        def upgrade(txn_id, delay):
            time.sleep(delay)
            try:
                lm.acquire(txn_id, R0, LockMode.EXCLUSIVE, timeout=5)
            except DeadlockError:
                victim.append(txn_id)
                lm.release_all(txn_id)

        a = threading.Thread(target=upgrade, args=(1, 0))
        b = threading.Thread(target=upgrade, args=(2, 0.1))
        a.start()
        b.start()
        a.join(5)
        b.join(5)
        assert victim == [2]

    def test_no_false_positive_on_chain(self):
        # 1 -> 2 is a wait, not a cycle.
        lm = LockManager()
        lm.acquire(2, R0, LockMode.EXCLUSIVE)
        with pytest.raises(LockTimeoutError):
            lm.acquire(1, R0, LockMode.EXCLUSIVE, timeout=0.05)
