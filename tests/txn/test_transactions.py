"""Tests for transactions: deferred updates, 2PL, abort semantics."""

import threading

import pytest

from repro import eq
from repro.errors import (
    DeadlockError,
    DuplicateKeyError,
    TransactionAborted,
)
from repro.txn.locks import LockMode
from repro.txn.transaction import TransactionManager, TxnState


class TestLifecycle:
    def test_begin_commit(self, figure1_db):
        txn = figure1_db.begin()
        assert txn.active
        txn.commit()
        assert txn.state is TxnState.COMMITTED

    def test_begin_abort(self, figure1_db):
        txn = figure1_db.begin()
        txn.abort()
        assert txn.state is TxnState.ABORTED

    def test_operations_after_end_rejected(self, figure1_db):
        txn = figure1_db.begin()
        txn.commit()
        with pytest.raises(TransactionAborted):
            txn.add_intention(lambda: None)
        with pytest.raises(TransactionAborted):
            txn.commit()

    def test_context_manager_commits(self, figure1_db):
        with figure1_db.begin() as txn:
            figure1_db.insert("Employee", ["Zoe", 99, 31, 455], txn=txn)
        assert len(figure1_db.select("Employee", eq("Id", 99))) == 1

    def test_context_manager_aborts_on_exception(self, figure1_db):
        with pytest.raises(RuntimeError):
            with figure1_db.begin() as txn:
                figure1_db.insert("Employee", ["Zoe", 99, 31, 455], txn=txn)
                raise RuntimeError("user error")
        assert len(figure1_db.select("Employee", eq("Id", 99))) == 0

    def test_active_count_tracks(self, figure1_db):
        manager = figure1_db.transactions
        base = manager.active_count
        txn = figure1_db.begin()
        assert manager.active_count == base + 1
        txn.commit()
        assert manager.active_count == base


class TestDeferredUpdates:
    def test_insert_invisible_until_commit(self, figure1_db):
        txn = figure1_db.begin()
        figure1_db.insert("Employee", ["Zoe", 99, 31, 455], txn=txn)
        assert len(figure1_db.select("Employee", eq("Id", 99))) == 0
        txn.commit()
        assert len(figure1_db.select("Employee", eq("Id", 99))) == 1

    def test_delete_invisible_until_commit(self, figure1_db):
        relation = figure1_db.relation("Employee")
        ref = relation.index("Employee_pk").search(23)
        txn = figure1_db.begin()
        figure1_db.delete("Employee", ref, txn=txn)
        assert len(figure1_db.select("Employee", eq("Id", 23))) == 1
        txn.commit()
        assert len(figure1_db.select("Employee", eq("Id", 23))) == 0

    def test_update_applies_at_commit(self, figure1_db):
        relation = figure1_db.relation("Employee")
        ref = relation.index("Employee_pk").search(23)
        txn = figure1_db.begin()
        figure1_db.update("Employee", ref, "Age", 25, txn=txn)
        assert relation.read_field(ref, "Age") == 24
        txn.commit()
        assert relation.read_field(ref, "Age") == 25

    def test_abort_discards_intentions(self, figure1_db):
        txn = figure1_db.begin()
        figure1_db.insert("Employee", ["Zoe", 99, 31, 455], txn=txn)
        assert txn.intention_count == 1
        txn.abort()
        assert len(figure1_db.select("Employee", eq("Id", 99))) == 0

    def test_failed_intention_compensated(self, figure1_db):
        # Duplicate key discovered at commit: the first insert applied,
        # then gets compensated so nothing persists.
        txn = figure1_db.begin()
        figure1_db.insert("Employee", ["Ok", 77, 30, 455], txn=txn)
        figure1_db.insert("Employee", ["Dup", 23, 30, 455], txn=txn)
        with pytest.raises(DuplicateKeyError):
            txn.commit()
        assert txn.state is TxnState.ABORTED
        assert len(figure1_db.select("Employee", eq("Id", 77))) == 0
        assert len(figure1_db.select("Employee")) == 5


class TestLockingIntegration:
    def test_insert_locks_relation_resource(self, figure1_db):
        txn = figure1_db.begin()
        figure1_db.insert("Employee", ["Zoe", 99, 31, 455], txn=txn)
        held = figure1_db.transactions.lock_manager.holdings(txn.id)
        assert held[("Employee", None)] is LockMode.EXCLUSIVE
        txn.commit()

    def test_delete_locks_partition(self, figure1_db):
        relation = figure1_db.relation("Employee")
        ref = relation.index("Employee_pk").search(23)
        txn = figure1_db.begin()
        figure1_db.delete("Employee", ref, txn=txn)
        held = figure1_db.transactions.lock_manager.holdings(txn.id)
        canonical = relation.resolve(ref)
        assert held[("Employee", canonical.partition_id)] is LockMode.EXCLUSIVE
        txn.abort()

    def test_locks_released_after_commit(self, figure1_db):
        txn = figure1_db.begin()
        figure1_db.insert("Employee", ["Zoe", 99, 31, 455], txn=txn)
        txn.commit()
        assert figure1_db.transactions.lock_manager.holdings(txn.id) == {}

    def test_select_takes_shared_lock(self, figure1_db):
        txn = figure1_db.begin()
        figure1_db.select("Employee", txn=txn)
        held = figure1_db.transactions.lock_manager.holdings(txn.id)
        assert held[("Employee", None)] is LockMode.SHARED
        txn.commit()

    def test_conflicting_writers_serialize(self, figure1_db):
        import time

        results = []

        def writer(emp_id, hold_seconds):
            txn = figure1_db.begin()
            figure1_db.insert(
                "Employee", [f"W{emp_id}", emp_id, 30, 455], txn=txn
            )
            time.sleep(hold_seconds)
            txn.commit()
            results.append(emp_id)

        # Writer 200 takes the relation X lock and holds it briefly;
        # writer 201 must queue on the same lock until the commit.
        first = threading.Thread(target=writer, args=(200, 0.2))
        first.start()
        time.sleep(0.05)
        second = threading.Thread(target=writer, args=(201, 0.0))
        second.start()
        first.join(10)
        second.join(10)
        assert results == [200, 201]
        assert len(figure1_db.select("Employee")) == 7


class TestManagerStandalone:
    def test_ids_monotone(self):
        manager = TransactionManager()
        a, b = manager.begin(), manager.begin()
        assert b.id > a.id
        a.abort()
        b.abort()

    def test_deadlock_marks_transaction_aborted(self):
        manager = TransactionManager()
        t1, t2 = manager.begin(), manager.begin()
        t1.lock(("R", 0), LockMode.EXCLUSIVE)
        t2.lock(("R", 1), LockMode.EXCLUSIVE)
        blocked = threading.Thread(
            target=lambda: t1.lock(("R", 1), LockMode.EXCLUSIVE)
        )
        blocked.start()
        import time

        time.sleep(0.1)
        with pytest.raises(DeadlockError):
            t2.lock(("R", 0), LockMode.EXCLUSIVE)
        assert t2.state is TxnState.ABORTED
        # t1 gets the lock once t2's locks are released by the abort.
        blocked.join(5)
        assert not blocked.is_alive()
        t1.commit()
