"""Integration tests for the MainMemoryDatabase facade.

These exercise the paper's own example queries (Section 2.1) end to end:
Query 1 (selection + precomputed join via foreign-key pointers) and
Query 2 (selection + pointer-comparison join).
"""

import pytest

from repro import (
    Field,
    FieldType,
    ForeignKey,
    MainMemoryDatabase,
    QueryError,
    SchemaError,
    between,
    eq,
    gt,
)
from repro.query.plan import REF_COLUMN, JoinNode, ScanNode
from repro.storage.tuples import TupleRef
from tests.conftest import DEPARTMENTS, EMPLOYEES


class TestSchemaManagement:
    def test_primary_index_created_automatically(self, figure1_db):
        relation = figure1_db.relation("Employee")
        assert "Employee_pk" in relation.indexes
        assert relation.indexes["Employee_pk"].kind == "ttree"
        assert relation.indexes["Employee_pk"].unique

    def test_primary_index_kind_overridable(self):
        db = MainMemoryDatabase()
        db.create_relation(
            "R",
            [Field("k", FieldType.INT)],
            primary_index_kind="modified_linear_hash",
        )
        assert db.relation("R").any_index().kind == "modified_linear_hash"

    def test_secondary_index_creation(self, figure1_db):
        idx = figure1_db.create_index(
            "Employee", "by_age", "Age", kind="ttree"
        )
        assert idx.search(54) is not None

    def test_invalid_primary_key_rejected(self):
        db = MainMemoryDatabase()
        with pytest.raises(SchemaError):
            db.create_relation(
                "R", [Field("k", FieldType.INT)], primary_key="nope"
            )


class TestForeignKeySubstitution:
    def test_fk_value_replaced_by_pointer(self, figure1_db):
        relation = figure1_db.relation("Employee")
        ref = relation.index("Employee_pk").search(23)
        stored = relation.read_field(ref, "Dept_Id")
        assert isinstance(stored, TupleRef)

    def test_fetch_follows_pointer_back_to_value(self, figure1_db):
        relation = figure1_db.relation("Employee")
        ref = relation.index("Employee_pk").search(23)
        assert figure1_db.fetch("Employee", ref)["Dept_Id"] == 459

    def test_fk_violation_rejected(self, figure1_db):
        with pytest.raises(QueryError):
            figure1_db.insert("Employee", ["Bad", 99, 30, 999])

    def test_null_fk_allowed(self, figure1_db):
        ref = figure1_db.insert("Employee", ["NoDept", 99, 30, None])
        assert figure1_db.fetch("Employee", ref)["Dept_Id"] is None

    def test_dict_insert(self, figure1_db):
        ref = figure1_db.insert(
            "Employee",
            {"Name": "Zoe", "Id": 99, "Age": 31, "Dept_Id": 455},
        )
        assert figure1_db.fetch("Employee", ref)["Name"] == "Zoe"

    def test_dict_insert_missing_field(self, figure1_db):
        with pytest.raises(SchemaError):
            figure1_db.insert("Employee", {"Name": "Zoe", "Id": 99})

    def test_fk_update_rebinds_pointer(self, figure1_db):
        relation = figure1_db.relation("Employee")
        ref = relation.index("Employee_pk").search(23)
        figure1_db.update("Employee", ref, "Dept_Id", 455)
        assert figure1_db.fetch("Employee", ref)["Dept_Id"] == 455

    def test_fk_update_to_missing_value_rejected(self, figure1_db):
        relation = figure1_db.relation("Employee")
        ref = relation.index("Employee_pk").search(23)
        with pytest.raises(QueryError):
            figure1_db.update("Employee", ref, "Dept_Id", 12345)


class TestPaperQuery1:
    """Query 1: Employee name, age, and Department name for employees
    over a given age, via the precomputed join."""

    def test_query1_results(self, figure1_db):
        result = figure1_db.join(
            "Employee",
            "Department",
            on=("Dept_Id", "Id"),
            outer_predicate=gt("Age", 25),
        )
        projected = figure1_db.project(
            result, ["Employee.Name", "Age", "Department.Name"]
        )
        rows = set(map(tuple, projected.materialize()))
        assert rows == {
            ("Suzan", 27, "Toy"),
            ("Yaman", 54, "Linen"),
            ("Jane", 47, "Linen"),
        }

    def test_optimizer_picks_precomputed(self, figure1_db):
        plan = figure1_db.optimizer.plan_join(
            "Employee", "Department", "Dept_Id", "Id"
        )
        assert plan.method == "precomputed"


class TestPaperQuery2:
    """Query 2: names of employees in the Toy or Shoe departments — a
    join whose comparison runs on tuple pointers, not data values."""

    def test_query2_results(self, figure1_db):
        toy_shoe = figure1_db.select("Department", eq("Name", "Toy"))
        shoe = figure1_db.select("Department", eq("Name", "Shoe"))
        for row in shoe:
            toy_shoe.append(row)
        # Pointer join: Employee.Dept_Id (a stored pointer) against the
        # selected departments' own tuple pointers.
        plan = JoinNode(
            ScanNode("Employee"),
            ScanNode("Department", eq("Name", "Toy")),
            "Dept_Id",
            REF_COLUMN,
            "hash",
        )
        result = figure1_db.execute(plan)
        names = {d["Employee.Name"] for d in result.to_dicts()}
        assert names == {"Dave", "Suzan"}

    def test_pointer_join_both_departments(self, figure1_db):
        from repro.query.predicates import Comparison, Op

        plan = JoinNode(
            ScanNode("Employee"),
            ScanNode("Department", eq("Name", "Shoe")),
            "Dept_Id",
            REF_COLUMN,
            "hash",
        )
        result = figure1_db.execute(plan)
        assert {d["Employee.Name"] for d in result.to_dicts()} == {"Cindy"}


class TestSelection:
    def test_select_all(self, figure1_db):
        assert len(figure1_db.select("Employee")) == len(EMPLOYEES)

    def test_select_by_key_uses_index(self, figure1_db):
        result = figure1_db.select("Employee", eq("Id", 44))
        assert result.to_dicts()[0]["Name"] == "Yaman"

    def test_select_range_with_secondary_index(self, figure1_db):
        figure1_db.create_index("Employee", "by_age", "Age", kind="ttree")
        result = figure1_db.select("Employee", between("Age", 24, 47))
        ages = sorted(d["Age"] for d in result.to_dicts())
        assert ages == [24, 27, 47]

    def test_select_unindexed_field_scans(self, figure1_db):
        result = figure1_db.select("Employee", eq("Name", "Cindy"))
        assert len(result) == 1


class TestJoinMethodsAgree:
    @pytest.mark.parametrize(
        "method", ["auto", "hash", "sort_merge", "nested_loops", "precomputed"]
    )
    def test_employee_department_join(self, figure1_db, method):
        if method in ("hash", "sort_merge", "nested_loops"):
            result = figure1_db.join(
                "Employee", "Department", on=("Dept_Id", REF_COLUMN),
                method=method,
            )
        else:
            result = figure1_db.join(
                "Employee", "Department", on=("Dept_Id", "Id"), method=method
            )
        pairs = {
            (d["Employee.Name"], d["Department.Name"])
            for d in result.to_dicts()
        }
        assert pairs == {
            ("Dave", "Toy"),
            ("Suzan", "Toy"),
            ("Yaman", "Linen"),
            ("Jane", "Linen"),
            ("Cindy", "Shoe"),
        }


class TestProjection:
    def test_projection_dedupe_departments(self, figure1_db):
        employees = figure1_db.select("Employee")
        depts = figure1_db.project(
            employees, ["Dept_Id"], deduplicate=True
        )
        assert len(depts) == 3

    def test_projection_without_dedupe_keeps_rows(self, figure1_db):
        employees = figure1_db.select("Employee")
        names = figure1_db.project(employees, ["Name"])
        assert len(names) == len(EMPLOYEES)

    def test_sort_scan_method(self, figure1_db):
        employees = figure1_db.select("Employee")
        depts = figure1_db.project(
            employees, ["Dept_Id"], deduplicate=True, method="sort_scan"
        )
        assert len(depts) == 3

    def test_resolve_refs_in_to_dicts(self, figure1_db):
        employees = figure1_db.select("Employee", eq("Id", 23))
        plain = employees.to_dicts()[0]
        resolved = employees.to_dicts(resolve_refs=True)[0]
        assert isinstance(plain["Dept_Id"], TupleRef)
        assert resolved["Dept_Id"] == 459


class TestExplain:
    def test_explain_renders(self, figure1_db):
        plan = figure1_db.optimizer.plan_join(
            "Employee", "Department", "Dept_Id", "Id"
        )
        text = figure1_db.explain(plan)
        assert "precomputed" in text
