"""Tests for the truncated-normal duplicate distributions (Graph 3)."""

import random

import pytest

from repro.workloads.distributions import (
    MODERATE_SIGMA,
    NEAR_UNIFORM_SIGMA,
    SKEWED_SIGMA,
    DuplicateDistribution,
    cumulative_tuple_share,
    duplicate_counts,
    expected_tuple_share,
)


class TestDuplicateCounts:
    def test_counts_sum_to_total(self, rng):
        counts = duplicate_counts(100, 1000, SKEWED_SIGMA, rng)
        assert len(counts) == 100
        assert sum(counts) == 1000

    def test_every_value_occurs_at_least_once(self, rng):
        counts = duplicate_counts(50, 500, SKEWED_SIGMA, rng)
        assert min(counts) >= 1

    def test_uniform_counts_differ_by_at_most_one(self, rng):
        counts = duplicate_counts(7, 100, None, rng)
        assert max(counts) - min(counts) <= 1
        assert sum(counts) == 100

    def test_total_equals_unique(self, rng):
        assert duplicate_counts(10, 10, SKEWED_SIGMA, rng) == [1] * 10

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            duplicate_counts(0, 10, None, rng)
        with pytest.raises(ValueError):
            duplicate_counts(10, 5, None, rng)

    def test_deterministic_given_seed(self):
        a = duplicate_counts(20, 200, 0.4, random.Random(5))
        b = duplicate_counts(20, 200, 0.4, random.Random(5))
        assert a == b


class TestSkewShapes:
    """The Graph 3 cumulative curves."""

    def _top_decile_share(self, sigma, rng):
        counts = duplicate_counts(200, 20000, sigma, rng)
        curve = cumulative_tuple_share(counts)
        # Share of tuples held by the top 10% of values.
        return next(share for pct, share in curve if pct >= 10.0)

    def test_skewed_concentrates_tuples(self, rng):
        # sigma=0.1: ~10% of values hold roughly two thirds of tuples.
        share = self._top_decile_share(SKEWED_SIGMA, rng)
        assert 55.0 <= share <= 80.0

    def test_near_uniform_spreads_tuples(self, rng):
        share = self._top_decile_share(NEAR_UNIFORM_SIGMA, rng)
        assert share <= 30.0

    def test_moderate_between_extremes(self, rng):
        skewed = self._top_decile_share(SKEWED_SIGMA, rng)
        moderate = self._top_decile_share(MODERATE_SIGMA, rng)
        uniform = self._top_decile_share(NEAR_UNIFORM_SIGMA, rng)
        assert uniform < moderate < skewed

    def test_sampler_tracks_analytic_cdf(self, rng):
        counts = duplicate_counts(500, 50000, SKEWED_SIGMA, rng)
        curve = dict(cumulative_tuple_share(counts))
        for fraction in (0.1, 0.3, 0.5):
            expected = expected_tuple_share(SKEWED_SIGMA, fraction) * 100
            measured = curve[round(fraction * 100, 1)]
            assert measured == pytest.approx(expected, abs=8.0)


class TestCumulativeShare:
    def test_curve_monotone_and_complete(self, rng):
        counts = duplicate_counts(30, 300, 0.4, rng)
        curve = cumulative_tuple_share(counts)
        shares = [s for __, s in curve]
        assert shares == sorted(shares)
        assert curve[-1] == (100.0, 100.0)

    def test_empty_counts(self):
        assert cumulative_tuple_share([]) == []


class TestExpectedTupleShare:
    def test_boundaries(self):
        assert expected_tuple_share(0.1, 0.0) == 0.0
        assert expected_tuple_share(0.1, 1.0) == pytest.approx(1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            expected_tuple_share(0.1, 1.5)


class TestDistributionClass:
    def test_labels(self):
        assert DuplicateDistribution(None).label == "uniform"
        assert DuplicateDistribution(0.1).label == "skewed"
        assert DuplicateDistribution(0.8).label == "near-uniform"
        assert "0.4" in DuplicateDistribution(0.4).label

    def test_sigma_validated(self):
        with pytest.raises(ValueError):
            DuplicateDistribution(-1.0)

    def test_counts_delegates(self, rng):
        dist = DuplicateDistribution(0.4)
        counts = dist.counts(10, 100, rng)
        assert sum(counts) == 100


class TestZipfDistribution:
    def test_counts_sum_and_floor(self, rng):
        from repro.workloads.distributions import ZipfDistribution

        counts = ZipfDistribution(1.0).counts(100, 1000, rng)
        assert len(counts) == 100
        assert sum(counts) == 1000
        assert min(counts) >= 1

    def test_heaviest_first_and_monotonic(self, rng):
        from repro.workloads.distributions import ZipfDistribution

        counts = ZipfDistribution(1.0).counts(50, 5000, rng)
        assert counts[0] == max(counts)
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    def test_larger_exponent_is_more_skewed(self, rng):
        from repro.workloads.distributions import ZipfDistribution

        mild = ZipfDistribution(0.5).counts(100, 10_000, rng)
        steep = ZipfDistribution(2.0).counts(100, 10_000, rng)
        assert steep[0] > mild[0]

    def test_deterministic_without_consuming_rng(self):
        from repro.workloads.distributions import ZipfDistribution

        rng = random.Random(42)
        before = rng.getstate()
        a = ZipfDistribution(1.1).counts(64, 640, rng)
        assert rng.getstate() == before  # apportionment is exact
        b = ZipfDistribution(1.1).counts(64, 640, random.Random(7))
        assert a == b

    def test_label_and_validation(self):
        from repro.workloads.distributions import ZipfDistribution

        assert ZipfDistribution(1.5).label == "zipf(s=1.5)"
        with pytest.raises(ValueError):
            ZipfDistribution(0.0)
        with pytest.raises(ValueError):
            ZipfDistribution(1.0).counts(10, 5, random.Random(1))
