"""Tests for join-pair generation and the index query-mix stream."""

import random
from collections import Counter

import pytest

from repro.workloads.distributions import DuplicateDistribution
from repro.workloads.generator import (
    RelationSpec,
    build_join_pair,
    build_values,
    query_mix_operations,
    unique_keys,
)


class TestRelationSpec:
    def test_unique_values_from_dup_percent(self):
        assert RelationSpec(1000, 0.0).unique_values() == 1000
        assert RelationSpec(1000, 50.0).unique_values() == 500
        assert RelationSpec(1000, 100.0).unique_values() == 1
        assert RelationSpec(1000, 99.95).unique_values() == 1

    def test_dup_percent_validated(self):
        with pytest.raises(ValueError):
            RelationSpec(100, 101.0).unique_values()


class TestUniqueKeys:
    def test_distinct_and_sized(self, rng):
        keys = unique_keys(1000, rng)
        assert len(keys) == len(set(keys)) == 1000

    def test_key_space_bound(self, rng):
        keys = unique_keys(100, rng, key_space=200)
        assert all(0 <= k < 200 for k in keys)

    def test_too_small_space_rejected(self, rng):
        with pytest.raises(ValueError):
            unique_keys(100, rng, key_space=50)


class TestBuildValues:
    def test_cardinality_and_pool(self, rng):
        spec = RelationSpec(200, 50.0, DuplicateDistribution(None))
        pool = list(range(spec.unique_values()))
        values = build_values(spec, pool, rng)
        assert len(values) == 200
        assert set(values) == set(pool)

    def test_pool_size_checked(self, rng):
        spec = RelationSpec(200, 50.0)
        with pytest.raises(ValueError):
            build_values(spec, [1, 2, 3], rng)


class TestBuildJoinPair:
    def test_full_selectivity_key_join(self, rng):
        pair = build_join_pair(
            RelationSpec(500), RelationSpec(500), 100.0, rng
        )
        assert len(pair.outer) == len(pair.inner) == 500
        # 0% duplicates + 100% selectivity: every inner value matches.
        assert set(pair.inner) <= set(pair.outer)
        assert pair.expected_result_size() == 500

    def test_zero_selectivity_disjoint(self, rng):
        pair = build_join_pair(RelationSpec(300), RelationSpec(300), 0.0, rng)
        assert not (set(pair.outer) & set(pair.inner))
        assert pair.expected_result_size() == 0

    def test_partial_selectivity(self, rng):
        pair = build_join_pair(
            RelationSpec(400), RelationSpec(400), 50.0, rng
        )
        matching = set(pair.outer) & set(pair.inner)
        assert len(matching) == pytest.approx(200, abs=2)
        assert matching == set(pair.matching_values)

    def test_duplicate_percentages_respected(self, rng):
        spec = RelationSpec(1000, 60.0, DuplicateDistribution(None))
        pair = build_join_pair(spec, spec, 100.0, rng)
        assert len(set(pair.outer)) == spec.unique_values()
        assert len(set(pair.inner)) == spec.unique_values()

    def test_skew_carries_into_inner_sampling(self, rng):
        # With a skewed outer, inner values sampled from outer *tuples*
        # are biased towards heavy hitters.
        outer_spec = RelationSpec(2000, 90.0, DuplicateDistribution(0.1))
        inner_spec = RelationSpec(400, 50.0, DuplicateDistribution(None))
        # Partial selectivity so only a subset of outer values is chosen
        # (at 100% every value is taken and no bias can show).
        pair = build_join_pair(outer_spec, inner_spec, 30.0, rng)
        outer_freq = Counter(pair.outer)
        chosen_freqs = [outer_freq[v] for v in pair.matching_values]
        overall = sum(outer_freq.values()) / len(outer_freq)
        # The chosen values are on average more frequent than typical.
        assert sum(chosen_freqs) / len(chosen_freqs) > overall

    def test_expected_result_size_matches_brute_force(self, rng):
        pair = build_join_pair(
            RelationSpec(150, 40.0, DuplicateDistribution(0.4)),
            RelationSpec(100, 30.0, DuplicateDistribution(None)),
            70.0,
            rng,
        )
        brute = sum(1 for o in pair.outer for i in pair.inner if o == i)
        assert pair.expected_result_size() == brute

    def test_selectivity_validated(self, rng):
        with pytest.raises(ValueError):
            build_join_pair(RelationSpec(10), RelationSpec(10), 150.0, rng)


class TestQueryMix:
    def test_percentages_validated(self, rng):
        with pytest.raises(ValueError):
            list(query_mix_operations([1], 10, 50, 20, 20, rng))

    def test_operation_counts_roughly_match_mix(self, rng):
        ops = list(
            query_mix_operations(list(range(1000)), 4000, 60, 20, 20, rng)
        )
        assert len(ops) == 4000
        tally = Counter(op for op, __ in ops)
        assert tally["search"] == pytest.approx(2400, abs=200)
        assert tally["insert"] == pytest.approx(800, abs=150)
        assert tally["delete"] == pytest.approx(800, abs=150)

    def test_stream_is_replayable_consistently(self, rng):
        # Deletes only remove present keys; inserts only add fresh keys;
        # searches only probe present keys — so replaying against a set
        # never faults.
        keys = list(range(500))
        present = set(keys)
        for op, key in query_mix_operations(keys, 3000, 40, 30, 30, rng):
            if op == "search":
                assert key in present
            elif op == "insert":
                assert key not in present
                present.add(key)
            else:
                assert key in present
                present.discard(key)

    def test_deterministic_for_seed(self):
        keys = list(range(100))
        a = list(query_mix_operations(keys, 500, 60, 20, 20, random.Random(3)))
        b = list(query_mix_operations(keys, 500, 60, 20, 20, random.Random(3)))
        assert a == b


class TestBuildFkChain:
    def _specs(self, distribution=None):
        from repro.workloads.distributions import UNIFORM

        dist = distribution if distribution is not None else UNIFORM
        return [
            RelationSpec(400, 30.0, dist),
            RelationSpec(200, 30.0, dist),
            RelationSpec(100, 30.0, dist),
        ]

    def test_column_shapes(self, rng):
        from repro.workloads.generator import build_fk_chain

        chain = build_fk_chain(self._specs(), 100.0, rng)
        assert len(chain.columns) == 3
        assert len(chain.pairs) == 2
        assert "prev" not in chain.columns[0]
        assert "next" not in chain.columns[-1]
        assert len(chain.columns[0]["next"]) == 400
        assert len(chain.columns[1]["prev"]) == 200
        assert len(chain.columns[1]["next"]) == 200
        assert len(chain.columns[2]["prev"]) == 100

    def test_full_selectivity_links_every_inner_value(self, rng):
        from repro.workloads.generator import build_fk_chain

        chain = build_fk_chain(self._specs(), 100.0, rng)
        for i, pair in enumerate(chain.pairs):
            outer_values = set(chain.columns[i]["next"])
            inner_values = set(chain.columns[i + 1]["prev"])
            assert inner_values <= outer_values
            assert pair.expected_result_size() > 0

    def test_zipf_chain_correlates_heavy_hitters(self, rng):
        from collections import Counter

        from repro.workloads.distributions import ZipfDistribution
        from repro.workloads.generator import build_fk_chain

        chain = build_fk_chain(
            self._specs(ZipfDistribution(1.2)), 100.0, rng
        )
        outer = Counter(chain.columns[0]["next"])
        inner = Counter(chain.columns[1]["prev"])
        heavy_outer = max(outer, key=outer.get)
        # The outer's heaviest value must also be heavily duplicated on
        # the inner side (the Test 4 artefact the bench relies on).
        assert inner[heavy_outer] > 1

    def test_chain_needs_two_specs(self, rng):
        from repro.workloads.generator import build_fk_chain

        with pytest.raises(ValueError):
            build_fk_chain([RelationSpec(10)], 100.0, rng)
