"""Property tests for the storage layer.

Partitions must round-trip through serialization under any operation
sequence, and relations must behave exactly like a dict-of-rows model
under random CRUD — including heap-overflow relocations with forwarding
addresses.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import HeapOverflowError, PartitionFullError
from repro.storage.partition import Partition, PartitionConfig
from repro.storage.relation import Relation
from repro.storage.schema import Field, FieldType, Schema

LEAN = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Partition ops: (0=insert values, 1=delete slot_choice,
#                 2=update slot_choice value)
partition_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just(0),
            st.integers(-100, 100),
            st.text(
                alphabet="abcdefg", min_size=0, max_size=6
            ),
        ),
        st.tuples(st.just(1), st.integers(0, 30)),
        st.tuples(st.just(2), st.integers(0, 30), st.integers(-100, 100)),
    ),
    max_size=60,
)


class TestPartitionSerializationProperty:
    @LEAN
    @given(ops=partition_ops)
    def test_roundtrip_after_any_history(self, ops):
        part = Partition(0, PartitionConfig(slot_capacity=24,
                                            heap_capacity=512))
        live = {}
        for op in ops:
            try:
                if op[0] == 0:
                    slot = part.insert([op[1], op[2]])
                    live[slot] = [op[1], op[2]]
                elif op[0] == 1 and live:
                    slot = sorted(live)[op[1] % len(live)]
                    part.delete(slot)
                    del live[slot]
                elif op[0] == 2 and live:
                    slot = sorted(live)[op[1] % len(live)]
                    part.update_field(slot, 0, op[2])
                    live[slot][0] = op[2]
            except (PartitionFullError, HeapOverflowError):
                continue
        clone = Partition.from_bytes(part.to_bytes())
        assert clone.live_tuples == part.live_tuples == len(live)
        for slot, row in live.items():
            assert clone.read(slot) == row
        assert dict(clone.scan()) == dict(part.scan())


relation_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.integers(0, 40),
            st.text(alphabet="xyz", min_size=0, max_size=12),
        ),
        st.tuples(st.just("delete"), st.integers(0, 40)),
        st.tuples(
            st.just("update"),
            st.integers(0, 40),
            st.text(alphabet="xyz", min_size=0, max_size=24),
        ),
    ),
    max_size=80,
)


class TestRelationModelProperty:
    @LEAN
    @given(ops=relation_ops)
    def test_relation_matches_dict_model(self, ops):
        schema = Schema(
            [Field("k", FieldType.INT), Field("s", FieldType.STR)]
        )
        # Tiny partitions force allocation, relocation, and forwarding.
        relation = Relation(
            "R", schema, PartitionConfig(slot_capacity=4, heap_capacity=48)
        )
        relation.create_index("pk", "k", unique=True)
        model = {}
        refs = {}
        for op in ops:
            kind, key = op[0], op[1]
            if kind == "insert":
                if key in model:
                    continue
                refs[key] = relation.insert([key, op[2]])
                model[key] = op[2]
            elif kind == "delete":
                if key not in model:
                    continue
                relation.delete(refs.pop(key))
                del model[key]
            else:  # update (may relocate + forward)
                if key not in model:
                    continue
                try:
                    relation.update(refs[key], "s", op[2])
                except HeapOverflowError:
                    continue  # no partition could host it; state unchanged
                model[key] = op[2]
        assert len(relation) == len(model)
        index = relation.index("pk")
        for key, value in model.items():
            found = index.search(key)
            assert found is not None
            assert relation.read_field(found, "s") == value
            # The originally returned ref stays valid through forwarding.
            assert relation.read_field(refs[key], "s") == value
        # Index scan sees exactly the model's keys, in order.
        scanned = [relation.read_field(r, "k") for r in index.scan()]
        assert scanned == sorted(model)
