"""Differential testing against a brute-force reference engine.

A ~2,000-row, three-relation database is loaded identically into the
MM-DBMS and into plain Python dictionaries.  A battery of selections,
joins, projections, and aggregates (seeded, not hand-picked) must return
identical answers from both.  This is the widest net in the suite: any
divergence between index maintenance, the optimizer, the executor, or the
SQL layer and plain set semantics fails here.
"""

import random

import pytest

from repro import (
    Field,
    FieldType,
    ForeignKey,
    MainMemoryDatabase,
    between,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)

N_SUPPLIERS = 40
N_PARTS = 120
N_SHIPMENTS = 1800
SEED = 71


def build_dataset(rng):
    suppliers = [
        (sid, f"supplier-{sid}", rng.randrange(1, 6))  # (Id, Name, City)
        for sid in range(N_SUPPLIERS)
    ]
    parts = [
        (pid, f"part-{pid}", rng.randrange(1, 1000))  # (Id, Name, Weight)
        for pid in range(N_PARTS)
    ]
    shipments = [
        (
            shid,
            rng.randrange(N_SUPPLIERS),
            rng.randrange(N_PARTS),
            rng.randrange(1, 100),
        )  # (Id, Supplier, Part, Qty)
        for shid in range(N_SHIPMENTS)
    ]
    return suppliers, parts, shipments


@pytest.fixture(scope="module")
def world():
    rng = random.Random(SEED)
    suppliers, parts, shipments = build_dataset(rng)
    db = MainMemoryDatabase()
    db.create_relation(
        "Supplier",
        [
            Field("Id", FieldType.INT),
            Field("Name", FieldType.STR),
            Field("City", FieldType.INT),
        ],
        primary_key="Id",
    )
    db.create_relation(
        "Part",
        [
            Field("Id", FieldType.INT),
            Field("Name", FieldType.STR),
            Field("Weight", FieldType.INT),
        ],
        primary_key="Id",
    )
    db.create_relation(
        "Shipment",
        [
            Field("Id", FieldType.INT),
            Field("Supplier", FieldType.INT,
                  references=ForeignKey("Supplier", "Id")),
            Field("Part", FieldType.INT, references=ForeignKey("Part", "Id")),
            Field("Qty", FieldType.INT),
        ],
        primary_key="Id",
    )
    # A diverse index population: T-Trees, hashes, and a composite.
    db.create_index("Part", "part_weight", "Weight", kind="ttree")
    db.create_index("Shipment", "ship_qty", "Qty", kind="ttree")
    db.create_index("Shipment", "ship_supplier", "Supplier",
                    kind="modified_linear_hash")
    db.create_index("Supplier", "sup_city", "City", kind="extendible_hash")
    for row in suppliers:
        db.insert("Supplier", list(row))
    for row in parts:
        db.insert("Part", list(row))
    for row in shipments:
        db.insert("Shipment", list(row))
    return db, suppliers, parts, shipments


class TestSelections(object):
    @pytest.mark.slow
    def test_point_and_range_battery(self, world):
        db, suppliers, parts, shipments = world
        rng = random.Random(SEED + 1)
        for __ in range(25):
            qty = rng.randrange(1, 100)
            for predicate, expect in [
                (eq("Qty", qty), [s for s in shipments if s[3] == qty]),
                (lt("Qty", qty), [s for s in shipments if s[3] < qty]),
                (ge("Qty", qty), [s for s in shipments if s[3] >= qty]),
                (ne("Qty", qty), [s for s in shipments if s[3] != qty]),
                (
                    between("Qty", qty, min(99, qty + 10)),
                    [s for s in shipments if qty <= s[3] <= min(99, qty + 10)],
                ),
            ]:
                got = sorted(db.select("Shipment", predicate).materialize())
                want = sorted(
                    (s[0], s[1], s[2], s[3]) for s in expect
                )
                # FK fields materialise as pointers; compare id & qty cols.
                assert [(g[0], g[3]) for g in got] == [
                    (w[0], w[3]) for w in want
                ]

    def test_conjunction_battery(self, world):
        db, suppliers, parts, shipments = world
        rng = random.Random(SEED + 2)
        for __ in range(15):
            lo = rng.randrange(1, 90)
            sup = rng.randrange(N_SUPPLIERS)
            predicate = ge("Qty", lo) & eq("Supplier", sup)
            got = db.select("Shipment", predicate)
            want = [
                s for s in shipments if s[3] >= lo and s[1] == sup
            ]
            assert len(got) == len(want)

    def test_weight_ranges_on_part(self, world):
        db, suppliers, parts, shipments = world
        got = db.select("Part", between("Weight", 100, 500))
        want = [p for p in parts if 100 <= p[2] <= 500]
        assert len(got) == len(want)


class TestJoins:
    def test_fk_join_sizes_match(self, world):
        db, suppliers, parts, shipments = world
        result = db.join("Shipment", "Supplier", on=("Supplier", "Id"))
        assert len(result) == len(shipments)
        result = db.join("Shipment", "Part", on=("Part", "Id"))
        assert len(result) == len(shipments)

    def test_join_with_predicates_matches_reference(self, world):
        db, suppliers, parts, shipments = world
        result = db.join(
            "Shipment", "Part", on=("Part", "Id"),
            outer_predicate=ge("Qty", 90),
            inner_predicate=lt("Weight", 300),
        )
        part_weight = {p[0]: p[2] for p in parts}
        want = [
            s for s in shipments
            if s[3] >= 90 and part_weight[s[2]] < 300
        ]
        assert len(result) == len(want)

    def test_value_join_on_nonkey_columns(self, world):
        db, suppliers, parts, shipments = world
        # City (1-5) joined against Qty would be silly; join City=City
        # self-join on suppliers instead, brute-force checked.
        result = db.join(
            "Supplier", "Supplier", on=("City", "City"), method="hash"
        )
        cities = [s[2] for s in suppliers]
        want = sum(1 for a in cities for b in cities if a == b)
        assert len(result) == want

    def test_three_way_sql_chain(self, world):
        db, suppliers, parts, shipments = world
        rows = db.sql(
            "SELECT Shipment.Id FROM Shipment "
            "JOIN Supplier ON Supplier = Supplier.Id "
            "JOIN Part ON Part = Part.Id "
            "WHERE Part.Weight < 100 AND Qty > 50"
        ).materialize()
        part_weight = {p[0]: p[2] for p in parts}
        want = sorted(
            (s[0],)
            for s in shipments
            if part_weight[s[2]] < 100 and s[3] > 50
        )
        assert sorted(rows) == want


class TestAggregates:
    def test_per_supplier_totals(self, world):
        db, suppliers, parts, shipments = world
        rows = db.sql(
            "SELECT Supplier.Name, SUM(Qty) AS total FROM Shipment "
            "JOIN Supplier ON Supplier = Supplier.Id "
            "GROUP BY Supplier.Name"
        ).to_dicts()
        reference = {}
        name_of = {s[0]: s[1] for s in suppliers}
        for sh in shipments:
            reference.setdefault(name_of[sh[1]], 0)
            reference[name_of[sh[1]]] += sh[3]
        assert {r["Supplier.Name"]: r["total"] for r in rows} == reference

    def test_global_stats(self, world):
        db, suppliers, parts, shipments = world
        row = db.sql(
            "SELECT COUNT(*) AS n, MIN(Qty) AS lo, MAX(Qty) AS hi, "
            "AVG(Qty) AS mean FROM Shipment"
        ).to_dicts()[0]
        quantities = [s[3] for s in shipments]
        assert row["n"] == len(quantities)
        assert row["lo"] == min(quantities)
        assert row["hi"] == max(quantities)
        assert row["mean"] == pytest.approx(
            sum(quantities) / len(quantities)
        )

    def test_distinct_matches_set(self, world):
        db, suppliers, parts, shipments = world
        distinct = db.sql("SELECT DISTINCT Qty FROM Shipment")
        assert len(distinct) == len({s[3] for s in shipments})


class TestMutationsKeepConsistency:
    def test_update_delete_battery(self, world):
        db, suppliers, parts, shipments = world
        # Work on a private copy relation so module-scoped fixtures
        # stay valid for other tests.
        db.create_relation(
            "Scratch",
            [Field("k", FieldType.INT), Field("v", FieldType.INT)],
            primary_key="k",
        )
        db.create_index("Scratch", "scratch_v", "v", kind="ttree")
        rng = random.Random(SEED + 3)
        model = {}
        index = db.relation("Scratch").index("Scratch_pk")
        for step in range(800):
            roll = rng.random()
            if roll < 0.5 or not model:
                k = rng.randrange(500)
                if k in model:
                    continue
                v = rng.randrange(1000)
                db.insert("Scratch", [k, v])
                model[k] = v
            elif roll < 0.8:
                k = rng.choice(list(model))
                v = rng.randrange(1000)
                db.update("Scratch", index.search(k), "v", v)
                model[k] = v
            else:
                k = rng.choice(list(model))
                db.delete("Scratch", index.search(k))
                del model[k]
        state = {
            d["k"]: d["v"] for d in db.select("Scratch").to_dicts()
        }
        assert state == model
        # The secondary index agrees too.
        lo = 250
        got = db.select("Scratch", ge("v", lo))
        want = [k for k, v in model.items() if v >= lo]
        assert len(got) == len(want)
