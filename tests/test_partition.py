"""Unit tests for partitions: slots, heap space, forwarding, serialization."""

import pytest

from repro.errors import (
    DanglingPointerError,
    HeapOverflowError,
    PartitionFullError,
    StorageError,
)
from repro.storage.partition import Partition, PartitionConfig
from repro.storage.tuples import TupleRef


def make_partition(slots=8, heap=256) -> Partition:
    return Partition(0, PartitionConfig(slot_capacity=slots, heap_capacity=heap))


class TestInsertRead:
    def test_roundtrip_fixed_fields(self):
        part = make_partition()
        slot = part.insert([1, 2.5, None])
        assert part.read(slot) == [1, 2.5, None]

    def test_roundtrip_string_via_heap(self):
        part = make_partition()
        slot = part.insert(["hello", 7])
        assert part.read(slot) == ["hello", 7]
        assert part.heap_free < part.config.heap_capacity

    def test_read_field_single_position(self):
        part = make_partition()
        slot = part.insert(["alpha", 42])
        assert part.read_field(slot, 0) == "alpha"
        assert part.read_field(slot, 1) == 42

    def test_unicode_strings_roundtrip(self):
        part = make_partition()
        slot = part.insert(["héllo wörld ☃"])
        assert part.read(slot) == ["héllo wörld ☃"]

    def test_live_tuples_counts(self):
        part = make_partition()
        part.insert([1])
        part.insert([2])
        assert part.live_tuples == 2

    def test_slot_capacity_enforced(self):
        part = make_partition(slots=2)
        part.insert([1])
        part.insert([2])
        with pytest.raises(PartitionFullError):
            part.insert([3])

    def test_heap_capacity_enforced(self):
        part = make_partition(heap=10)
        with pytest.raises(HeapOverflowError):
            part.insert(["x" * 100])

    def test_slot_reuse_after_delete(self):
        part = make_partition(slots=2)
        slot = part.insert([1])
        part.insert([2])
        part.delete(slot)
        reused = part.insert([3])
        assert reused == slot

    def test_has_room_checks_both_resources(self):
        part = make_partition(slots=1, heap=10)
        assert part.has_room(5)
        assert not part.has_room(50)
        part.insert([1])
        assert not part.has_room(0)


class TestUpdate:
    def test_update_fixed_field(self):
        part = make_partition()
        slot = part.insert([1, 2])
        part.update_field(slot, 1, 99)
        assert part.read(slot) == [1, 99]

    def test_update_string_in_place_when_shorter(self):
        part = make_partition()
        slot = part.insert(["longvalue"])
        used_before = part.config.heap_capacity - part.heap_free
        part.update_field(slot, 0, "tiny")
        assert part.read(slot) == ["tiny"]
        # Shrinking reuses the existing heap region.
        assert part.config.heap_capacity - part.heap_free == used_before

    def test_update_string_growth_restores_elsewhere(self):
        part = make_partition()
        slot = part.insert(["ab"])
        part.update_field(slot, 0, "much longer value")
        assert part.read(slot) == ["much longer value"]

    def test_update_overflowing_heap_raises(self):
        part = make_partition(heap=16)
        slot = part.insert(["12345678"])
        with pytest.raises(HeapOverflowError):
            part.update_field(slot, 0, "x" * 15)

    def test_version_bumps_on_mutation(self):
        part = make_partition()
        v0 = part.version
        slot = part.insert([1])
        v1 = part.version
        part.update_field(slot, 0, 2)
        v2 = part.version
        part.delete(slot)
        assert v0 < v1 < v2 < part.version


class TestDeleteAndDangling:
    def test_delete_then_read_raises(self):
        part = make_partition()
        slot = part.insert([1])
        part.delete(slot)
        with pytest.raises(DanglingPointerError):
            part.read(slot)

    def test_double_delete_raises(self):
        part = make_partition()
        slot = part.insert([1])
        part.delete(slot)
        with pytest.raises(DanglingPointerError):
            part.delete(slot)

    def test_out_of_range_slot_raises(self):
        part = make_partition()
        with pytest.raises(DanglingPointerError):
            part.read(5)


class TestForwarding:
    def test_forwarding_address_recorded(self):
        part = make_partition()
        slot = part.insert([1])
        target = TupleRef(1, 0)
        part.set_forwarding(slot, target)
        assert part.forwarding(slot) == target

    def test_forwarded_slot_not_readable_directly(self):
        part = make_partition()
        slot = part.insert([1])
        part.set_forwarding(slot, TupleRef(1, 0))
        with pytest.raises(StorageError):
            part.read(slot)

    def test_forwarding_excluded_from_live_count(self):
        part = make_partition()
        slot = part.insert([1])
        part.insert([2])
        part.set_forwarding(slot, TupleRef(1, 0))
        assert part.live_tuples == 1

    def test_normal_slot_has_no_forwarding(self):
        part = make_partition()
        slot = part.insert([1])
        assert part.forwarding(slot) is None


class TestScan:
    def test_scan_yields_live_rows_only(self):
        part = make_partition()
        a = part.insert(["a"])
        b = part.insert(["b"])
        c = part.insert(["c"])
        part.delete(b)
        part.set_forwarding(c, TupleRef(1, 0))
        rows = dict(part.scan())
        assert rows == {a: ["a"]}


class TestInsertAt:
    def test_insert_at_specific_slot(self):
        part = make_partition()
        part.insert_at(3, ["x", 1])
        assert part.read(3) == ["x", 1]
        assert part.live_tuples == 1

    def test_insert_at_occupied_slot_raises(self):
        part = make_partition()
        slot = part.insert([1])
        with pytest.raises(StorageError):
            part.insert_at(slot, [2])

    def test_insert_at_leaves_earlier_slots_free(self):
        part = make_partition()
        part.insert_at(2, [1])
        # Slots 0 and 1 remain free for ordinary inserts.
        a = part.insert([10])
        b = part.insert([11])
        assert {a, b} == {0, 1}


class TestCompact:
    def test_compact_reclaims_abandoned_heap(self):
        part = make_partition(heap=64)
        slot = part.insert(["abcdefgh"])
        for __ in range(3):
            part.update_field(slot, 0, "abcdefgh!")  # grows, abandons old
            part.update_field(slot, 0, "abcdefgh")
        free_before = part.heap_free
        part.compact()
        assert part.heap_free > free_before
        assert part.read(slot) == ["abcdefgh"]

    def test_compact_preserves_all_rows(self):
        part = make_partition()
        slots = [part.insert([f"value-{i}", i]) for i in range(5)]
        part.compact()
        for i, slot in enumerate(slots):
            assert part.read(slot) == [f"value-{i}", i]


class TestSerialization:
    def test_roundtrip_preserves_rows(self):
        part = make_partition()
        a = part.insert(["hello", 1])
        b = part.insert(["world", 2])
        part.delete(a)
        clone = Partition.from_bytes(part.to_bytes())
        assert clone.read(b) == ["world", 2]
        assert clone.live_tuples == 1
        assert clone.version == part.version

    def test_roundtrip_preserves_forwarding(self):
        part = make_partition()
        slot = part.insert([1])
        part.set_forwarding(slot, TupleRef(7, 3))
        clone = Partition.from_bytes(part.to_bytes())
        assert clone.forwarding(slot) == TupleRef(7, 3)

    def test_roundtrip_preserves_free_slots(self):
        part = make_partition(slots=3)
        a = part.insert([1])
        part.insert([2])
        part.delete(a)
        clone = Partition.from_bytes(part.to_bytes())
        assert clone.insert([9]) == a  # reuses the freed slot

    def test_roundtrip_preserves_config(self):
        part = make_partition(slots=5, heap=128)
        clone = Partition.from_bytes(part.to_bytes())
        assert clone.config == PartitionConfig(5, 128)

    def test_clone_mutations_do_not_affect_original(self):
        part = make_partition()
        slot = part.insert(["orig"])
        clone = Partition.from_bytes(part.to_bytes())
        clone.update_field(slot, 0, "new")
        assert part.read(slot) == ["orig"]
