"""Shared fixtures: the paper's Figure 1 database and generator RNGs."""

from __future__ import annotations

import random

import pytest

from repro import Field, FieldType, ForeignKey, MainMemoryDatabase

#: Figure 1's Department relation: (Name, Id).
DEPARTMENTS = [
    ("Toy", 459),
    ("Shoe", 409),
    ("Linen", 411),
    ("Paint", 455),
]

#: Figure 1's Employee relation: (Name, Id, Age, Dept_Id).
EMPLOYEES = [
    ("Dave", 23, 24, 459),
    ("Suzan", 12, 27, 459),
    ("Yaman", 44, 54, 411),
    ("Jane", 43, 47, 411),
    ("Cindy", 22, 22, 409),
]


def build_figure1_db(durable: bool = False) -> MainMemoryDatabase:
    """The Employee/Department database of the paper's Figure 1."""
    db = MainMemoryDatabase(durable=durable)
    db.create_relation(
        "Department",
        [Field("Name", FieldType.STR), Field("Id", FieldType.INT)],
        primary_key="Id",
    )
    db.create_relation(
        "Employee",
        [
            Field("Name", FieldType.STR),
            Field("Id", FieldType.INT),
            Field("Age", FieldType.INT),
            Field(
                "Dept_Id",
                FieldType.INT,
                references=ForeignKey("Department", "Id"),
            ),
        ],
        primary_key="Id",
    )
    for name, dept_id in DEPARTMENTS:
        db.insert("Department", [name, dept_id])
    for name, emp_id, age, dept_id in EMPLOYEES:
        db.insert("Employee", [name, emp_id, age, dept_id])
    return db


@pytest.fixture
def figure1_db() -> MainMemoryDatabase:
    """A volatile Figure 1 database."""
    return build_figure1_db(durable=False)


@pytest.fixture
def durable_db() -> MainMemoryDatabase:
    """A durable Figure 1 database with recovery machinery attached."""
    return build_figure1_db(durable=True)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for workload generation."""
    return random.Random(0xC0FFEE)
