"""Tests for the predicate algebra."""

import pytest

from repro.query.predicates import (
    Comparison,
    Conjunction,
    Op,
    between,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)


def reader(**fields):
    return lambda name: fields[name]


class TestComparisonMatching:
    def test_eq(self):
        assert eq("Age", 30).matches(reader(Age=30))
        assert not eq("Age", 30).matches(reader(Age=31))

    def test_ne(self):
        assert ne("Age", 30).matches(reader(Age=31))
        assert not ne("Age", 30).matches(reader(Age=30))

    def test_lt_le(self):
        assert lt("Age", 30).matches(reader(Age=29))
        assert not lt("Age", 30).matches(reader(Age=30))
        assert le("Age", 30).matches(reader(Age=30))

    def test_gt_ge(self):
        assert gt("Age", 65).matches(reader(Age=66))
        assert not gt("Age", 65).matches(reader(Age=65))
        assert ge("Age", 65).matches(reader(Age=65))

    def test_between_inclusive(self):
        pred = between("Age", 20, 30)
        assert pred.matches(reader(Age=20))
        assert pred.matches(reader(Age=30))
        assert not pred.matches(reader(Age=31))

    def test_between_requires_high(self):
        with pytest.raises(ValueError):
            Comparison("Age", Op.BETWEEN, 20)

    def test_string_comparison(self):
        assert eq("Name", "Toy").matches(reader(Name="Toy"))
        assert lt("Name", "M").matches(reader(Name="Linen"))


class TestOperatorClassification:
    def test_only_ne_cannot_use_order(self):
        # "Non-equijoins other than 'not equals' can make use of
        # ordering of the data."
        for op in Op:
            if op is Op.NE:
                assert not op.usable_with_order
            else:
                assert op.usable_with_order

    def test_only_eq_is_exact_match(self):
        assert Op.EQ.exact_match
        assert not Op.GE.exact_match
        assert not Op.BETWEEN.exact_match


class TestKeyRanges:
    def test_eq_range(self):
        assert eq("x", 5).key_range() == (5, 5, True, True)

    def test_inequality_ranges(self):
        assert lt("x", 5).key_range() == (None, 5, True, False)
        assert le("x", 5).key_range() == (None, 5, True, True)
        assert gt("x", 5).key_range() == (5, None, False, True)
        assert ge("x", 5).key_range() == (5, None, True, True)

    def test_between_range(self):
        assert between("x", 1, 9).key_range() == (1, 9, True, True)

    def test_ne_has_no_range(self):
        with pytest.raises(ValueError):
            ne("x", 5).key_range()


class TestConjunction:
    def test_and_operator_builds_conjunction(self):
        pred = gt("Age", 20) & lt("Age", 30)
        assert isinstance(pred, Conjunction)
        assert pred.matches(reader(Age=25))
        assert not pred.matches(reader(Age=35))

    def test_nested_conjunction_flattens_comparisons(self):
        pred = Conjunction((gt("a", 1) & lt("a", 5), eq("b", 2)))
        leaves = pred.comparisons()
        assert len(leaves) == 3

    def test_empty_reader_field_raises_keyerror(self):
        with pytest.raises(KeyError):
            eq("Missing", 1).matches(reader(Age=1))

    def test_repr_is_readable(self):
        assert "Age" in repr(gt("Age", 65))
        assert "BETWEEN" in repr(between("Age", 1, 2))
        assert "AND" in repr(gt("a", 1) & lt("a", 5))
