"""Differential tests for cost-based multi-join ordering.

The contract under test: ``configure_optimizer(join_ordering="cost")``
may change the *plan* of a 3+-relation chain, but never the result —
identical sorted rows across both orderings, both engines, and any
worker count — and the ordering decision itself is deterministic per
(statement, statistics versions).
"""

import random

import pytest

from repro import MainMemoryDatabase
from repro.cache import CacheConfig
from repro.instrument import counters_scope
from repro.query.optimizer import (
    ForecastOps,
    forecast_hash_join,
    forecast_precomputed_join,
    forecast_tree_join,
)

SEED = 19860528

CHAIN_QUERIES = [
    # FK chain written from the pointer side.
    "SELECT * FROM Track JOIN Album ON album = aid JOIN Artist ON artist "
    "= rid WHERE genre = 2",
    # Value-join chain written largest-first (the bad order).
    "SELECT * FROM Track JOIN Album ON album = aid JOIN Artist ON artist "
    "= rid JOIN Label ON Artist.label = Label.lid WHERE country = 1",
    # Explicit columns + residual cross-table predicate.
    "SELECT Track.tid, Artist.rid FROM Track JOIN Album ON album = aid "
    "JOIN Artist ON artist = rid WHERE genre = 1 AND rid > 3",
    # Aggregation over a reordered chain.
    "SELECT country, COUNT(*) AS n FROM Track JOIN Album ON album = aid "
    "JOIN Artist ON artist = rid JOIN Label ON Artist.label = Label.lid "
    "GROUP BY country ORDER BY n DESC",
    # DISTINCT + ORDER BY + LIMIT post-processing.
    "SELECT DISTINCT genre FROM Track JOIN Album ON album = aid "
    "JOIN Artist ON artist = rid WHERE rid < 6 ORDER BY genre LIMIT 4",
]


def build_db() -> MainMemoryDatabase:
    db = MainMemoryDatabase()
    db.sql("CREATE TABLE Label (lid INT, country INT, PRIMARY KEY (lid))")
    db.sql(
        "CREATE TABLE Artist (rid INT, label INT REFERENCES Label(lid), "
        "PRIMARY KEY (rid))"
    )
    db.sql(
        "CREATE TABLE Album (aid INT, artist INT REFERENCES Artist(rid), "
        "year INT, PRIMARY KEY (aid))"
    )
    db.sql(
        "CREATE TABLE Track (tid INT, album INT REFERENCES Album(aid), "
        "genre INT, PRIMARY KEY (tid))"
    )
    rng = random.Random(SEED)
    for l in range(5):
        db.insert("Label", [l, l % 3])
    for r in range(12):
        db.insert("Artist", [r, rng.randrange(5)])
    for a in range(60):
        db.insert("Album", [a, rng.randrange(12), 1980 + rng.randrange(10)])
    for t in range(300):
        db.insert("Track", [t, rng.randrange(60), rng.randrange(4)])
    return db


def run_query(query, ordering, engine="tuple", workers=1):
    db = build_db()
    db.configure_optimizer(join_ordering=ordering)
    if engine == "batch":
        db.configure_execution(
            engine="batch",
            workers=workers,
            pool="inline" if workers > 1 else None,
        )
    try:
        with counters_scope() as ops:
            result = db.sql(query)
        if hasattr(result, "descriptor"):
            rows = sorted(result.materialize(resolve_refs=True))
            names = result.descriptor.column_names
        else:  # ValueTable (aggregates)
            rows = result.to_dicts()
            names = None
        return rows, names, ops.as_dict()
    finally:
        db.configure_execution()


class TestOrderingIsInvisible:
    @pytest.mark.parametrize("query", CHAIN_QUERIES)
    @pytest.mark.parametrize(
        "engine,workers", [("tuple", 1), ("batch", 1), ("batch", 4)]
    )
    def test_same_rows_and_labels_as_written(self, query, engine, workers):
        base_rows, base_names, __ = run_query(query, "written")
        rows, names, __ = run_query(query, "cost", engine, workers)
        assert rows == base_rows
        assert names == base_names

    def test_counter_totals_identical_across_worker_counts(self):
        reference = None
        for workers in (1, 4):
            rows, __, ops = run_query(
                CHAIN_QUERIES[1], "cost", "batch", workers
            )
            if reference is None:
                reference = (rows, ops)
            else:
                assert (rows, ops) == reference

    def test_cost_mode_reduces_ops_on_bad_written_order(self):
        __, __, written = run_query(CHAIN_QUERIES[1], "written")
        __, __, cost = run_query(CHAIN_QUERIES[1], "cost")
        assert sum(cost.values()) < sum(written.values())


class TestDeterminism:
    def test_same_plan_twice(self):
        db = build_db()
        db.configure_optimizer(join_ordering="cost")
        explain = "EXPLAIN " + CHAIN_QUERIES[1]
        assert db.sql(explain) == db.sql(explain)

    def test_same_plan_across_instances(self):
        a, b = build_db(), build_db()
        for db in (a, b):
            db.configure_optimizer(join_ordering="cost")
        explain = "EXPLAIN " + CHAIN_QUERIES[1]
        assert a.sql(explain) == b.sql(explain)

    def test_same_rows_after_cache_round_trip(self):
        db = build_db()
        db.configure_cache(CacheConfig())
        db.configure_optimizer(join_ordering="cost")
        first = sorted(
            db.sql(CHAIN_QUERIES[0]).materialize(resolve_refs=True)
        )
        again = sorted(
            db.sql(CHAIN_QUERIES[0]).materialize(resolve_refs=True)
        )
        assert first == again
        stats = db.cache_stats()
        assert stats["result"]["hits"] >= 1

    def test_cached_plans_keyed_per_ordering_mode(self):
        db = build_db()
        db.configure_cache(CacheConfig())
        query = CHAIN_QUERIES[1]
        db.configure_optimizer(join_ordering="written")
        written = sorted(db.sql(query).materialize(resolve_refs=True))
        db.configure_optimizer(join_ordering="cost")
        # A mode flip must not serve the written-order cached plan.
        cost = sorted(db.sql(query).materialize(resolve_refs=True))
        assert written == cost


class TestSafetyFallbacks:
    """Statements outside the safe subset plan exactly as written."""

    def assert_written_plan(self, db, query):
        explain = "EXPLAIN " + query
        written = db.sql(explain)
        db.configure_optimizer(join_ordering="cost")
        cost = db.sql(explain)
        db.configure_optimizer(join_ordering=None)
        assert written == cost

    def test_forced_method_falls_back(self):
        db = build_db()
        self.assert_written_plan(
            db,
            "SELECT * FROM Track JOIN Album ON album = aid USING hash "
            "JOIN Artist ON artist = rid",
        )

    def test_nonequi_step_falls_back(self):
        db = build_db()
        self.assert_written_plan(
            db,
            "SELECT * FROM Track JOIN Album ON album = aid "
            "JOIN Artist ON year > rid",
        )

    def test_two_table_join_unchanged(self):
        db = build_db()
        self.assert_written_plan(
            db, "SELECT * FROM Track JOIN Album ON album = aid"
        )

    def test_bare_shared_column_reference_falls_back(self):
        db = MainMemoryDatabase()
        db.sql("CREATE TABLE A (ka INT, x INT, PRIMARY KEY (ka))")
        db.sql("CREATE TABLE B (kb INT, x INT, a INT, PRIMARY KEY (kb))")
        db.sql("CREATE TABLE C (kc INT, x INT, b INT, PRIMARY KEY (kc))")
        rng = random.Random(SEED)
        for i in range(8):
            db.insert("A", [i, rng.randrange(4)])
        for i in range(16):
            db.insert("B", [i, rng.randrange(4), rng.randrange(8)])
        for i in range(32):
            db.insert("C", [i, rng.randrange(4), rng.randrange(16)])
        # "x" lives in all three tables: a bare reference binds to
        # whichever table kept the unqualified label, so cost mode must
        # keep the written order.
        query = (
            "SELECT x FROM C JOIN B ON b = kb JOIN A ON B.a = ka"
        )
        written = sorted(db.sql(query).materialize(resolve_refs=True))
        self.assert_written_plan(db, query)
        db.configure_optimizer(join_ordering="cost")
        assert sorted(db.sql(query).materialize(resolve_refs=True)) == written

    def test_star_select_with_shared_columns_matches_written(self):
        db = MainMemoryDatabase()
        db.sql("CREATE TABLE A (ka INT, x INT, PRIMARY KEY (ka))")
        db.sql("CREATE TABLE B (kb INT, x INT, a INT, PRIMARY KEY (kb))")
        db.sql("CREATE TABLE C (kc INT, x INT, b INT, PRIMARY KEY (kc))")
        rng = random.Random(SEED)
        for i in range(8):
            db.insert("A", [i, rng.randrange(4)])
        for i in range(16):
            db.insert("B", [i, rng.randrange(4), rng.randrange(8)])
        for i in range(32):
            db.insert("C", [i, rng.randrange(4), rng.randrange(16)])
        query = "SELECT * FROM C JOIN B ON b = kb JOIN A ON B.a = ka"
        res_written = db.sql(query)
        db.configure_optimizer(join_ordering="cost")
        res_cost = db.sql(query)
        assert res_written.descriptor.column_names == (
            res_cost.descriptor.column_names
        )
        assert sorted(res_written.materialize(resolve_refs=True)) == sorted(
            res_cost.materialize(resolve_refs=True)
        )


class TestForecastMonotonicity:
    """The cost model's forecasts move the right way."""

    def test_hash_join_cost_grows_with_build_side(self):
        small = forecast_hash_join(1000.0, 100.0, 1000.0).weighted()
        large = forecast_hash_join(1000.0, 10_000.0, 1000.0).weighted()
        assert small < large

    def test_hash_join_cost_grows_with_probe_side(self):
        few = forecast_hash_join(100.0, 1000.0, 100.0).weighted()
        many = forecast_hash_join(10_000.0, 1000.0, 100.0).weighted()
        assert few < many

    def test_hash_join_cost_grows_with_output(self):
        narrow = forecast_hash_join(1000.0, 1000.0, 100.0).weighted()
        wide = forecast_hash_join(1000.0, 1000.0, 50_000.0).weighted()
        assert narrow < wide

    def test_precomputed_beats_hash_at_any_size(self):
        for rows in (10.0, 1_000.0, 100_000.0):
            assert (
                forecast_precomputed_join(rows, rows).weighted()
                < forecast_hash_join(rows, rows, rows).weighted()
            )

    def test_tree_join_cost_grows_logarithmically_with_inner(self):
        a = forecast_tree_join(1000.0, 1_000.0, 1000.0).weighted()
        b = forecast_tree_join(1000.0, 1_000_000.0, 1000.0).weighted()
        assert a < b
        assert b < 2 * a  # log growth, not linear

    def test_forecast_addition_accumulates(self):
        one = ForecastOps(comparisons=5.0, hashes=2.0)
        two = ForecastOps(comparisons=1.0, moves=4.0)
        total = one + two
        assert total.comparisons == 6.0
        assert total.moves == 4.0
        assert total.hashes == 2.0
        assert total.weighted() == pytest.approx(
            one.weighted() + two.weighted()
        )
