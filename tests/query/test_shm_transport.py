"""The shared-memory morsel transport (DESIGN.md section 3.13).

Covers the full contract stack:

* packed-layout round-trips (header, refs, rows, slices);
* :class:`ShmArena` lifecycle — create/unlink/transfer/drain, fork-child
  disownment (a child must never unlink the parent's live segments);
* the worker-side :class:`SegmentCache` and probe-table LRU bounds;
* the determinism contract — bit-identical rows and Section 3.1 counter
  totals across ``transport {pickle, shm}`` × ``workers {1, 2, 4}``;
* the zero-overhead contract — the pickle wire is byte-identical
  before, during-off, and after shm use (off/on/off);
* threshold gating, platform fallback, ``pool.shm`` chaos healing;
* the measured payoff — a ≥5x coordinator pipe-byte reduction on the
  wide-probe workload — and the observability surfaces that report it.

Every test asserts segment hygiene on the way out: the module-level
autouse fixture fails any test that leaves an owned segment or a
``repro-*`` entry in ``/dev/shm``.
"""

import os
import pickle
import random

import pytest

from repro import Field, FieldType, MainMemoryDatabase
from repro.errors import ConfigError, PoisonedMorselError
from repro.fault import FaultPolicy
from repro.instrument import counters_scope
from repro.query.parallel import ParallelBatchExecutor, shm, tasks
from repro.query.plan import FilterNode, JoinNode, ProjectNode, ScanNode
from repro.query.predicates import gt, lt
from repro.query.vectorized import DEREF_SAVED_COUNTER, BatchExecutor
from repro.query.vectorized.config import ExecutionConfig

SEED = 19860528
N_R = 900
N_S = 180
VALUE_SPACE = 60
MORSEL = 128
THRESHOLD = 64  # far below the data size so every packable path packs
WORKER_COUNTS = (2, 4)


def _dev_shm_residue():
    try:
        return [f for f in os.listdir("/dev/shm") if f.startswith("repro-")]
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return []


@pytest.fixture(autouse=True)
def no_leaked_segments():
    yield
    assert shm.arena().active_segments() == 0
    assert _dev_shm_residue() == []


@pytest.fixture(scope="module")
def db():
    rng = random.Random(SEED)
    database = MainMemoryDatabase()
    database.create_relation(
        "R",
        [
            Field("Id", FieldType.INT),
            Field("A", FieldType.INT),
            Field("B", FieldType.INT),
        ],
        primary_key="Id",
    )
    database.create_relation(
        "S",
        [Field("Id", FieldType.INT), Field("A", FieldType.INT)],
        primary_key="Id",
    )
    for i in range(N_R):
        database.insert(
            "R", [i, rng.randrange(VALUE_SPACE), rng.randrange(1_000)]
        )
    for i in range(N_S):
        database.insert("S", [i, rng.randrange(VALUE_SPACE)])
    return database


def _executor(db, workers=2, transport="shm", **kwargs):
    kwargs.setdefault("morsel_size", MORSEL)
    kwargs.setdefault("shm_threshold_rows", THRESHOLD)
    kwargs.setdefault("pool", "inline")
    return ParallelBatchExecutor(
        db.catalog,
        batch_size=64,
        workers=workers,
        transport=transport,
        **kwargs,
    )


def _run(executor, plan):
    with counters_scope() as counters:
        result = executor.execute(plan)
    counts = counters.snapshot().as_dict()
    counts.pop(DEREF_SAVED_COUNTER, None)
    return result.rows(), counts


# --------------------------------------------------------------------- #
# packed layout
# --------------------------------------------------------------------- #


class TestPackedLayout:
    def test_rows_round_trip(self):
        rows = [((1, 2), (3, 4)), ((5, 6), (7, 8)), ((9, 10), (11, 12))]
        buf = bytearray(shm.packed_nbytes(2, len(rows)))
        written = shm.pack_into(buf, rows, 2, "rows")
        assert written == len(buf)
        assert shm.unpack_header(buf) == (2, 3)
        assert shm.unpack_rows(buf, 2, 0, 3) == rows
        assert shm.unpack_rows(buf, 2, 1, 2) == rows[1:2]

    def test_refs_round_trip(self):
        pairs = [(0, 5), (1, 9), (2, 123456789)]
        buf = bytearray(shm.packed_nbytes(1, len(pairs)))
        shm.pack_into(buf, pairs, 1, "refs")
        assert shm.unpack_header(buf) == (1, 3)
        assert shm.unpack_refs(buf, 3) == pairs

    def test_empty_payload_round_trips(self):
        buf = bytearray(shm.packed_nbytes(3, 0))
        shm.pack_into(buf, [], 3, "rows")
        assert shm.unpack_header(buf) == (3, 0)
        assert shm.unpack_rows(buf, 3, 0, 0) == []

    def test_int64_extremes_survive(self):
        rows = [((2**62, -(2**62)),)]
        buf = bytearray(shm.packed_nbytes(1, 1))
        shm.pack_into(buf, rows, 1, "rows")
        assert shm.unpack_rows(buf, 1, 0, 1) == rows

    def test_unknown_shape_is_rejected(self):
        with pytest.raises(ValueError):
            shm.pack_into(bytearray(16), [], 1, "blobs")


# --------------------------------------------------------------------- #
# arena lifecycle
# --------------------------------------------------------------------- #


@pytest.mark.skipif(not shm.available(), reason="no shared_memory")
class TestArenaLifecycle:
    def test_write_read_unlink_rows(self):
        rows = [((0, i), (1, i + 1)) for i in range(50)]
        before = shm.arena().active_segments()
        descriptor = shm.write_rows(rows, 2, "rows")
        assert shm.is_rows(descriptor)
        assert shm.arena().active_segments() == before + 1
        assert shm.read_rows(descriptor, unlink=True) == rows
        assert shm.arena().active_segments() == before

    def test_read_without_unlink_keeps_segment(self):
        descriptor = shm.write_rows([(0, 1)], 1, "refs")
        assert shm.read_rows(descriptor, unlink=False) == [(0, 1)]
        # Still attachable by name — then reclaim it.
        assert shm.read_rows(descriptor, unlink=True) == [(0, 1)]

    def test_blob_round_trip(self):
        blob = os.urandom(10_000)
        descriptor = shm.write_blob(blob)
        assert shm.is_blob(descriptor)
        try:
            assert shm.read_blob(descriptor) == blob
        finally:
            shm.arena().unlink(descriptor[1])

    def test_slice_descriptor_reads_window(self):
        rows = [((0, i),) for i in range(100)]
        packed = shm.write_rows(rows, 1, "rows")
        name = packed[1]
        try:
            segment = shm.attach(name)
            try:
                window = shm.shm_slice(name, 1, 10, 20)
                assert shm.read_slice(window, segment) == rows[10:20]
            finally:
                segment.close()
        finally:
            shm.arena().unlink(name)

    def test_transfer_moves_unlink_duty(self):
        # A transferred descriptor is not owned by the creating arena
        # (the receiver unlinks) — exactly the worker-result protocol.
        descriptor = shm.write_rows([(0, 1), (0, 2)], 1, "refs",
                                    transfer=True)
        assert shm.arena().active_segments() == 0
        assert _dev_shm_residue() != []  # alive until the reader reaps it
        assert shm.read_rows(descriptor, unlink=True) == [(0, 1), (0, 2)]
        assert _dev_shm_residue() == []

    def test_drain_reaps_everything_owned(self):
        shm.write_rows([(0, 1)], 1, "refs")
        shm.write_rows([(0, 2)], 1, "refs")
        assert shm.arena().drain() >= 2
        assert shm.arena().active_segments() == 0

    def test_unlink_tolerates_missing_segment(self):
        shm.arena().unlink("repro-never-existed-12345")

    def test_descriptor_nbytes(self):
        assert shm.descriptor_nbytes(shm.shm_slice("x", 2, 10, 20)) == 320
        assert shm.descriptor_nbytes(("shm:rows", "x", "rows", 2, 5)) == 160
        assert shm.descriptor_nbytes(("shm:blob", "x", 77)) == 77
        assert shm.descriptor_nbytes([1, 2, 3]) == 0

    def test_forked_child_disowns_parent_segments(self):
        # Re-fork safety: a forked child inherits the arena registry
        # copy-on-write but must abandon it — the parent's segment has
        # to survive any child-side drain (e.g. the child's atexit).
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("no fork on this platform")
        descriptor = shm.write_rows([(0, 7)], 1, "refs")
        try:
            ctx = multiprocessing.get_context("fork")
            queue = ctx.SimpleQueue()

            def child():
                queue.put(
                    (shm.arena().active_segments(), shm.arena().drain())
                )

            proc = ctx.Process(target=child)
            proc.start()
            proc.join(30)
            assert proc.exitcode == 0
            assert queue.get() == (0, 0)
            # The parent's segment survived the child's drain.
            assert shm.read_rows(descriptor, unlink=False) == [(0, 7)]
        finally:
            shm.arena().unlink(descriptor[1])


# --------------------------------------------------------------------- #
# caches
# --------------------------------------------------------------------- #


@pytest.mark.skipif(not shm.available(), reason="no shared_memory")
class TestSegmentCache:
    def test_lru_eviction_and_counters(self):
        names = [shm.write_rows([(0, i)], 1, "refs")[1] for i in range(3)]
        cache = shm.SegmentCache(limit=2)
        try:
            cache.get(names[0])
            cache.get(names[1])
            assert cache.get(names[0]) is cache.get(names[0])  # hits
            cache.get(names[2])  # evicts names[1] (LRU)
            stats = cache.stats()
            assert stats["evictions"] == 1
            assert stats["attached"] == 2
            assert stats["hits"] >= 2
            assert stats["misses"] == 3
            # names[1] re-attaches: a miss, not an error.
            cache.get(names[1])
            assert cache.stats()["evictions"] == 2
        finally:
            cache.clear()
            for name in names:
                shm.arena().unlink(name)


class TestBlobCacheLRU:
    def test_bounded_with_eviction_counter(self):
        tasks.reset_blob_cache()
        try:
            limit = tasks._TABLE_CACHE_LIMIT
            for i in range(limit + 2):
                tasks._cache_table((0, i), {"t": i})
            stats = tasks.blob_cache_stats()
            assert stats["entries"] == limit
            assert stats["evictions"] == 2
            # Oldest entries fell out; newest survive.
            assert (0, 0) not in tasks._TABLE_CACHE
            assert (0, limit + 1) in tasks._TABLE_CACHE
        finally:
            tasks.reset_blob_cache()

    def test_probe_workload_evicts_past_limit(self, db):
        # Each hash-join statement broadcasts a fresh table_id, so more
        # than _TABLE_CACHE_LIMIT joins must evict (this was previously
        # unbounded growth across statements).
        tasks.reset_blob_cache()
        executor = _executor(db, workers=2)
        try:
            for lo in range(tasks._TABLE_CACHE_LIMIT + 2):
                plan = JoinNode(
                    ScanNode("R"),
                    ScanNode("S", gt("A", lo)),
                    "A",
                    "A",
                    "hash",
                )
                executor.execute(plan)
            assert tasks.blob_cache_stats()["evictions"] >= 1
        finally:
            executor.close()
            tasks.reset_blob_cache()


# --------------------------------------------------------------------- #
# determinism: transport x workers differential
# --------------------------------------------------------------------- #


def _plan_mix():
    return [
        ScanNode("R", gt("A", 10) & lt("A", 50)),
        FilterNode(ScanNode("R"), gt("B", 200) & lt("B", 800)),
        JoinNode(ScanNode("R"), ScanNode("S"), "A", "A", "hash"),
        JoinNode(ScanNode("S"), ScanNode("R"), "A", "A", "hash"),
        ProjectNode(
            ScanNode("R"), ("A",), deduplicate=True, dedup_method="hash"
        ),
        FilterNode(
            JoinNode(ScanNode("R"), ScanNode("S"), "A", "A", "hash"),
            gt("B", 500),
        ),
    ]


@pytest.mark.parametrize("plan", _plan_mix(), ids=lambda p: p.explain())
def test_transport_differential(db, plan):
    """Rows and the five Section 3.1 counter totals are bit-identical
    across transports and worker counts (workers=1 is the scalar
    engine)."""
    base_rows, base_counts = _run(
        BatchExecutor(db.catalog, batch_size=64), plan
    )
    for transport in ("pickle", "shm"):
        for workers in WORKER_COUNTS:
            executor = _executor(db, workers=workers, transport=transport)
            try:
                rows, counts = _run(executor, plan)
            finally:
                executor.close()
            assert rows == base_rows, (transport, workers)
            assert counts == base_counts, (transport, workers)


@pytest.mark.skipif(not shm.available(), reason="no shared_memory")
def test_shm_path_actually_packs(db):
    """The differential is meaningless if shm never engages: a big
    filter must create dispatch segments and packed results."""
    executor = _executor(db, workers=2)
    created_before = shm.arena().created_segments
    plan = FilterNode(ScanNode("R"), gt("B", 100))
    try:
        rows, __ = _run(executor, plan)
        assert rows
        assert shm.arena().created_segments > created_before
    finally:
        executor.close()


def test_process_pool_shm_smoke(db):
    """A real fork pool over shm produces scalar-identical results."""
    from repro.query.parallel import fork_available

    if not fork_available():
        pytest.skip("no fork on this platform")
    plan = JoinNode(
        ScanNode("R", gt("B", 100)), ScanNode("S"), "A", "A", "hash"
    )
    base_rows, base_counts = _run(BatchExecutor(db.catalog), plan)
    executor = _executor(db, workers=2, pool="process")
    try:
        rows, counts = _run(executor, plan)
        assert rows == base_rows
        assert counts == base_counts
        if executor.scheduler.fallback_reason is None:
            assert executor.scheduler.stats["process_runs"] > 0
    finally:
        executor.close()


# --------------------------------------------------------------------- #
# zero-overhead: the pickle wire stays byte-identical (off/on/off)
# --------------------------------------------------------------------- #


def _pin_token(db, executor, token=424_242):
    """Give an executor a fixed catalog token so wire captures from
    different executor instances are comparable byte-for-byte.
    Returns the displaced token so the caller can restore it before
    the executor is garbage-collected (``__del__`` closes again, and a
    second release of the *pinned* token would unregister whichever
    later executor holds it)."""
    original = executor.scheduler.token
    tasks.release_catalog(original)
    executor.scheduler.token = token
    tasks.register_catalog(token, db.catalog)
    return original


def _capture_wire(db, transport):
    executor = _executor(db, workers=2, transport=transport)
    displaced = _pin_token(db, executor)
    captured = []
    original = executor.scheduler.run

    def spy(kind, payloads):
        captured.append(
            (kind, pickle.dumps(payloads, pickle.HIGHEST_PROTOCOL))
        )
        return original(kind, payloads)

    executor.scheduler.run = spy
    try:
        for plan in (
            FilterNode(ScanNode("R"), gt("B", 300)),
            JoinNode(ScanNode("R"), ScanNode("S"), "A", "A", "hash"),
        ):
            executor.execute(plan)
    finally:
        executor.close()
        executor.scheduler.token = displaced  # de-pin for __del__
    return captured


def test_pickle_wire_byte_identical_off_on_off(db):
    before = _capture_wire(db, "pickle")
    during = _capture_wire(db, "shm")  # exercises shm in between
    after = _capture_wire(db, "pickle")
    assert before == after  # byte-identical, not merely equal rows
    assert all(
        shm.REQUEST_TAG not in repr(payload) for __, payload in before
    )
    # ... and the shm run really did use the wrapper protocol.
    assert any(
        pickle.loads(payload)[0][0] == shm.REQUEST_TAG
        for __, payload in during
    )


# --------------------------------------------------------------------- #
# gating and fallback
# --------------------------------------------------------------------- #


class TestGating:
    def test_below_threshold_creates_no_segments(self, db):
        executor = _executor(
            db, workers=2, shm_threshold_rows=10 * N_R
        )
        created_before = shm.arena().created_segments
        try:
            rows, __ = _run(
                executor, FilterNode(ScanNode("R"), gt("B", 100))
            )
            assert rows
            assert shm.arena().created_segments == created_before
        finally:
            executor.close()

    def test_unavailable_platform_falls_back_loudly(self, db, monkeypatch):
        monkeypatch.setattr(shm, "shared_memory", None)
        assert not shm.available()
        with pytest.warns(RuntimeWarning, match="shared_memory unavailable"):
            executor = _executor(db, workers=2, transport="shm")
        try:
            assert executor.transport == "pickle"
            assert executor.transport_fallback is not None
            base_rows, __ = _run(
                BatchExecutor(db.catalog, batch_size=64),
                ScanNode("R", gt("A", 20)),
            )
            rows, __ = _run(executor, ScanNode("R", gt("A", 20)))
            assert rows == base_rows
        finally:
            executor.close()

    def test_config_validates_transport(self):
        with pytest.raises(ConfigError):
            ExecutionConfig(engine="batch", transport="carrier-pigeon")
        with pytest.raises(ConfigError):
            ExecutionConfig(engine="batch", shm_threshold_rows=0)

    def test_env_default_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSPORT", raising=False)
        assert ExecutionConfig().transport == "pickle"
        monkeypatch.setenv("REPRO_TRANSPORT", "shm")
        assert ExecutionConfig().transport == "shm"
        # Explicit settings beat the environment.
        assert ExecutionConfig(transport="pickle").transport == "pickle"

    def test_configure_execution_keywords(self, db):
        db2 = MainMemoryDatabase()
        db2.create_relation(
            "T",
            [Field("Id", FieldType.INT), Field("V", FieldType.INT)],
            primary_key="Id",
        )
        db2.configure_execution(
            engine="batch",
            workers=2,
            pool="inline",
            transport="shm",
            shm_threshold_rows=128,
        )
        try:
            assert db2.executor.transport == "shm"
            assert db2.executor.shm_threshold_rows == 128
            assert db2.scheduler_stats()["transport"] == "shm"
        finally:
            db2.configure_execution()


# --------------------------------------------------------------------- #
# chaos: the pool.shm fault point
# --------------------------------------------------------------------- #


class TestShmFaults:
    def test_attach_fault_heals_through_retry(self, db):
        db.configure_faults(
            seed=3,
            policies=[FaultPolicy("pool.shm", "error", max_fires=1)],
        )
        executor = _executor(db, workers=2)
        try:
            base_rows, base_counts = _run(
                BatchExecutor(db.catalog, batch_size=64),
                FilterNode(ScanNode("R"), gt("B", 200)),
            )
            rows, counts = _run(
                executor, FilterNode(ScanNode("R"), gt("B", 200))
            )
            assert rows == base_rows
            assert counts == base_counts
            assert executor.scheduler.stats["morsel_retries"] >= 1
        finally:
            executor.close()
            db.configure_faults()

    def test_persistent_fault_poisons_the_morsel(self, db):
        db.configure_faults(
            seed=3, policies=[FaultPolicy("pool.shm", "error")]
        )
        executor = _executor(db, workers=2)
        try:
            with pytest.raises(PoisonedMorselError):
                executor.execute(FilterNode(ScanNode("R"), gt("B", 200)))
            # The doomed run reaped its packed result segments; the
            # autouse fixture verifies /dev/shm hygiene on the way out.
        finally:
            executor.close()
            db.configure_faults()


# --------------------------------------------------------------------- #
# the payoff: measured pipe-byte reduction, and its surfaces
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def wide_db():
    # The bench workload in miniature: a high fan-out probe whose
    # joined rows dwarf the fixed per-morsel payload overhead.
    rng = random.Random(SEED + 1)
    database = MainMemoryDatabase()
    database.create_relation(
        "R2",
        [Field("Id", FieldType.INT), Field("A", FieldType.INT)],
        primary_key="Id",
    )
    database.create_relation(
        "S2",
        [Field("Id", FieldType.INT), Field("A", FieldType.INT)],
        primary_key="Id",
    )
    for i in range(3000):
        database.insert("R2", [i, rng.randrange(20)])
    for i in range(200):
        database.insert("S2", [i, rng.randrange(20)])
    return database


def _wide_probe_bytes(wide_db, transport):
    executor = _executor(wide_db, workers=2, transport=transport,
                         morsel_size=256)
    executor.scheduler.measure_bytes = True
    plan = JoinNode(ScanNode("R2"), ScanNode("S2"), "A", "A", "hash")
    try:
        rows, __ = _run(executor, plan)
        stats = executor.scheduler.stats
        return rows, stats["dispatch_bytes"] + stats["result_bytes"]
    finally:
        executor.close()


@pytest.mark.skipif(not shm.available(), reason="no shared_memory")
def test_wide_probe_pipe_bytes_reduced_5x(wide_db):
    pickle_rows, pickle_bytes = _wide_probe_bytes(wide_db, "pickle")
    shm_rows, shm_bytes = _wide_probe_bytes(wide_db, "shm")
    assert shm_rows == pickle_rows
    assert pickle_bytes >= 5 * shm_bytes, (pickle_bytes, shm_bytes)


@pytest.mark.skipif(not shm.available(), reason="no shared_memory")
def test_transport_metrics_and_span_annotations(db):
    from repro.obs import runtime as obs_runtime

    db.configure_observability()
    executor = _executor(db, workers=2)
    try:
        executor.execute(
            JoinNode(ScanNode("R"), ScanNode("S"), "A", "A", "hash")
        )
        metrics = db.observability.metrics
        assert (
            metrics.counter(
                "transport_bytes_total", path="dispatch", transport="shm"
            ).value
            > 0
        )
        assert (
            metrics.counter(
                "transport_bytes_total", path="result", transport="shm"
            ).value
            > 0
        )
        # All segments are reclaimed by the time the run finishes.
        assert metrics.gauge("shm_segments_active").value == 0

        def morsel_spans(span):
            found = []
            if span.attrs.get("transport") is not None:
                found.append(span)
            for child in span.children:
                found.extend(morsel_spans(child))
            return found

        annotated = morsel_spans(db.observability.tracer.last())
        assert annotated
        assert all(
            span.attrs["payload_bytes"] > 0 for span in annotated
        )
        assert {span.attrs["transport"] for span in annotated} == {"shm"}
    finally:
        executor.close()
        obs_runtime.deactivate()
        db.observability = None


def test_scheduler_stats_surface(db):
    db.configure_execution(
        engine="batch",
        workers=2,
        pool="inline",
        morsel_size=MORSEL,
        transport="shm",
        shm_threshold_rows=THRESHOLD,
    )
    try:
        db.sql("SELECT Id FROM R WHERE B > 400")
        stats = db.scheduler_stats()
        assert stats["transport"] == "shm"
        assert stats["shm"]["segments_active"] == 0
        assert "blob_cache" in stats
        assert {"dispatch_bytes", "result_bytes"} <= set(stats)
    finally:
        db.configure_execution()
