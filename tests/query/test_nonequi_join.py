"""Tests for non-equijoins (Section 3.3.5)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PlanError, UnsupportedOperationError
from repro.indexes import ChainedBucketHashIndex, TTreeIndex
from repro.instrument import counters_scope
from repro.query.join import band_join, theta_join, tree_inequality_join
from repro.query.plan import JoinNode, ScanNode

IDENT = lambda x: x  # noqa: E731

OPS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def build_tree(values):
    tree = TTreeIndex(unique=False)
    for v in values:
        tree.insert(v)
    return tree


class TestThetaJoin:
    def test_matches_predicate(self):
        outer, inner = [1, 2, 3], [2, 3, 4]
        got = theta_join(outer, inner, IDENT, IDENT, lambda a, b: a != b)
        expected = [(a, b) for a in outer for b in inner if a != b]
        assert sorted(got) == sorted(expected)

    def test_empty_inputs(self):
        assert theta_join([], [1], IDENT, IDENT, lambda a, b: True) == []


class TestTreeInequalityJoin:
    @pytest.mark.parametrize("op", sorted(OPS))
    def test_matches_brute_force(self, op):
        rng = random.Random(3)
        outer = [rng.randrange(100) for __ in range(60)]
        inner = [rng.randrange(100) for __ in range(80)]
        tree = build_tree(inner)
        got = tree_inequality_join(outer, IDENT, tree, op)
        predicate = OPS[op]
        expected = [
            (a, b) for a in outer for b in inner if predicate(a, b)
        ]
        assert sorted(got) == sorted(expected)

    def test_ne_rejected(self):
        # "Non-equijoins other than 'not equals' can make use of
        # ordering" — '!=' cannot.
        with pytest.raises(UnsupportedOperationError):
            tree_inequality_join([1], IDENT, build_tree([1]), "!=")

    def test_requires_ordered_index(self):
        with pytest.raises(UnsupportedOperationError):
            tree_inequality_join(
                [1], IDENT, ChainedBucketHashIndex(unique=False), "<"
            )

    @pytest.mark.slow
    def test_cheaper_than_theta_join(self):
        # One descent + run scan per outer tuple beats comparing against
        # every inner tuple.
        rng = random.Random(5)
        outer = [rng.randrange(10**6) for __ in range(200)]
        inner = sorted(rng.randrange(10**6) for __ in range(2000))
        tree = build_tree(inner)
        # Use a highly selective op direction: few matches per outer.
        with counters_scope() as tree_cost:
            a = tree_inequality_join(outer, IDENT, tree, ">=")
        with counters_scope() as theta_cost:
            b = theta_join(outer, inner, IDENT, IDENT, OPS[">="])
        assert len(a) == len(b)
        # The advantage is in per-pair overhead-free emission: compare
        # *comparisons*, which theta pays per outer x inner.
        assert tree_cost.comparisons < theta_cost.comparisons / 2

    @settings(max_examples=40, deadline=None)
    @given(
        outer=st.lists(st.integers(0, 50), max_size=30),
        inner=st.lists(st.integers(0, 50), max_size=30),
        op=st.sampled_from(sorted(OPS)),
    )
    def test_property_equals_brute_force(self, outer, inner, op):
        tree = build_tree(inner)
        got = tree_inequality_join(outer, IDENT, tree, op)
        predicate = OPS[op]
        expected = [(a, b) for a in outer for b in inner if predicate(a, b)]
        assert sorted(got) == sorted(expected)


class TestBandJoin:
    def test_matches_brute_force(self):
        rng = random.Random(7)
        outer = [rng.randrange(1000) for __ in range(50)]
        inner = [rng.randrange(1000) for __ in range(200)]
        tree = build_tree(inner)
        got = band_join(outer, IDENT, tree, below=5, above=10)
        expected = [
            (a, b) for a in outer for b in inner if a - 5 <= b <= a + 10
        ]
        assert sorted(got) == sorted(expected)

    def test_zero_band_is_equijoin(self):
        outer, inner = [1, 2, 3], [2, 2, 3]
        got = band_join(outer, IDENT, build_tree(inner), 0, 0)
        assert sorted(got) == [(2, 2), (2, 2), (3, 3)]


class TestPlanIntegration:
    def test_plan_validates_op(self):
        with pytest.raises(PlanError):
            JoinNode(ScanNode("A"), ScanNode("B"), "x", "y", "hash", "<")
        with pytest.raises(PlanError):
            JoinNode(ScanNode("A"), ScanNode("B"), "x", "y", "tree", "!=")
        with pytest.raises(PlanError):
            JoinNode(ScanNode("A"), ScanNode("B"), "x", "y", "hash", "~")

    def test_engine_inequality_join_with_index(self, figure1_db):
        figure1_db.create_index("Employee", "by_age", "Age", kind="ttree")
        result = figure1_db.join(
            "Employee", "Employee", on=("Age", "Age"), op="<"
        )
        ages = [24, 27, 54, 47, 22]
        assert len(result) == sum(1 for a in ages for b in ages if a < b)

    def test_engine_inequality_join_without_index_falls_back(self, figure1_db):
        result = figure1_db.join(
            "Employee", "Employee", on=("Age", "Age"), op=">="
        )
        ages = [24, 27, 54, 47, 22]
        assert len(result) == sum(1 for a in ages for b in ages if a >= b)

    def test_engine_ne_join(self, figure1_db):
        result = figure1_db.join(
            "Employee", "Department", on=("Age", "Id"), op="!="
        )
        assert len(result) == 20  # no age equals any department id

    def test_explain_shows_operator(self):
        node = JoinNode(ScanNode("A"), ScanNode("B"), "x", "y",
                        "nested_loops", "<")
        assert "x < y" in node.explain()
