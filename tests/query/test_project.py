"""Tests for duplicate elimination (Section 3.4)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instrument import counters_scope
from repro.query.project import project_hash, project_sort_scan


class TestProjectHash:
    def test_removes_duplicates(self):
        assert sorted(project_hash([3, 1, 3, 2, 1])) == [1, 2, 3]

    def test_keeps_first_occurrence_order(self):
        assert project_hash([3, 1, 3, 2, 1]) == [3, 1, 2]

    def test_no_duplicates_identity(self):
        values = list(range(100))
        assert project_hash(values) == values

    def test_key_extractor_dedupes_by_key(self):
        items = [(1, "a"), (2, "b"), (1, "c")]
        got = project_hash(items, key_of=lambda it: it[0])
        assert got == [(1, "a"), (2, "b")]

    def test_table_size_defaults_to_half(self):
        # "The hash table size was always chosen to be |R|/2."
        values = list(range(1000))
        got = project_hash(values)  # must still be correct at load 2.0
        assert got == values

    def test_empty_input(self):
        assert project_hash([]) == []

    def test_all_duplicates(self):
        assert project_hash([7] * 500) == [7]


class TestProjectSortScan:
    def test_removes_duplicates_sorted(self):
        assert project_sort_scan([3, 1, 3, 2, 1]) == [1, 2, 3]

    def test_output_is_key_sorted(self):
        rng = random.Random(0)
        values = [rng.randrange(50) for __ in range(500)]
        got = project_sort_scan(values)
        assert got == sorted(set(values))

    def test_key_extractor(self):
        items = [(1, "a"), (2, "b"), (1, "c")]
        got = project_sort_scan(items, key_of=lambda it: it[0])
        assert [k for k, __ in got] == [1, 2]

    def test_does_not_mutate_input(self):
        values = [3, 1, 2]
        project_sort_scan(values)
        assert values == [3, 1, 2]

    def test_empty_input(self):
        assert project_sort_scan([]) == []


class TestEquivalence:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(-100, 100), max_size=300))
    def test_both_methods_agree(self, values):
        assert sorted(project_hash(values)) == project_sort_scan(values)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(-20, 20), st.integers(0, 10**6)),
            max_size=200,
        )
    )
    def test_agree_under_key_extractor(self, items):
        key = lambda it: it[0]  # noqa: E731
        hashed = {k for k, __ in project_hash(items, key)}
        sorted_keys = {k for k, __ in project_sort_scan(items, key)}
        assert hashed == sorted_keys == {k for k, __ in items}


class TestCostShapes:
    def test_hash_is_the_clear_winner_without_duplicates(self):
        # Graph 11: hashing linear, sort O(n log n).
        rng = random.Random(1)
        values = rng.sample(range(10**6), 5000)
        with counters_scope() as h:
            project_hash(values)
        with counters_scope() as s:
            project_sort_scan(values)
        assert h.weighted_cost() < s.weighted_cost()

    def test_hash_gets_faster_with_more_duplicates(self):
        # Graph 12's falling hash curve: fewer stored elements, shorter
        # chains.
        rng = random.Random(2)
        low_dup = [rng.randrange(10**6) for __ in range(5000)]
        high_dup = [rng.randrange(50) for __ in range(5000)]
        with counters_scope() as low:
            project_hash(low_dup)
        with counters_scope() as high:
            project_hash(high_dup)
        assert high.weighted_cost() < low.weighted_cost()

    def test_sort_scan_insensitive_to_duplicates(self):
        # "Sorting ... realizes no such advantage" — the full list is
        # sorted regardless (the insertion-sort dip is second-order).
        rng = random.Random(3)
        low_dup = [rng.randrange(10**6) for __ in range(4000)]
        high_dup = [rng.randrange(100) for __ in range(4000)]
        with counters_scope() as low:
            project_sort_scan(low_dup)
        with counters_scope() as high:
            project_sort_scan(high_dup)
        # Within a factor of ~3 either way, not an order of magnitude.
        ratio = high.weighted_cost() / low.weighted_cost()
        assert 1 / 3 <= ratio <= 3
