"""Tests for the three selection access paths."""

import pytest

from repro.errors import UnsupportedOperationError
from repro.indexes import (
    ChainedBucketHashIndex,
    ModifiedLinearHashIndex,
    TTreeIndex,
)
from repro.instrument import counters_scope
from repro.query.predicates import eq, gt
from repro.query.select import (
    select_from_relation,
    select_hash,
    select_scan,
    select_tree_exact,
    select_tree_range,
)


@pytest.fixture
def hash_index():
    idx = ModifiedLinearHashIndex(unique=False)
    for k in range(100):
        idx.insert(k)
    return idx


@pytest.fixture
def tree_index():
    idx = TTreeIndex(unique=False)
    for k in range(100):
        idx.insert(k)
    return idx


class TestAccessPaths:
    def test_hash_lookup(self, hash_index):
        assert select_hash(hash_index, 42) == [42]
        assert select_hash(hash_index, 999) == []

    def test_tree_exact(self, tree_index):
        assert select_tree_exact(tree_index, 42) == [42]
        assert select_tree_exact(tree_index, 999) == []

    def test_tree_exact_rejects_hash_index(self, hash_index):
        with pytest.raises(UnsupportedOperationError):
            select_tree_exact(hash_index, 42)

    def test_tree_range(self, tree_index):
        assert select_tree_range(tree_index, 10, 15) == list(range(10, 16))

    def test_tree_range_open_ended(self, tree_index):
        assert select_tree_range(tree_index, 95, None) == list(range(95, 100))
        assert select_tree_range(tree_index, None, 4) == list(range(5))

    def test_tree_range_rejects_hash_index(self, hash_index):
        # The operation hash structures were "excluded" from in the paper.
        with pytest.raises(UnsupportedOperationError):
            select_tree_range(hash_index, 1, 2)

    def test_sequential_scan(self, tree_index):
        got = select_scan(tree_index.scan(), lambda k: k % 10 == 0)
        assert got == list(range(0, 100, 10))


class TestPreferenceOrdering:
    def test_hash_cheaper_than_tree_cheaper_than_scan(self):
        # "A hash lookup is always faster than a tree lookup which is
        # always faster than a sequential scan."
        chb = ChainedBucketHashIndex.for_expected(5000, unique=True)
        tree = TTreeIndex(unique=True)
        for k in range(5000):
            chb.insert(k)
            tree.insert(k)
        with counters_scope() as h:
            select_hash(chb, 2500)
        with counters_scope() as t:
            select_tree_exact(tree, 2500)
        with counters_scope() as s:
            select_scan(tree.scan(), lambda k: k == 2500)
        assert h.weighted_cost() < t.weighted_cost() < s.weighted_cost()


class TestRelationScan:
    def test_select_from_relation(self, figure1_db):
        relation = figure1_db.relation("Employee")
        refs = select_from_relation(relation, gt("Age", 40))
        names = {relation.read_field(r, "Name") for r in refs}
        assert names == {"Yaman", "Jane"}

    def test_select_from_relation_string_eq(self, figure1_db):
        relation = figure1_db.relation("Department")
        refs = select_from_relation(relation, eq("Name", "Toy"))
        assert len(refs) == 1
