"""Tests for the join algorithms: correctness, equivalence, cost shapes."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import UnsupportedOperationError
from repro.indexes import ArrayIndex, ChainedBucketHashIndex, TTreeIndex
from repro.instrument import counters_scope
from repro.query.join import (
    hash_join,
    measured,
    merge_join_sorted,
    nested_loops_join,
    precomputed_join,
    sort_merge_join,
    tree_join,
    tree_merge_join,
)
from repro.workloads import DuplicateDistribution, RelationSpec, build_join_pair

IDENT = lambda x: x  # noqa: E731 - key extractor for plain values


def reference_join(outer, inner):
    """Brute-force ground truth."""
    return sorted(
        (o, i) for o in outer for i in inner if o == i
    )


def build_ttree(values):
    tree = TTreeIndex(unique=False)
    for v in values:
        tree.insert(v)
    return tree


class TestCorrectness:
    @pytest.fixture
    def columns(self, rng):
        pair = build_join_pair(
            RelationSpec(400, 40.0, DuplicateDistribution(0.4)),
            RelationSpec(300, 25.0, DuplicateDistribution(None)),
            70.0,
            rng,
        )
        return pair.outer, pair.inner

    def test_nested_loops(self, columns):
        outer, inner = columns
        got = nested_loops_join(outer, inner, IDENT, IDENT)
        assert sorted(got) == reference_join(outer, inner)

    def test_hash_join(self, columns):
        outer, inner = columns
        got = hash_join(outer, inner, IDENT, IDENT)
        assert sorted(got) == reference_join(outer, inner)

    def test_tree_join(self, columns):
        outer, inner = columns
        got = tree_join(outer, IDENT, build_ttree(inner))
        assert sorted(got) == reference_join(outer, inner)

    def test_sort_merge_join(self, columns):
        outer, inner = columns
        got = sort_merge_join(outer, inner, IDENT, IDENT)
        assert sorted(got) == reference_join(outer, inner)

    def test_tree_merge_join(self, columns):
        outer, inner = columns
        got = tree_merge_join(build_ttree(outer), build_ttree(inner))
        assert sorted(got) == reference_join(outer, inner)

    def test_empty_inputs(self):
        assert hash_join([], [1, 2], IDENT, IDENT) == []
        assert hash_join([1, 2], [], IDENT, IDENT) == []
        assert sort_merge_join([], [], IDENT, IDENT) == []
        assert nested_loops_join([], [], IDENT, IDENT) == []

    def test_no_matches(self):
        assert hash_join([1, 2], [3, 4], IDENT, IDENT) == []
        assert sort_merge_join([1, 2], [3, 4], IDENT, IDENT) == []

    def test_full_cross_product_on_single_value(self):
        outer, inner = [5] * 10, [5] * 7
        for method in (hash_join, sort_merge_join):
            assert len(method(outer, inner, IDENT, IDENT)) == 70

    def test_tree_join_requires_ordered_index(self):
        cbh = ChainedBucketHashIndex(unique=False)
        with pytest.raises(UnsupportedOperationError):
            tree_join([1], IDENT, cbh)

    def test_tree_merge_requires_ordered_indexes(self):
        cbh = ChainedBucketHashIndex(unique=False)
        with pytest.raises(UnsupportedOperationError):
            tree_merge_join(cbh, build_ttree([1]))


class TestMergeJoinSorted:
    def test_merge_handles_runs_on_both_sides(self):
        outer = [1, 1, 2, 3, 3, 3]
        inner = [1, 3, 3, 4]
        got = merge_join_sorted(outer, inner, IDENT, IDENT)
        assert sorted(got) == reference_join(outer, inner)

    def test_comparison_count_without_duplicates(self):
        # "The number of comparisons done is approximately
        # (|R1| + |R2| * 2)" for the key-to-key merge.
        outer = list(range(1000))
        inner = list(range(1000))
        with counters_scope() as c:
            merge_join_sorted(outer, inner, IDENT, IDENT)
        # Our run-detection re-checks boundaries, costing a small constant
        # factor over the paper's figure — but still linear.
        assert c.comparisons <= (len(outer) + 2 * len(inner)) * 2.0

    @settings(max_examples=60, deadline=None)
    @given(
        outer=st.lists(st.integers(0, 20), max_size=60),
        inner=st.lists(st.integers(0, 20), max_size=60),
    )
    def test_property_equals_reference(self, outer, inner):
        outer, inner = sorted(outer), sorted(inner)
        got = merge_join_sorted(outer, inner, IDENT, IDENT)
        assert sorted(got) == reference_join(outer, inner)


class TestAlgorithmEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        outer=st.lists(st.integers(0, 30), max_size=50),
        inner=st.lists(st.integers(0, 30), max_size=50),
    )
    def test_all_methods_agree(self, outer, inner):
        expected = reference_join(outer, inner)
        assert sorted(hash_join(outer, inner, IDENT, IDENT)) == expected
        assert sorted(sort_merge_join(outer, inner, IDENT, IDENT)) == expected
        assert sorted(tree_join(outer, IDENT, build_ttree(inner))) == expected
        assert (
            sorted(tree_merge_join(build_ttree(outer), build_ttree(inner)))
            == expected
        )


class TestPrecomputedJoin:
    def test_single_pointer_field(self):
        rows = [("a", 10), ("b", None), ("c", 30)]
        got = precomputed_join(rows, lambda row: row[1])
        assert got == [(("a", 10), 10), (("c", 30), 30)]

    def test_pointer_list_field_one_to_many(self):
        rows = [("a", [1, 2]), ("b", [])]
        got = precomputed_join(rows, lambda row: row[1])
        assert got == [(("a", [1, 2]), 1), (("a", [1, 2]), 2)]

    def test_cheaper_than_any_join_method(self):
        # "It would beat each of the join methods in every case."
        rng = random.Random(1)
        inner = list(range(2000))
        outer = [(i, rng.choice(inner)) for i in range(2000)]
        with counters_scope() as pre:
            precomputed_join(outer, lambda row: row[1])
        with counters_scope() as hj:
            hash_join(outer, inner, lambda row: row[1], IDENT)
        assert pre.total() < hj.total()


class TestCostShapes:
    """The relative cost orderings the paper's Test 1 establishes."""

    def make_pair(self, n, rng):
        pair = build_join_pair(
            RelationSpec(n), RelationSpec(n), 100.0, rng
        )
        return pair.outer, pair.inner

    def test_tree_merge_beats_hash_join_with_indexes_built(self, rng):
        outer, inner = self.make_pair(2000, rng)
        t_outer, t_inner = build_ttree(outer), build_ttree(inner)
        with counters_scope() as tm:
            tree_merge_join(t_outer, t_inner)
        with counters_scope() as hj:
            hash_join(outer, inner, IDENT, IDENT)
        assert tm.weighted_cost() < hj.weighted_cost()

    def test_hash_join_beats_tree_join_at_equal_sizes(self, rng):
        # k (fixed hash cost) < log2(|R2|) for |R1| = |R2| = 2000.
        outer, inner = self.make_pair(2000, rng)
        t_inner = build_ttree(inner)
        with counters_scope() as hj:
            hash_join(outer, inner, IDENT, IDENT)
        with counters_scope() as tj:
            tree_join(outer, IDENT, t_inner)
        assert hj.weighted_cost() < tj.weighted_cost()

    def test_sort_merge_worst_without_duplicates(self, rng):
        outer, inner = self.make_pair(2000, rng)
        t_outer, t_inner = build_ttree(outer), build_ttree(inner)
        with counters_scope() as sm:
            sort_merge_join(outer, inner, IDENT, IDENT)
        with counters_scope() as tm:
            tree_merge_join(t_outer, t_inner)
        with counters_scope() as hj:
            hash_join(outer, inner, IDENT, IDENT)
        assert sm.weighted_cost() > tm.weighted_cost()
        assert sm.weighted_cost() > hj.weighted_cost()

    def test_nested_loops_orders_of_magnitude_worse(self, rng):
        outer, inner = self.make_pair(500, rng)
        with counters_scope() as nl:
            nested_loops_join(outer, inner, IDENT, IDENT)
        with counters_scope() as hj:
            hash_join(outer, inner, IDENT, IDENT)
        assert nl.weighted_cost() > 20 * hj.weighted_cost()

    def test_tree_join_wins_for_small_outer(self, rng):
        # Exception 1 of Section 3.3.5.
        __, inner = self.make_pair(3000, rng)
        outer = inner[:300]  # 10% of the inner size
        t_inner = build_ttree(inner)
        with counters_scope() as tj:
            tree_join(outer, IDENT, t_inner)
        with counters_scope() as hj:
            hash_join(outer, inner, IDENT, IDENT)
        assert tj.weighted_cost() < hj.weighted_cost()


class TestMeasuredHelper:
    def test_measured_returns_stats(self):
        result, stats = measured(
            "hash", lambda: hash_join([1, 2], [2, 3], IDENT, IDENT)
        )
        assert result == [(2, 2)]
        assert stats.method == "hash"
        assert stats.result_size == 1
        assert stats.counters.total() > 0
