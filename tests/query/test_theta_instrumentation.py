"""Regression tests for the theta-join instrumentation audit.

An audit found two sites evaluating comparisons outside the Section 3.1
counters: the executor's ``_THETA_PREDICATES`` raw-lambda table (theta
joins deliberately charge one ``count_compare`` per probed pair in
``theta_join`` itself — the comparator stays uninstrumented, now
documented on ``THETA_COMPARATORS``) and ``ValueTable.sort_by``'s raw
key lambda (now counted per key comparison).  These tests pin the
op totals so the sites cannot silently regress again.
"""

import operator

import pytest

from repro import Field, FieldType, MainMemoryDatabase
from repro.instrument import counters_scope
from repro.query import executor as executor_module
from repro.query.aggregate import ValueTable
from repro.query.plan import JoinNode, ScanNode
from repro.query.predicates import THETA_COMPARATORS


@pytest.fixture()
def db():
    database = MainMemoryDatabase()
    database.create_relation(
        "L",
        [Field("Id", FieldType.INT), Field("V", FieldType.INT)],
        primary_key="Id",
    )
    database.create_relation(
        "Rr",
        [Field("Id", FieldType.INT), Field("V", FieldType.INT)],
        primary_key="Id",
    )
    for i, v in enumerate([1, 2, 3, 4]):
        database.insert("L", [i, v])
    for i, v in enumerate([1, 2, 3]):
        database.insert("Rr", [i, v])
    return database


class TestThetaComparators:
    def test_table_covers_all_theta_ops(self):
        assert set(THETA_COMPARATORS) == {"=", "!=", "<", "<=", ">", ">="}

    def test_maps_to_operator_module(self):
        assert THETA_COMPARATORS["<"] is operator.lt
        assert THETA_COMPARATORS["!="] is operator.ne

    def test_raw_lambda_table_is_gone(self):
        assert not hasattr(executor_module, "_THETA_PREDICATES")
        assert not hasattr(
            executor_module.Executor, "_THETA_PREDICATES"
        )


class TestThetaJoinTotals:
    def test_nested_loops_theta_join_counts_pinned(self, db):
        """|L|=4, |R|=3, op "<": totals charged by the theta path.

        ``theta_join`` charges one comparison per probed pair (4*3) and
        one move per emitted pair (matches (1,2),(1,3),(2,3)); each key
        extraction through ``TemporaryList.value_extractor`` charges
        one traversal — one per outer row plus one per probed pair —
        and each of the two scans charges one traversal entering its
        index walk.
        """
        plan = JoinNode(
            ScanNode("L"), ScanNode("Rr"), "V", "V", "nested_loops", op="<"
        )
        with counters_scope() as counters:
            result = db.executor.execute(plan)
        values = [(row["L.V"], row["Rr.V"]) for row in result.to_dicts()]
        assert values == [(1, 2), (1, 3), (2, 3)]
        snap = counters.snapshot()
        assert snap.comparisons == 4 * 3
        assert snap.moves == 3
        assert snap.traversals == 2 + 4 + 4 * 3

    def test_not_equals_counts_every_pair(self, db):
        plan = JoinNode(
            ScanNode("L"), ScanNode("Rr"), "V", "V", "nested_loops", op="!="
        )
        with counters_scope() as counters:
            result = db.executor.execute(plan)
        assert len(result) == 4 * 3 - 3  # all pairs minus the equal ones
        assert counters.snapshot().comparisons == 4 * 3


class TestValueTableSortCounting:
    def test_sort_by_counts_comparisons(self):
        table = ValueTable(["k"], [(v,) for v in [5, 1, 4, 2, 3]])
        with counters_scope() as counters:
            ordered = table.sort_by("k")
        assert [row[0] for row in ordered] == [1, 2, 3, 4, 5]
        # Any comparison sort performs at least n-1 comparisons.
        assert counters.snapshot().comparisons >= 4

    def test_sort_by_is_stable(self):
        rows = [(1, "a"), (0, "b"), (1, "c"), (0, "d")]
        table = ValueTable(["k", "tag"], rows)
        ordered = table.sort_by("k")
        assert list(ordered) == [(0, "b"), (0, "d"), (1, "a"), (1, "c")]

    def test_sort_by_descending(self):
        table = ValueTable(["k"], [(v,) for v in [2, 3, 1]])
        ordered = table.sort_by("k", descending=True)
        assert [row[0] for row in ordered] == [3, 2, 1]
