"""Differential tests: batch engine vs. tuple engine, same plans.

A seeded-random database is run through a mix of plan shapes covering
every operator family (scan predicates, filters, projections with both
dedup methods, all join methods, index leaves, composites).  For each
plan both engines must produce *identical rows in identical order*;
counters must be *exactly equal* on every path except the hash kernels
(hash equi-join, hash dedup), whose counts must be elementwise bounded
above by the tuple engine's (see DESIGN.md section 3.8).
"""

import random

import pytest

from repro import Field, FieldType, MainMemoryDatabase
from repro.instrument import counters_scope
from repro.query.executor import Executor
from repro.query.plan import (
    REF_COLUMN,
    FilterNode,
    IndexLookupNode,
    IndexRangeNode,
    JoinNode,
    ProjectNode,
    ScanNode,
)
from repro.query.predicates import between, eq, ge, gt, le, lt, ne
from repro.query.vectorized import DEREF_SAVED_COUNTER, BatchExecutor

SEED = 52486
N_R = 400
N_S = 90
VALUE_SPACE = 40  # heavy duplicates on the join/dedup columns


@pytest.fixture(scope="module")
def db():
    rng = random.Random(SEED)
    database = MainMemoryDatabase()
    database.create_relation(
        "R",
        [
            Field("Id", FieldType.INT),
            Field("A", FieldType.INT),
            Field("B", FieldType.INT),
        ],
        primary_key="Id",
    )
    database.create_relation(
        "S",
        [Field("Id", FieldType.INT), Field("A", FieldType.INT)],
        primary_key="Id",
    )
    # Ordered secondary indexes so the tree / tree_merge join methods
    # and index-range leaves have something to walk.
    database.create_index("R", "r_a_tree", "A", kind="ttree")
    database.create_index("S", "s_a_tree", "A", kind="ttree")
    for i in range(N_R):
        database.insert(
            "R", [i, rng.randrange(VALUE_SPACE), rng.randrange(1_000)]
        )
    for i in range(N_S):
        database.insert("S", [i, rng.randrange(VALUE_SPACE)])
    return database


def _plan_mix():
    rng = random.Random(SEED + 1)
    lo = rng.randrange(VALUE_SPACE // 2)
    hi = lo + rng.randrange(5, VALUE_SPACE // 2)
    plans = [
        # -- selections ------------------------------------------------
        ScanNode("R"),
        ScanNode("R", eq("A", lo)),
        ScanNode("R", gt("A", lo) & lt("A", hi)),
        ScanNode("R", between("A", lo, hi) | ge("B", 900) | le("B", 50)),
        ScanNode("R", ne("A", lo) & (gt("B", 100) | lt("A", 3))),
        FilterNode(ScanNode("R"), gt("B", 200) & lt("B", 800)),
        # -- index leaves ----------------------------------------------
        IndexLookupNode("R", "Id", N_R // 2),
        IndexRangeNode("R", "A", lo, hi),
        # -- projections -----------------------------------------------
        ProjectNode(
            ScanNode("R"), ("A",), deduplicate=True, dedup_method="hash"
        ),
        ProjectNode(
            ScanNode("R"),
            ("A", "B"),
            deduplicate=True,
            dedup_method="hash",
        ),
        ProjectNode(
            ScanNode("R"),
            ("A",),
            deduplicate=True,
            dedup_method="sort_scan",
        ),
        ProjectNode(ScanNode("R"), ("B", "A"), deduplicate=False),
        # -- joins, every method ---------------------------------------
        JoinNode(ScanNode("R"), ScanNode("S"), "A", "A", "hash"),
        JoinNode(ScanNode("R"), ScanNode("S"), "A", "A", "nested_loops"),
        JoinNode(ScanNode("R"), ScanNode("S"), "A", "A", "sort_merge"),
        JoinNode(ScanNode("R"), ScanNode("S"), "A", "A", "tree"),
        JoinNode(ScanNode("R"), ScanNode("S"), "A", "A", "tree_merge"),
        JoinNode(
            ScanNode("R"), ScanNode("S"), "A", "A", "nested_loops", op="<"
        ),
        JoinNode(
            ScanNode("R"), ScanNode("S"), "A", "A", "nested_loops", op="!="
        ),
        # -- composites ------------------------------------------------
        FilterNode(
            JoinNode(ScanNode("R"), ScanNode("S"), "A", "A", "hash"),
            gt("B", 500),
        ),
        ProjectNode(
            JoinNode(
                ScanNode("R", gt("B", 300)), ScanNode("S"), "A", "A", "hash"
            ),
            ("R.A",),
            deduplicate=True,
            dedup_method="hash",
        ),
        JoinNode(
            ScanNode("R", between("B", 100, 700)),
            ScanNode("S"),
            "A",
            "A",
            "sort_merge",
        ),
    ]
    return plans


def _uses_hash_kernel(plan) -> bool:
    if isinstance(plan, JoinNode):
        return (
            (plan.op == "=" and plan.method == "hash")
            or _uses_hash_kernel(plan.left)
            or _uses_hash_kernel(plan.right)
        )
    if (
        isinstance(plan, ProjectNode)
        and plan.deduplicate
        and plan.dedup_method == "hash"
    ):
        return True
    child = getattr(plan, "child", None)
    return child is not None and _uses_hash_kernel(child)


_COUNTER_FIELDS = (
    "comparisons",
    "traversals",
    "moves",
    "hashes",
    "allocations",
)


def _run(executor, plan):
    with counters_scope() as counters:
        result = executor.execute(plan)
    return result, counters.snapshot()


def _assert_differential(db, plan, batch_size):
    tuple_result, tuple_counts = _run(Executor(db.catalog), plan)
    batch_result, batch_counts = _run(
        BatchExecutor(db.catalog, batch_size=batch_size), plan
    )
    assert tuple_result.rows() == batch_result.rows(), plan.explain()
    assert [c.name for c in tuple_result.descriptor.columns] == [
        c.name for c in batch_result.descriptor.columns
    ]
    if _uses_hash_kernel(plan):
        for field in _COUNTER_FIELDS:
            assert getattr(batch_counts, field) <= getattr(
                tuple_counts, field
            ), (plan.explain(), field)
    else:
        t = tuple_counts.as_dict()
        b = batch_counts.as_dict()
        b.pop(DEREF_SAVED_COUNTER, None)
        assert t == b, plan.explain()


@pytest.mark.parametrize("plan", _plan_mix(), ids=lambda p: p.explain())
def test_plan_differential(db, plan):
    _assert_differential(db, plan, batch_size=64)


@pytest.mark.parametrize("batch_size", [1, 7, 64, 1024])
def test_batch_size_invariance(db, batch_size):
    """Results and counts must not depend on the batch size."""
    plans = [
        ScanNode("R", gt("A", 5) & lt("A", 30)),
        JoinNode(ScanNode("R"), ScanNode("S"), "A", "A", "hash"),
        ProjectNode(
            ScanNode("R"), ("A",), deduplicate=True, dedup_method="hash"
        ),
    ]
    for plan in plans:
        _assert_differential(db, plan, batch_size=batch_size)


def test_self_ref_join_key(db):
    """REF_COLUMN hash-join keys work and stay bounded."""
    plan = JoinNode(
        ScanNode("R"), ScanNode("R"), REF_COLUMN, REF_COLUMN, "hash"
    )
    _assert_differential(db, plan, batch_size=64)


def test_deref_savings_reported(db):
    """Repeated-field predicates report saved physical dereferences."""
    plan = ScanNode("R", gt("A", 2) & lt("A", 35))
    _, counts = _run(BatchExecutor(db.catalog), plan)
    assert counts.extra.get(DEREF_SAVED_COUNTER, 0) > 0


def test_database_level_switch(db):
    """configure_execution swaps engines; SQL results stay identical."""
    query = (
        "SELECT R.A, S.Id FROM R JOIN S ON R.A = S.A WHERE R.B > 400 "
        "ORDER BY S.Id"
    )
    db.configure_execution(engine="tuple")
    with counters_scope() as ct:
        tuple_rows = db.sql(query).to_dicts()
    db.configure_execution(engine="batch", batch_size=32)
    assert db.executor.engine_name == "batch"
    assert db.execution_config.batch_size == 32
    with counters_scope() as cb:
        batch_rows = db.sql(query).to_dicts()
    db.configure_execution()  # restore the default tuple engine
    assert db.executor.engine_name == "tuple"
    assert tuple_rows == batch_rows
    for field in _COUNTER_FIELDS:
        assert getattr(cb.snapshot(), field) <= getattr(
            ct.snapshot(), field
        )
