"""Optimizer determinism: same catalog state ⇒ structurally equal plans.

The plan cache assumes optimizing a statement twice against an unchanged
catalog yields the same plan; these are the regression tests for that
contract, including the stale-statistics case the version-keyed stats
cache fixes (an update can change distinct counts without changing the
relation's cardinality).
"""

from __future__ import annotations

from repro import Field, FieldType, MainMemoryDatabase
from repro.query.predicates import between, gt
from tests.conftest import build_figure1_db


def build_keyed_pair(rows: int = 200) -> MainMemoryDatabase:
    """L and R with indexed, initially all-distinct ``join_key`` columns."""
    db = MainMemoryDatabase()
    for name in ("L", "R"):
        db.create_relation(
            name,
            [Field("Id", FieldType.INT), Field("join_key", FieldType.INT)],
            primary_key="Id",
        )
        db.create_index(name, f"{name.lower()}_jk", "join_key")
        for i in range(rows):
            db.insert(name, [i, i])
    return db


class TestPlanEquality:
    def test_selection_planned_twice_is_equal(self):
        db = build_figure1_db()
        db.create_index("Employee", "emp_age", "Age")
        first = db.selection_plan("Employee", between("Age", 25, 50))
        second = db.selection_plan("Employee", between("Age", 25, 50))
        assert first == second

    def test_join_planned_twice_is_equal(self):
        db = build_figure1_db()
        first = db.join_plan("Employee", "Department", on=("Dept_Id", "Id"))
        second = db.join_plan("Employee", "Department", on=("Dept_Id", "Id"))
        assert first == second

    def test_planning_does_not_mutate_catalog_choice(self):
        # Planning twice with interleaved unrelated plans must not change
        # the outcome (no hidden state left behind by earlier plans).
        db = build_figure1_db()
        probe = db.selection_plan("Employee", gt("Age", 30))
        db.selection_plan("Department", gt("Id", 400))
        db.join_plan("Employee", "Department", on=("Dept_Id", "Id"))
        assert db.selection_plan("Employee", gt("Age", 30)) == probe

    def test_generated_join_planned_twice_is_equal(self):
        db = build_keyed_pair()
        first = db.join_plan("L", "R", on=("join_key", "join_key"))
        second = db.join_plan("L", "R", on=("join_key", "join_key"))
        assert first == second


class TestStatisticsFreshness:
    def test_stats_refresh_when_distinct_changes_without_cardinality(self):
        db = build_keyed_pair(rows=200)
        left = db.relation("L")
        stats_before = db.optimizer.column_stats(left, "join_key")
        assert (stats_before.cardinality, stats_before.distinct) == (200, 200)
        # Collapse every join key to one value through updates: the
        # cardinality is unchanged, but the duplicate fraction is now ~1.
        for row in db.select("L").rows():
            db.update("L", row[0], "join_key", 1)
        stats_after = db.optimizer.column_stats(left, "join_key")
        assert stats_after.cardinality == 200
        assert stats_after.distinct == 1

    def test_join_method_reacts_to_updated_statistics(self):
        db = build_keyed_pair(rows=200)
        before = db.optimizer.choose_join_method(
            db.relation("L"), db.relation("R"), "join_key", "join_key"
        )
        assert before == "tree_merge"
        for name in ("L", "R"):
            for row in db.select(name).rows():
                db.update(name, row[0], "join_key", 1)
        after = db.optimizer.choose_join_method(
            db.relation("L"), db.relation("R"), "join_key", "join_key"
        )
        # At ~100% duplicates Sort Merge wins (Graph 8); with the old
        # cardinality-keyed stats cache the stale distinct counts would
        # keep the tree-merge choice.
        assert after == "sort_merge"
