"""Tests for grouping/aggregation (the ValueTable layer + SQL)."""

import pytest

from repro import MainMemoryDatabase, QueryError
from repro.query.aggregate import (
    AggregateSpec,
    ValueTable,
    group_aggregate,
)


class TestAggregateSpec:
    def test_unknown_function_rejected(self):
        with pytest.raises(QueryError):
            AggregateSpec("median", "x", "m")

    def test_star_only_for_count(self):
        with pytest.raises(QueryError):
            AggregateSpec("sum", None, "s")
        AggregateSpec("count", None, "n")  # fine


class TestGroupAggregate:
    ROWS = [
        ("a", 1), ("a", 3), ("b", 2), ("b", 4), ("b", 6), ("c", None),
    ]

    def _table(self, specs, grouped=True):
        groups = [("k", lambda r: r[0])] if grouped else []
        return group_aggregate(
            self.ROWS, groups, specs,
            lambda col: (lambda r: r[1]),
        )

    def test_count_star(self):
        table = self._table([AggregateSpec("count", None, "n")])
        assert table.to_dicts() == [
            {"k": "a", "n": 2}, {"k": "b", "n": 3}, {"k": "c", "n": 1},
        ]

    def test_sum_and_avg(self):
        table = self._table([
            AggregateSpec("sum", "v", "s"),
            AggregateSpec("avg", "v", "m"),
        ])
        rows = {d["k"]: d for d in table.to_dicts()}
        assert rows["a"]["s"] == 4 and rows["a"]["m"] == 2.0
        assert rows["b"]["s"] == 12 and rows["b"]["m"] == 4.0

    def test_min_max(self):
        table = self._table([
            AggregateSpec("min", "v", "lo"),
            AggregateSpec("max", "v", "hi"),
        ])
        rows = {d["k"]: d for d in table.to_dicts()}
        assert (rows["b"]["lo"], rows["b"]["hi"]) == (2, 6)

    def test_nulls_ignored_except_count_star(self):
        table = self._table([
            AggregateSpec("count", None, "n"),
            AggregateSpec("sum", "v", "s"),
        ])
        rows = {d["k"]: d for d in table.to_dicts()}
        assert rows["c"]["n"] == 1
        assert rows["c"]["s"] is None

    def test_global_aggregation_single_row(self):
        table = self._table(
            [AggregateSpec("count", None, "n")], grouped=False
        )
        assert table.to_dicts() == [{"n": 6}]

    def test_empty_input_yields_one_row(self):
        table = group_aggregate(
            [], [], [AggregateSpec("count", None, "n"),
                     AggregateSpec("sum", "v", "s")],
            lambda col: (lambda r: r[1]),
        )
        assert table.to_dicts() == [{"n": 0, "s": None}]

    def test_group_order_is_first_encounter(self):
        table = self._table([AggregateSpec("count", None, "n")])
        assert [d["k"] for d in table.to_dicts()] == ["a", "b", "c"]


class TestValueTable:
    def _table(self):
        return ValueTable(["k", "v"], [("b", 2), ("a", 1), ("c", 3)])

    def test_len_iter_getitem(self):
        table = self._table()
        assert len(table) == 3
        assert list(table)[0] == table[0] == ("b", 2)

    def test_sort_by(self):
        table = self._table().sort_by("k")
        assert [r[0] for r in table] == ["a", "b", "c"]
        desc = self._table().sort_by("v", descending=True)
        assert [r[1] for r in desc] == [3, 2, 1]

    def test_sort_by_unknown_column(self):
        with pytest.raises(QueryError):
            self._table().sort_by("zzz")

    def test_limit(self):
        assert len(self._table().limit(2)) == 2

    def test_materialize_matches_rows(self):
        table = self._table()
        assert table.materialize() == table.rows()


class TestSQLAggregates:
    @pytest.fixture
    def db(self):
        database = MainMemoryDatabase()
        database.sql("CREATE TABLE T (Id INT, G TEXT, V INT)")
        for i, (g, v) in enumerate(
            [("x", 10), ("x", 20), ("y", 5), ("y", 15), ("y", 40)]
        ):
            database.sql(f"INSERT INTO T VALUES ({i}, '{g}', {v})")
        return database

    def test_count_star(self, db):
        assert db.sql("SELECT COUNT(*) FROM T").to_dicts() == [
            {"count(*)": 5}
        ]

    def test_group_by(self, db):
        rows = db.sql(
            "SELECT G, COUNT(*) AS n, SUM(V) AS total FROM T GROUP BY G"
        ).to_dicts()
        assert rows == [
            {"G": "x", "n": 2, "total": 30},
            {"G": "y", "n": 3, "total": 60},
        ]

    def test_where_applies_before_grouping(self, db):
        rows = db.sql(
            "SELECT G, COUNT(*) AS n FROM T WHERE V >= 15 GROUP BY G"
        ).to_dicts()
        assert rows == [{"G": "x", "n": 1}, {"G": "y", "n": 2}]

    def test_order_by_aggregate_label(self, db):
        rows = db.sql(
            "SELECT G, AVG(V) AS m FROM T GROUP BY G ORDER BY m DESC"
        ).to_dicts()
        assert [r["G"] for r in rows] == ["y", "x"]

    def test_limit_on_groups(self, db):
        rows = db.sql(
            "SELECT G, COUNT(*) AS n FROM T GROUP BY G LIMIT 1"
        ).to_dicts()
        assert len(rows) == 1

    def test_plain_column_must_be_grouped(self, db):
        with pytest.raises(QueryError):
            db.sql("SELECT Id, COUNT(*) FROM T GROUP BY G")

    def test_group_by_without_aggregate_rejected(self, db):
        with pytest.raises(QueryError):
            db.sql("SELECT G FROM T GROUP BY G")

    def test_aggregate_over_join(self, db):
        db.sql("CREATE TABLE S (G TEXT, Label TEXT)")
        db.sql("INSERT INTO S VALUES ('x', 'ex'), ('y', 'why')")
        rows = db.sql(
            "SELECT Label, SUM(V) AS total FROM T "
            "JOIN S ON G = G USING hash GROUP BY Label"
        ).to_dicts()
        assert {r["Label"]: r["total"] for r in rows} == {
            "ex": 30, "why": 60,
        }
