"""Tests for the Section 4 optimizer rules."""

import random

import pytest

from repro import Field, FieldType, ForeignKey, MainMemoryDatabase
from repro.query.optimizer import Optimizer
from repro.query.plan import (
    REF_COLUMN,
    FilterNode,
    IndexLookupNode,
    IndexRangeNode,
    JoinNode,
    ScanNode,
)
from repro.query.predicates import between, eq, ge, gt, ne


@pytest.fixture
def db():
    database = MainMemoryDatabase()
    database.create_relation(
        "R",
        [
            Field("k", FieldType.INT),
            Field("v", FieldType.INT),
            Field("s", FieldType.STR),
        ],
        primary_key="k",
    )
    for i in range(50):
        database.insert("R", [i, i % 5, f"s{i}"])
    return database


class TestSelectionPlanning:
    def test_no_predicate_is_a_scan(self, db):
        plan = db.optimizer.plan_selection("R", None)
        assert isinstance(plan, ScanNode)
        assert plan.predicate is None

    def test_eq_on_tree_indexed_field_uses_tree(self, db):
        plan = db.optimizer.plan_selection("R", eq("k", 7))
        assert isinstance(plan, IndexLookupNode)
        assert plan.prefer == "tree"

    def test_eq_prefers_hash_when_available(self, db):
        db.create_index("R", "k_hash", "k", kind="modified_linear_hash")
        plan = db.optimizer.plan_selection("R", eq("k", 7))
        assert isinstance(plan, IndexLookupNode)
        assert plan.prefer == "hash"

    def test_range_predicate_uses_tree_range(self, db):
        plan = db.optimizer.plan_selection("R", ge("k", 10))
        assert isinstance(plan, IndexRangeNode)
        assert plan.low == 10

    def test_between_uses_tree_range(self, db):
        plan = db.optimizer.plan_selection("R", between("k", 5, 9))
        assert isinstance(plan, IndexRangeNode)
        assert (plan.low, plan.high) == (5, 9)

    def test_unindexed_field_falls_to_scan(self, db):
        plan = db.optimizer.plan_selection("R", eq("v", 3))
        assert isinstance(plan, ScanNode)
        assert plan.predicate is not None

    def test_ne_cannot_use_index(self, db):
        plan = db.optimizer.plan_selection("R", ne("k", 3))
        assert isinstance(plan, ScanNode)

    def test_conjunction_splits_into_lookup_plus_residual(self, db):
        plan = db.optimizer.plan_selection("R", eq("k", 7) & eq("v", 2))
        assert isinstance(plan, FilterNode)
        assert isinstance(plan.child, IndexLookupNode)
        assert plan.child.field_name == "k"

    def test_planned_results_match_scan_results(self, db):
        for predicate in (
            eq("k", 7),
            ge("k", 40),
            between("k", 10, 19),
            eq("v", 3),
            eq("k", 7) & eq("v", 2),
        ):
            optimized = db.execute(db.optimizer.plan_selection("R", predicate))
            brute = db.execute(ScanNode("R", predicate))
            assert sorted(optimized.materialize()) == sorted(
                brute.materialize()
            )


class TestColumnStatistics:
    def test_distinct_counting(self, db):
        stats = db.optimizer.column_stats(db.relation("R"), "v")
        assert stats.cardinality == 50
        assert stats.distinct == 5
        assert stats.duplicate_fraction == pytest.approx(0.9)

    def test_key_column_no_duplicates(self, db):
        stats = db.optimizer.column_stats(db.relation("R"), "k")
        assert stats.duplicate_fraction == 0.0

    def test_cache_invalidated_by_growth(self, db):
        before = db.optimizer.column_stats(db.relation("R"), "k")
        db.insert("R", [999, 1, "x"])
        after = db.optimizer.column_stats(db.relation("R"), "k")
        assert after.cardinality == before.cardinality + 1


class JoinSetup:
    """Two relations with controllable index configurations."""

    @staticmethod
    def build(outer_n=100, inner_n=100, dup_every=None):
        db = MainMemoryDatabase()
        db.create_relation(
            "Outer",
            [Field("id", FieldType.INT), Field("j", FieldType.INT)],
            primary_key="id",
        )
        db.create_relation(
            "Inner",
            [Field("id", FieldType.INT), Field("j", FieldType.INT)],
            primary_key="id",
        )
        rng = random.Random(7)
        for i in range(outer_n):
            j = i % dup_every if dup_every else i
            db.insert("Outer", [i, j])
        for i in range(inner_n):
            j = i % dup_every if dup_every else i
            db.insert("Inner", [i, j])
        return db


class TestJoinMethodChoice:
    def test_precomputed_when_fk_declared(self, figure1_db):
        method = figure1_db.optimizer.choose_join_method(
            figure1_db.relation("Employee"),
            figure1_db.relation("Department"),
            "Dept_Id",
            "Id",
        )
        assert method == "precomputed"

    def test_tree_merge_when_both_indexes_exist(self):
        db = JoinSetup.build()
        db.create_index("Outer", "oj", "j", kind="ttree")
        db.create_index("Inner", "ij", "j", kind="ttree")
        method = db.optimizer.choose_join_method(
            db.relation("Outer"), db.relation("Inner"), "j", "j"
        )
        assert method == "tree_merge"

    def test_sort_merge_at_extreme_duplicates(self):
        # Graph 8: past ~97% duplicates Sort Merge wins even over Tree
        # Merge with both indexes present.
        db = JoinSetup.build(outer_n=100, inner_n=100, dup_every=2)
        db.create_index("Outer", "oj", "j", kind="ttree")
        db.create_index("Inner", "ij", "j", kind="ttree")
        method = db.optimizer.choose_join_method(
            db.relation("Outer"), db.relation("Inner"), "j", "j"
        )
        assert method == "sort_merge"

    def test_hash_when_no_indexes(self):
        db = JoinSetup.build()
        method = db.optimizer.choose_join_method(
            db.relation("Outer"), db.relation("Inner"), "j", "j"
        )
        assert method == "hash"

    def test_tree_join_for_small_outer(self):
        db = JoinSetup.build(outer_n=20, inner_n=100)
        db.create_index("Inner", "ij", "j", kind="ttree")
        method = db.optimizer.choose_join_method(
            db.relation("Outer"), db.relation("Inner"), "j", "j"
        )
        assert method == "tree"

    def test_hash_for_large_outer_despite_inner_index(self):
        db = JoinSetup.build(outer_n=100, inner_n=100)
        db.create_index("Inner", "ij", "j", kind="ttree")
        method = db.optimizer.choose_join_method(
            db.relation("Outer"), db.relation("Inner"), "j", "j"
        )
        assert method == "hash"


class TestJoinPlanning:
    def test_plan_join_produces_executable_plan(self, figure1_db):
        plan = figure1_db.optimizer.plan_join(
            "Employee", "Department", "Dept_Id", "Id"
        )
        assert isinstance(plan, JoinNode)
        assert plan.method == "precomputed"
        result = figure1_db.execute(plan)
        assert len(result) == 5

    def test_plan_join_with_outer_predicate(self, figure1_db):
        plan = figure1_db.optimizer.plan_join(
            "Employee", "Department", "Dept_Id", "Id",
            outer_predicate=gt("Age", 40),
        )
        result = figure1_db.execute(plan)
        assert len(result) == 2

    def test_plan_join_with_inner_predicate_filters_after_pointers(
        self, figure1_db
    ):
        plan = figure1_db.optimizer.plan_join(
            "Employee", "Department", "Dept_Id", "Id",
            inner_predicate=eq("Name", "Toy"),
        )
        result = figure1_db.execute(plan)
        assert len(result) == 2  # Dave and Suzan work in Toy

    def test_tree_merge_degrades_to_hash_under_predicates(self):
        db = JoinSetup.build()
        db.create_index("Outer", "oj", "j", kind="ttree")
        db.create_index("Inner", "ij", "j", kind="ttree")
        plan = db.optimizer.plan_join(
            "Outer", "Inner", "j", "j", outer_predicate=gt("id", 50)
        )
        assert plan.method == "hash"

    def test_all_methods_same_answer(self):
        db = JoinSetup.build(outer_n=60, inner_n=60, dup_every=6)
        reference = None
        for method in ("nested_loops", "hash", "sort_merge"):
            plan = JoinNode(
                ScanNode("Outer"), ScanNode("Inner"), "j", "j", method
            )
            got = sorted(db.execute(plan).materialize())
            if reference is None:
                reference = got
            assert got == reference
