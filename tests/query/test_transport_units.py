"""Direct unit coverage for :mod:`repro.query.parallel.transport`.

These edge cases were previously exercised only indirectly through the
parallel engine: degenerate morsel bounds, deep predicate trees on the
plain-predicate gate, and the catalog-identity check in
``describable()`` — which must reject a descriptor whose source merely
*shares a name* with a catalog relation without being the same object
(a forked worker would silently resolve the name to different data).
"""

import pytest

from repro import Field, FieldType, MainMemoryDatabase
from repro.query.parallel.transport import (
    describable,
    describe,
    morsel_bounds,
    plain_predicate,
    rebuild,
)
from repro.query.predicates import (
    Comparison,
    Conjunction,
    Disjunction,
    Predicate,
    between,
    eq,
    gt,
    lt,
)
from repro.storage.temporary import ResultDescriptor


# --------------------------------------------------------------------- #
# morsel_bounds
# --------------------------------------------------------------------- #


class TestMorselBounds:
    def test_zero_total_yields_no_morsels(self):
        assert morsel_bounds(0, 128) == []

    def test_morsel_size_larger_than_total_is_one_morsel(self):
        assert morsel_bounds(57, 4096) == [(0, 57)]

    def test_exact_multiple_splits_cleanly(self):
        assert morsel_bounds(256, 128) == [(0, 128), (128, 256)]

    def test_remainder_gets_a_short_tail_morsel(self):
        assert morsel_bounds(300, 128) == [(0, 128), (128, 256), (256, 300)]

    def test_bounds_cover_every_index_exactly_once(self):
        bounds = morsel_bounds(1000, 77)
        covered = [i for start, stop in bounds for i in range(start, stop)]
        assert covered == list(range(1000))


# --------------------------------------------------------------------- #
# plain_predicate
# --------------------------------------------------------------------- #


class _Opaque(Predicate):
    """A user-defined predicate: must never cross the fork boundary."""

    def matches(self, read_field) -> bool:  # pragma: no cover - unused
        return True


class TestPlainPredicate:
    def test_none_is_plain(self):
        assert plain_predicate(None)

    def test_simple_comparison_is_plain(self):
        assert plain_predicate(eq("A", 3))
        assert plain_predicate(between("A", 1, 9))

    def test_nested_conjunction_disjunction_tree_is_plain(self):
        tree = (gt("A", 1) & lt("A", 50)) | (
            eq("B", 7) & (between("A", 2, 4) | eq("B", 0))
        )
        assert type(tree) is Disjunction
        assert plain_predicate(tree)

    def test_deeply_nested_tree_with_opaque_leaf_is_rejected(self):
        # The poison leaf hides three levels down; the recursive walk
        # must still find it.
        tree = Conjunction(
            (
                gt("A", 1),
                Disjunction((lt("A", 9), Conjunction((_Opaque(),)))),
            )
        )
        assert not plain_predicate(tree)

    def test_opaque_root_is_rejected(self):
        assert not plain_predicate(_Opaque())

    def test_comparison_with_unpicklable_value_is_rejected(self):
        assert not plain_predicate(Comparison("A", eq("x", 1).op, object()))

    def test_subclass_of_comparison_is_rejected(self):
        # ``type() is`` on purpose: a Comparison subclass may override
        # ``matches`` with captured state the worker cannot rebuild.
        class Sneaky(Comparison):
            pass

        assert not plain_predicate(Sneaky("A", eq("x", 1).op, 3))


# --------------------------------------------------------------------- #
# describable / describe / rebuild
# --------------------------------------------------------------------- #


def _db_with_r():
    db = MainMemoryDatabase()
    db.create_relation(
        "R",
        [Field("Id", FieldType.INT), Field("A", FieldType.INT)],
        primary_key="Id",
    )
    db.insert("R", [1, 10])
    return db


class TestDescribable:
    def test_own_relation_round_trips(self):
        db = _db_with_r()
        relation = db.catalog.relation("R")
        descriptor = ResultDescriptor.whole_relation(relation)
        assert describable(db.catalog, descriptor)
        rebuilt = rebuild(db.catalog, describe(descriptor))
        assert rebuilt.sources[0] is relation
        assert [c.label for c in rebuilt.columns] == [
            c.label for c in descriptor.columns
        ]

    def test_same_name_different_object_is_rejected(self):
        # Two catalogs, each with a relation named "R": a descriptor
        # built against one must not be shippable through the other —
        # same name, different object, potentially different rows.
        db_a = _db_with_r()
        db_b = _db_with_r()
        foreign = ResultDescriptor.whole_relation(db_b.catalog.relation("R"))
        assert not describable(db_a.catalog, foreign)

    def test_unregistered_name_is_rejected(self):
        db = _db_with_r()
        other = MainMemoryDatabase()
        other.create_relation(
            "Elsewhere",
            [Field("Id", FieldType.INT)],
            primary_key="Id",
        )
        descriptor = ResultDescriptor.whole_relation(
            other.catalog.relation("Elsewhere")
        )
        assert not describable(db.catalog, descriptor)

    def test_any_foreign_source_taints_the_descriptor(self):
        # Mixed sources: one legitimate, one foreign — still rejected.
        db_a = _db_with_r()
        db_b = _db_with_r()
        from repro.storage.temporary import ResultColumn

        own = db_a.catalog.relation("R")
        foreign = db_b.catalog.relation("R")
        mixed = ResultDescriptor(
            [own, foreign],
            [
                ResultColumn(0, "Id", "left.Id"),
                ResultColumn(1, "Id", "right.Id"),
            ],
        )
        assert not describable(db_a.catalog, mixed)
