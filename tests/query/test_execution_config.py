"""Validation tests for ``db.configure_execution`` and ExecutionConfig.

Bad settings must raise :class:`repro.errors.ConfigError` *before* any
plan runs, and the error type must remain catchable both as the
library's :class:`repro.errors.ReproError` root and as the plain
``ValueError`` older callers expect.
"""

import pytest

from repro import Field, FieldType, MainMemoryDatabase
from repro.errors import ConfigError, ReproError
from repro.query.executor import Executor
from repro.query.vectorized import BatchExecutor, ExecutionConfig


@pytest.fixture()
def db():
    database = MainMemoryDatabase()
    database.create_relation(
        "R", [Field("Id", FieldType.INT)], primary_key="Id"
    )
    database.insert("R", [1])
    return database


class TestErrorHierarchy:
    def test_config_error_is_repro_error(self):
        assert issubclass(ConfigError, ReproError)

    def test_config_error_is_value_error(self):
        assert issubclass(ConfigError, ValueError)


class TestInvalidSettings:
    def test_unknown_engine(self, db):
        with pytest.raises(ConfigError, match="unknown execution engine"):
            db.configure_execution(engine="columnar")

    @pytest.mark.parametrize("bad", [0, -1, -100, 2.5, "16", True])
    def test_bad_batch_size(self, db, bad):
        with pytest.raises(ConfigError, match="batch_size"):
            db.configure_execution(engine="batch", batch_size=bad)

    @pytest.mark.parametrize("bad", [0, -1, -8, 1.5, "4", False])
    def test_bad_workers(self, db, bad):
        with pytest.raises(ConfigError, match="workers"):
            db.configure_execution(engine="batch", workers=bad)

    @pytest.mark.parametrize("bad", [0, -1, "big", True])
    def test_bad_morsel_size(self, db, bad):
        with pytest.raises(ConfigError, match="morsel_size"):
            db.configure_execution(engine="batch", morsel_size=bad)

    def test_unknown_pool_mode(self, db):
        with pytest.raises(ConfigError, match="pool mode"):
            db.configure_execution(engine="batch", workers=2, pool="thread")

    def test_workers_require_batch_engine(self, db):
        with pytest.raises(ConfigError, match="engine='batch'"):
            db.configure_execution(engine="tuple", workers=2)

    def test_config_object_and_keywords_conflict(self, db):
        with pytest.raises(ConfigError, match="not both"):
            db.configure_execution(
                ExecutionConfig(engine="batch"), batch_size=32
            )

    def test_invalid_config_leaves_executor_untouched(self, db):
        db.configure_execution(engine="batch", batch_size=32)
        before = db.executor
        with pytest.raises(ConfigError):
            db.configure_execution(engine="nope")
        assert db.executor is before
        assert db.sql("SELECT Id FROM R").to_dicts() == [{"Id": 1}]


class TestValidSettings:
    def test_default_restores_tuple_engine(self, db):
        db.configure_execution(engine="batch")
        db.configure_execution()
        assert type(db.executor) is Executor
        assert db.execution_config.engine == "tuple"

    def test_batch_size_alone_implies_batch(self, db):
        db.configure_execution(batch_size=128)
        assert type(db.executor) is BatchExecutor
        assert db.execution_config.engine == "batch"
        assert db.execution_config.batch_size == 128

    def test_workers_alone_implies_batch(self, db):
        db.configure_execution(workers=2, pool="inline")
        assert db.execution_config.engine == "batch"
        assert db.execution_config.workers == 2
        db.configure_execution()

    def test_config_object_round_trips(self, db):
        config = ExecutionConfig(
            engine="batch", batch_size=64, workers=2, pool="inline"
        )
        db.configure_execution(config)
        assert db.execution_config is config
        db.configure_execution()

    def test_defaults(self):
        config = ExecutionConfig()
        assert config.engine == "tuple"
        assert config.workers == 1
        assert config.pool == "auto"


class TestEnvironmentDefaults:
    def test_env_engine_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_ENGINE", "batch")
        monkeypatch.setenv("REPRO_EXEC_WORKERS", "2")
        monkeypatch.setenv("REPRO_EXEC_POOL", "inline")
        database = MainMemoryDatabase()
        try:
            assert database.execution_config.engine == "batch"
            assert database.execution_config.workers == 2
            assert database.execution_config.pool == "inline"
        finally:
            database.configure_execution()

    def test_no_env_keeps_tuple_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC_ENGINE", raising=False)
        database = MainMemoryDatabase()
        assert type(database.executor) is Executor
