"""Tests for plan nodes and the executor."""

import pytest

from repro.errors import PlanError
from repro.query.plan import (
    REF_COLUMN,
    FilterNode,
    IndexLookupNode,
    IndexRangeNode,
    JoinNode,
    ProjectNode,
    ScanNode,
)
from repro.query.predicates import eq, ge, gt, lt
from tests.conftest import EMPLOYEES


class TestPlanValidation:
    def test_join_method_validated(self):
        with pytest.raises(PlanError):
            JoinNode(ScanNode("A"), ScanNode("B"), "x", "y", "warp_join")

    def test_project_dedup_method_validated(self):
        with pytest.raises(PlanError):
            ProjectNode(ScanNode("A"), ["x"], dedup_method="magic")

    def test_explain_renders_tree(self):
        plan = ProjectNode(
            JoinNode(
                ScanNode("Employee", gt("Age", 30)),
                ScanNode("Department"),
                "Dept_Id",
                "Id",
                "hash",
            ),
            ["Age"],
            deduplicate=True,
        )
        text = plan.explain()
        assert "Join[hash]" in text
        assert "Scan(Employee)" in text
        assert "dedup(hash)" in text


class TestScanExecution:
    def test_bare_scan_returns_all(self, figure1_db):
        result = figure1_db.execute(ScanNode("Employee"))
        assert len(result) == len(EMPLOYEES)

    def test_scan_with_predicate(self, figure1_db):
        result = figure1_db.execute(ScanNode("Employee", gt("Age", 40)))
        names = {d["Name"] for d in result.to_dicts()}
        assert names == {"Yaman", "Jane"}

    def test_unknown_relation_raises(self, figure1_db):
        from repro.errors import CatalogError

        with pytest.raises(CatalogError):
            figure1_db.execute(ScanNode("Nope"))


class TestIndexLookupExecution:
    def test_exact_lookup_via_primary(self, figure1_db):
        result = figure1_db.execute(IndexLookupNode("Employee", "Id", 44))
        assert result.to_dicts()[0]["Name"] == "Yaman"

    def test_lookup_prefers_hash_when_available(self, figure1_db):
        figure1_db.create_index(
            "Employee", "emp_hash", "Id", kind="modified_linear_hash"
        )
        node = IndexLookupNode("Employee", "Id", 23, prefer="hash")
        result = figure1_db.execute(node)
        assert result.to_dicts()[0]["Name"] == "Dave"

    def test_hash_preference_without_hash_index_raises(self, figure1_db):
        node = IndexLookupNode("Employee", "Id", 23, prefer="hash")
        with pytest.raises(PlanError):
            figure1_db.execute(node)

    def test_unindexed_field_raises(self, figure1_db):
        with pytest.raises(PlanError):
            figure1_db.execute(IndexLookupNode("Employee", "Age", 24))


class TestIndexRangeExecution:
    def test_range_over_primary(self, figure1_db):
        figure1_db.create_index("Employee", "by_age", "Age", kind="ttree")
        node = IndexRangeNode("Employee", "Age", 24, 47)
        ages = [d["Age"] for d in figure1_db.execute(node).to_dicts()]
        assert ages == [24, 27, 47]

    def test_range_needs_ordered_index(self, figure1_db):
        with pytest.raises(PlanError):
            figure1_db.execute(IndexRangeNode("Employee", "Age", 0, 99))


class TestFilterExecution:
    def test_filter_on_child_rows(self, figure1_db):
        plan = FilterNode(ScanNode("Employee"), lt("Age", 25))
        names = {d["Name"] for d in figure1_db.execute(plan).to_dicts()}
        assert names == {"Dave", "Cindy"}

    def test_filter_unknown_column_raises(self, figure1_db):
        plan = FilterNode(ScanNode("Employee"), eq("Nope", 1))
        with pytest.raises(PlanError):
            figure1_db.execute(plan)


class TestJoinExecution:
    EXPECTED = {
        ("Dave", "Toy"),
        ("Suzan", "Toy"),
        ("Yaman", "Linen"),
        ("Jane", "Linen"),
        ("Cindy", "Shoe"),
    }

    def pairs(self, result):
        return {
            (d["Employee.Name"], d["Department.Name"])
            for d in result.to_dicts()
        }

    @pytest.mark.parametrize("method", ["nested_loops", "hash", "sort_merge"])
    def test_generic_methods(self, figure1_db, method):
        # Join stored pointer (Dept_Id REF) against the department's own
        # pointer — Query 2's pointer-comparison join.
        plan = JoinNode(
            ScanNode("Employee"), ScanNode("Department"),
            "Dept_Id", REF_COLUMN, method,
        )
        assert self.pairs(figure1_db.execute(plan)) == self.EXPECTED

    def test_value_join_via_hash(self, figure1_db):
        # Join on the department Id *value* extracted through pointers.
        plan = JoinNode(
            ScanNode("Department"), ScanNode("Department"),
            "Id", "Id", "hash",
        )
        result = figure1_db.execute(plan)
        assert len(result) == 4  # self-join on a key

    def test_tree_join_uses_inner_index(self, figure1_db):
        plan = JoinNode(
            ScanNode("Department"), ScanNode("Employee"),
            "Id", "Id", "tree",  # Employee_pk is a T-Tree on Id
        )
        result = figure1_db.execute(plan)
        assert len(result) == 0  # department ids never equal employee ids

    def test_tree_join_requires_bare_relation(self, figure1_db):
        plan = JoinNode(
            ScanNode("Employee"),
            ScanNode("Department", eq("Name", "Toy")),
            "Dept_Id", "Id", "tree",
        )
        with pytest.raises(PlanError):
            figure1_db.execute(plan)

    def test_tree_merge_requires_indexes_on_join_fields(self, figure1_db):
        plan = JoinNode(
            ScanNode("Employee"), ScanNode("Department"),
            "Age", "Id", "tree_merge",
        )
        with pytest.raises(PlanError):
            figure1_db.execute(plan)

    def test_tree_merge_with_proper_indexes(self, figure1_db):
        figure1_db.create_index("Employee", "by_age", "Age", kind="ttree")
        figure1_db.create_index("Department", "by_id2", "Id", kind="ttree")
        plan = JoinNode(
            ScanNode("Employee"), ScanNode("Department"),
            "Age", "Id", "tree_merge",
        )
        assert len(figure1_db.execute(plan)) == 0  # ages never match ids

    def test_precomputed_join(self, figure1_db):
        plan = JoinNode(
            ScanNode("Employee"), ScanNode("Department"),
            "Dept_Id", REF_COLUMN, "precomputed",
        )
        assert self.pairs(figure1_db.execute(plan)) == self.EXPECTED

    def test_precomputed_requires_fk_field(self, figure1_db):
        plan = JoinNode(
            ScanNode("Employee"), ScanNode("Department"),
            "Age", REF_COLUMN, "precomputed",
        )
        with pytest.raises(PlanError):
            figure1_db.execute(plan)

    def test_precomputed_requires_ref_column(self, figure1_db):
        plan = JoinNode(
            ScanNode("Employee"), ScanNode("Department"),
            "Dept_Id", "Id", "precomputed",
        )
        with pytest.raises(PlanError):
            figure1_db.execute(plan)

    def test_join_descriptor_qualifies_collisions(self, figure1_db):
        plan = JoinNode(
            ScanNode("Employee"), ScanNode("Department"),
            "Dept_Id", REF_COLUMN, "hash",
        )
        names = figure1_db.execute(plan).descriptor.column_names
        assert "Employee.Name" in names and "Department.Name" in names
        assert "Age" in names  # unique names stay unqualified

    def test_ref_column_ambiguous_on_multi_source(self, figure1_db):
        inner = JoinNode(
            ScanNode("Employee"), ScanNode("Department"),
            "Dept_Id", REF_COLUMN, "hash",
        )
        plan = JoinNode(
            inner, ScanNode("Department"), REF_COLUMN, REF_COLUMN, "hash"
        )
        with pytest.raises(PlanError):
            figure1_db.execute(plan)


class TestProjectExecution:
    def test_projection_is_descriptor_only(self, figure1_db):
        plan = ProjectNode(ScanNode("Employee"), ["Name", "Age"])
        result = figure1_db.execute(plan)
        assert result.descriptor.column_names == ["Name", "Age"]
        assert len(result) == len(EMPLOYEES)

    @pytest.mark.parametrize("method", ["hash", "sort_scan"])
    def test_deduplicate(self, figure1_db, method):
        # Project Employee onto Dept_Id: 5 rows collapse to 3 departments.
        plan = ProjectNode(
            ScanNode("Employee"), ["Dept_Id"],
            deduplicate=True, dedup_method=method,
        )
        result = figure1_db.execute(plan)
        assert len(result) == 3

    def test_multi_column_dedup(self, figure1_db):
        plan = ProjectNode(
            ScanNode("Employee"), ["Name", "Dept_Id"], deduplicate=True
        )
        assert len(figure1_db.execute(plan)) == len(EMPLOYEES)
