"""Unit tests for the vectorized package: config, deref, compile, kernels."""

import pytest

from repro import Field, FieldType, MainMemoryDatabase
from repro.instrument import counters_scope
from repro.query.plan import ScanNode
from repro.query.predicates import between, gt, lt
from repro.query.vectorized import (
    DEREF_SAVED_COUNTER,
    BatchExecutor,
    ExecutionConfig,
    ref_extractor,
)
from repro.query.vectorized.compile import compile_predicate
from repro.query.vectorized.deref import RowFieldAccess, ScanFieldAccess
from repro.query.vectorized.kernels import (
    PartitionedHashTable,
    _fit_partitions,
    build_hash_table,
    dedup_hash_rows,
    probe_hash_table,
)


@pytest.fixture()
def db():
    database = MainMemoryDatabase()
    database.create_relation(
        "T",
        [Field("Id", FieldType.INT), Field("V", FieldType.INT)],
        primary_key="Id",
    )
    for i in range(20):
        database.insert("T", [i, i % 5])
    return database


def _refs(database):
    relation = database.catalog.relation("T")
    return relation, list(relation.any_index().scan())


class TestExecutionConfig:
    def test_defaults(self):
        config = ExecutionConfig()
        assert config.engine == "tuple"
        assert config.batch_size == 256

    def test_engine_validated(self):
        with pytest.raises(ValueError):
            ExecutionConfig(engine="columnar")

    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            ExecutionConfig(batch_size=0)

    def test_executor_batch_size_validated(self, db):
        with pytest.raises(ValueError):
            BatchExecutor(db.catalog, batch_size=0)


class TestConfigureExecution:
    def test_batch_size_alone_implies_batch(self, db):
        executor = db.configure_execution(batch_size=16)
        assert executor.engine_name == "batch"
        assert executor.batch_size == 16
        assert db.execution_config.engine == "batch"

    def test_no_args_restores_tuple(self, db):
        db.configure_execution(engine="batch")
        executor = db.configure_execution()
        assert executor.engine_name == "tuple"
        assert db.execution_config.engine == "tuple"

    def test_config_and_kwargs_conflict(self, db):
        with pytest.raises(ValueError):
            db.configure_execution(ExecutionConfig(), engine="batch")

    def test_config_object_applies(self, db):
        executor = db.configure_execution(
            ExecutionConfig(engine="batch", batch_size=4)
        )
        assert executor.engine_name == "batch"
        assert executor.batch_size == 4


class TestDerefCache:
    def test_hit_skips_physical_work_and_tallies(self, db):
        relation, refs = _refs(db)
        extract = ref_extractor(relation, "V", counted=True)
        with counters_scope() as counters:
            first = [extract(ref) for ref in refs]
            second = [extract(ref) for ref in refs]
            extract.flush()
        assert first == second
        snap = counters.snapshot()
        # One logical traversal per call either way...
        assert snap.traversals == 2 * len(refs)
        # ...but the second pass was served from the memo.
        assert snap.extra[DEREF_SAVED_COUNTER] == len(refs)

    def test_flush_is_idempotent(self, db):
        relation, refs = _refs(db)
        extract = ref_extractor(relation, "V")
        with counters_scope() as counters:
            extract(refs[0])
            extract(refs[0])
            extract.flush()
            extract.flush()
        assert counters.snapshot().extra[DEREF_SAVED_COUNTER] == 1


class TestCompiledPredicates:
    def test_scan_mask_counts_no_traversals(self, db):
        relation, refs = _refs(db)
        mask = compile_predicate(gt("V", 2), ScanFieldAccess(relation))
        with counters_scope() as counters:
            flags = mask(refs)
        assert flags == [v % 5 > 2 for v in range(20)]
        snap = counters.snapshot()
        assert snap.comparisons == len(refs)
        assert snap.traversals == 0

    def test_between_counts_two_comparisons(self, db):
        relation, refs = _refs(db)
        mask = compile_predicate(
            between("V", 1, 3), ScanFieldAccess(relation)
        )
        with counters_scope() as counters:
            flags = mask(refs)
        assert flags == [1 <= v % 5 <= 3 for v in range(20)]
        assert counters.snapshot().comparisons == 2 * len(refs)

    def test_conjunction_short_circuits(self, db):
        relation, refs = _refs(db)
        predicate = gt("V", 1) & lt("V", 4)
        mask = compile_predicate(predicate, ScanFieldAccess(relation))
        with counters_scope() as counters:
            flags = mask(refs)
        assert flags == [1 < v % 5 < 4 for v in range(20)]
        survivors = sum(1 for v in range(20) if v % 5 > 1)
        # Second conjunct is charged only for first-part survivors.
        assert counters.snapshot().comparisons == len(refs) + survivors

    def test_filter_mask_counts_traversals(self, db):
        relation, refs = _refs(db)
        from repro.query.executor import filter_column_resolver

        result = db.executor.execute(ScanNode("T"))
        access = RowFieldAccess(
            result.descriptor, filter_column_resolver(result.descriptor)
        )
        mask = compile_predicate(gt("V", 2), access)
        rows = result.rows()
        with counters_scope() as counters:
            mask(rows)
        snap = counters.snapshot()
        assert snap.comparisons == len(rows)
        assert snap.traversals == len(rows)


class TestKernels:
    def test_partition_count_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            PartitionedHashTable(3)

    def test_fit_partitions(self):
        assert _fit_partitions(0, 8) == 1
        assert _fit_partitions(1, 8) == 1
        assert _fit_partitions(5, 8) == 4
        assert _fit_partitions(500, 8) == 8

    def test_probe_emits_lifo_matches(self):
        rows = [("a", 1), ("b", 1), ("c", 2)]
        table = build_hash_table(rows, lambda row: row[1])
        out = probe_hash_table(table, [("x", 1)], lambda row: row[1])
        assert out == [("x", 1, "b", 1), ("x", 1, "a", 1)]

    def test_dedup_keeps_first_occurrence(self):
        rows = [("a", 1), ("b", 2), ("c", 1), ("d", 3), ("e", 2)]
        out = dedup_hash_rows(rows, lambda row: row[1])
        assert out == [("a", 1), ("b", 2), ("d", 3)]


class TestObservabilityIntegration:
    def test_explain_analyze_under_batch_engine(self, db):
        db.configure_execution(engine="batch")
        rendered = db.sql("EXPLAIN ANALYZE SELECT * FROM T WHERE V > 2")
        text = str(rendered)
        assert "Scan" in text

    def test_batch_size_one_matches_default(self, db):
        plan = ScanNode("T", gt("V", 1) & lt("V", 4))
        small = BatchExecutor(db.catalog, batch_size=1).execute(plan)
        large = BatchExecutor(db.catalog, batch_size=512).execute(plan)
        assert small.rows() == large.rows()
