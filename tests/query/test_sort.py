"""Tests for the quicksort + insertion-sort hybrid (paper footnote 6)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instrument import counters_scope
from repro.query.sort import (
    INSERTION_SORT_CUTOFF,
    insertion_sort,
    is_sorted,
    quicksort,
)


class TestInsertionSort:
    def test_sorts_small_list(self):
        items = [5, 2, 8, 1, 9]
        insertion_sort(items)
        assert items == [1, 2, 5, 8, 9]

    def test_subrange_only(self):
        items = [9, 3, 1, 2, 0]
        insertion_sort(items, lo=1, hi=3)
        assert items == [9, 1, 2, 3, 0]

    def test_stable_for_equal_keys(self):
        items = [(1, "a"), (0, "b"), (1, "c"), (0, "d")]
        insertion_sort(items, key_of=lambda it: it[0])
        assert items == [(0, "b"), (0, "d"), (1, "a"), (1, "c")]

    def test_sorted_input_costs_n_comparisons(self):
        items = list(range(100))
        with counters_scope() as c:
            insertion_sort(items)
        assert c.comparisons <= 99  # one comparison per adjacent pair


class TestQuicksort:
    def test_cutoff_is_ten(self):
        # "The optimal subarray size was 10."
        assert INSERTION_SORT_CUTOFF == 10

    def test_sorts_random_input(self):
        rng = random.Random(1)
        items = [rng.randrange(10**6) for __ in range(5000)]
        quicksort(items)
        assert items == sorted(items)

    def test_sorts_with_key_extractor(self):
        rng = random.Random(2)
        items = [(rng.randrange(100), i) for i in range(1000)]
        quicksort(items, key_of=lambda it: it[0])
        assert [k for k, __ in items] == sorted(k for k, __ in items)

    def test_handles_all_equal_keys_linearly(self):
        # The three-way partition keeps massive duplicate runs cheap —
        # the regime of the projection test's high-duplicate end.
        items = [7] * 10000
        with counters_scope() as c:
            quicksort(items)
        assert items == [7] * 10000
        assert c.comparisons < 10 * 10000  # far below O(n^2)

    def test_already_sorted_input(self):
        items = list(range(2000))
        quicksort(items)
        assert items == list(range(2000))

    @pytest.mark.slow
    def test_reverse_sorted_input(self):
        items = list(range(2000, 0, -1))
        quicksort(items)
        assert items == sorted(items)

    def test_empty_and_singleton(self):
        empty = []
        quicksort(empty)
        assert empty == []
        one = [42]
        quicksort(one)
        assert one == [42]

    def test_nlogn_comparison_growth(self):
        rng = random.Random(3)
        costs = {}
        for n in (1000, 4000):
            items = [rng.randrange(10**9) for __ in range(n)]
            with counters_scope() as c:
                quicksort(items)
            costs[n] = c.comparisons
        # 4x the data should cost well under 16x (quadratic would be 16x).
        assert costs[4000] < costs[1000] * 8

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(-10**6, 10**6), max_size=400))
    def test_property_equals_builtin_sorted(self, items):
        expected = sorted(items)
        quicksort(items)
        assert items == expected

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(-50, 50), st.integers(0, 10**6)),
            max_size=300,
        )
    )
    def test_property_key_extractor(self, items):
        expected_keys = sorted(k for k, __ in items)
        quicksort(items, key_of=lambda it: it[0])
        assert [k for k, __ in items] == expected_keys


class TestIsSorted:
    def test_detects_sorted(self):
        assert is_sorted([1, 2, 2, 3])
        assert is_sorted([])
        assert is_sorted([1])

    def test_detects_unsorted(self):
        assert not is_sorted([2, 1])
