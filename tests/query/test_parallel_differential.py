"""Differential tests: morsel-parallel engine vs. scalar batch engine.

The morsel-driven executor's core contract (DESIGN.md section 3.9) is
that worker count is *unobservable* in results and in the Section 3.1
counter totals: for every plan, workers ∈ {1, 2, 4} must produce
identical rows in identical order and identical merged counters on the
five base counters.  Only the ``deref_saved_traversals`` extra may
differ (per-morsel memos cannot span morsel boundaries), so it is
popped before comparing.

``workers=1`` must not construct a parallel executor at all — it *is*
the scalar ``BatchExecutor`` code path.
"""

import random

import pytest

from repro import Field, FieldType, MainMemoryDatabase
from repro.instrument import counters_scope
from repro.query.parallel import MorselScheduler, ParallelBatchExecutor
from repro.query.parallel import runtime as par_runtime
from repro.query.plan import (
    REF_COLUMN,
    FilterNode,
    JoinNode,
    ProjectNode,
    ScanNode,
)
from repro.query.predicates import between, eq, ge, gt, le, lt, ne
from repro.query.vectorized import DEREF_SAVED_COUNTER, BatchExecutor

SEED = 19860528
N_R = 900
N_S = 180
VALUE_SPACE = 60
MORSEL = 128  # far below the data size so every operator morselizes
WORKER_COUNTS = (2, 4)


@pytest.fixture(scope="module")
def db():
    rng = random.Random(SEED)
    database = MainMemoryDatabase()
    database.create_relation(
        "R",
        [
            Field("Id", FieldType.INT),
            Field("A", FieldType.INT),
            Field("B", FieldType.INT),
        ],
        primary_key="Id",
    )
    database.create_relation(
        "S",
        [Field("Id", FieldType.INT), Field("A", FieldType.INT)],
        primary_key="Id",
    )
    for i in range(N_R):
        database.insert(
            "R", [i, rng.randrange(VALUE_SPACE), rng.randrange(1_000)]
        )
    for i in range(N_S):
        database.insert("S", [i, rng.randrange(VALUE_SPACE)])
    return database


def _plan_mix():
    rng = random.Random(SEED + 1)
    lo = rng.randrange(VALUE_SPACE // 2)
    hi = lo + rng.randrange(5, VALUE_SPACE // 2)
    return [
        # -- parallel partitioned scans --------------------------------
        ScanNode("R"),
        ScanNode("R", eq("A", lo)),
        ScanNode("R", gt("A", lo) & lt("A", hi)),
        ScanNode("R", between("A", lo, hi) | ge("B", 900) | le("B", 50)),
        ScanNode("R", ne("A", lo) & (gt("B", 100) | lt("A", 3))),
        # -- parallel filters ------------------------------------------
        FilterNode(ScanNode("R"), gt("B", 200) & lt("B", 800)),
        FilterNode(ScanNode("R", gt("A", 3)), lt("B", 500)),
        # -- parallel hash dedup ---------------------------------------
        ProjectNode(
            ScanNode("R"), ("A",), deduplicate=True, dedup_method="hash"
        ),
        ProjectNode(
            ScanNode("R"),
            ("A", "B"),
            deduplicate=True,
            dedup_method="hash",
        ),
        ProjectNode(ScanNode("R"), ("B", "A"), deduplicate=False),
        # -- parallel hash join (and small-side fallbacks) -------------
        JoinNode(ScanNode("R"), ScanNode("S"), "A", "A", "hash"),
        JoinNode(ScanNode("S"), ScanNode("R"), "A", "A", "hash"),
        JoinNode(
            ScanNode("R"), ScanNode("R"), REF_COLUMN, REF_COLUMN, "hash"
        ),
        # -- non-parallel operators must still match exactly -----------
        JoinNode(ScanNode("R"), ScanNode("S"), "A", "A", "sort_merge"),
        ProjectNode(
            ScanNode("R"),
            ("A",),
            deduplicate=True,
            dedup_method="sort_scan",
        ),
        # -- composites: morsels below morsels -------------------------
        FilterNode(
            JoinNode(ScanNode("R"), ScanNode("S"), "A", "A", "hash"),
            gt("B", 500),
        ),
        ProjectNode(
            JoinNode(
                ScanNode("R", gt("B", 300)), ScanNode("S"), "A", "A", "hash"
            ),
            ("R.A",),
            deduplicate=True,
            dedup_method="hash",
        ),
    ]


def _run(executor, plan):
    with counters_scope() as counters:
        result = executor.execute(plan)
    counts = counters.snapshot().as_dict()
    counts.pop(DEREF_SAVED_COUNTER, None)
    return result, counts


def _parallel_executor(db, workers, morsel_size=MORSEL):
    return ParallelBatchExecutor(
        db.catalog,
        batch_size=64,
        workers=workers,
        morsel_size=morsel_size,
        pool="inline",
    )


@pytest.mark.parametrize("plan", _plan_mix(), ids=lambda p: p.explain())
def test_plan_differential(db, plan):
    """Identical rows and identical merged base counters, all workers."""
    base_result, base_counts = _run(
        BatchExecutor(db.catalog, batch_size=64), plan
    )
    for workers in WORKER_COUNTS:
        executor = _parallel_executor(db, workers)
        try:
            result, counts = _run(executor, plan)
        finally:
            executor.close()
        assert result.rows() == base_result.rows(), (workers, plan.explain())
        assert [c.name for c in result.descriptor.columns] == [
            c.name for c in base_result.descriptor.columns
        ]
        assert counts == base_counts, (workers, plan.explain())


@pytest.mark.parametrize("morsel_size", [64, 100, 999])
def test_morsel_size_invariance(db, morsel_size):
    """Counter totals must not depend on the morsel granularity."""
    plans = [
        ScanNode("R", gt("A", 5) & lt("A", 40)),
        JoinNode(ScanNode("R"), ScanNode("S"), "A", "A", "hash"),
        ProjectNode(
            ScanNode("R"), ("A",), deduplicate=True, dedup_method="hash"
        ),
    ]
    for plan in plans:
        base_result, base_counts = _run(BatchExecutor(db.catalog), plan)
        executor = _parallel_executor(db, 2, morsel_size=morsel_size)
        try:
            result, counts = _run(executor, plan)
        finally:
            executor.close()
        assert result.rows() == base_result.rows()
        assert counts == base_counts, (morsel_size, plan.explain())


def test_process_pool_smoke(db):
    """A real fork pool produces the same rows and counts (when forkable)."""
    from repro.query.parallel import fork_available

    plan = JoinNode(
        ScanNode("R", gt("B", 100)), ScanNode("S"), "A", "A", "hash"
    )
    base_result, base_counts = _run(BatchExecutor(db.catalog), plan)
    executor = ParallelBatchExecutor(
        db.catalog, workers=2, morsel_size=MORSEL, pool="process"
    )
    try:
        result, counts = _run(executor, plan)
        assert result.rows() == base_result.rows()
        assert counts == base_counts
        if fork_available() and executor.scheduler.fallback_reason is None:
            assert executor.scheduler.stats["process_runs"] > 0
    finally:
        executor.close()


# --------------------------------------------------------------------- #
# dispatch plumbing
# --------------------------------------------------------------------- #


def test_workers_one_is_plain_batch_executor(db):
    """workers=1 must take the unmodified scalar batch path: no pool,
    no parallel executor, no scheduler registration."""
    db.configure_execution(engine="batch", workers=1)
    try:
        assert type(db.executor) is BatchExecutor
        assert par_runtime.active_scheduler() is None
    finally:
        db.configure_execution()
    assert db.executor.engine_name == "tuple"


def test_workers_many_installs_parallel_executor(db):
    db.configure_execution(engine="batch", workers=2, pool="inline")
    try:
        assert type(db.executor) is ParallelBatchExecutor
        assert par_runtime.active_scheduler() is db.executor.scheduler
        rows = db.sql(
            "SELECT Id, B FROM R WHERE B > 400 ORDER BY Id"
        ).to_dicts()
        assert len(rows) > 0
    finally:
        db.configure_execution()
    # Retiring the executor releases the process-wide scheduler slot.
    assert par_runtime.active_scheduler() is None


def test_sql_differential_across_workers(db):
    query = (
        "SELECT R.A, S.Id FROM R JOIN S ON R.A = S.A WHERE R.B > 400 "
        "ORDER BY S.Id"
    )
    db.configure_execution(engine="batch")
    try:
        db.sql(query)  # warm the plan cache so planning costs drop out
        with counters_scope() as base_scope:
            base_rows = db.sql(query).to_dicts()
        base = base_scope.snapshot().as_dict()
        base.pop(DEREF_SAVED_COUNTER, None)
        for workers in WORKER_COUNTS:
            db.configure_execution(
                engine="batch",
                workers=workers,
                pool="inline",
                morsel_size=MORSEL,
            )
            with counters_scope() as scope:
                rows = db.sql(query).to_dicts()
            counts = scope.snapshot().as_dict()
            counts.pop(DEREF_SAVED_COUNTER, None)
            assert rows == base_rows, workers
            assert counts == base, workers
    finally:
        db.configure_execution()


def test_scheduler_refork_on_version_bump():
    """DML between dispatches invalidates the pool fingerprint."""
    rng = random.Random(SEED + 7)
    database = MainMemoryDatabase()
    database.create_relation(
        "T",
        [Field("Id", FieldType.INT), Field("V", FieldType.INT)],
        primary_key="Id",
    )
    for i in range(300):
        database.insert("T", [i, rng.randrange(50)])
    scheduler = MorselScheduler(database.catalog, workers=2)
    try:
        first = scheduler.fingerprint()
        database.insert("T", [300, 1])
        assert scheduler.fingerprint() != first
    finally:
        scheduler.close()


# --------------------------------------------------------------------- #
# parallel index build
# --------------------------------------------------------------------- #


def _fresh_db(n=600):
    rng = random.Random(SEED + 3)
    database = MainMemoryDatabase()
    database.create_relation(
        "R",
        [
            Field("Id", FieldType.INT),
            Field("A", FieldType.INT),
            Field("B", FieldType.INT),
        ],
        primary_key="Id",
    )
    for i in range(n):
        database.insert(
            "R", [i, rng.randrange(VALUE_SPACE), rng.randrange(1_000)]
        )
    return database


def _build_counts(database, name, field_spec, parallel, **options):
    relation = database.catalog.relation("R")
    with counters_scope() as scope:
        relation.create_index(name, field_spec, parallel=parallel, **options)
    counts = scope.snapshot().as_dict()
    counts.pop(DEREF_SAVED_COUNTER, None)
    with counters_scope():
        entries = list(relation.indexes[name].scan())
    return counts, entries


@pytest.mark.parametrize("kind", ["ttree", "chained_hash"])
def test_parallel_index_build_differential(kind):
    database = _fresh_db()
    seq_counts, seq_entries = _build_counts(
        database, "seq_ix", "A", False, kind=kind
    )
    par_counts, par_entries = _build_counts(
        database, "par_ix", "A", True, kind=kind
    )
    assert seq_counts == par_counts
    assert sorted(seq_entries) == sorted(par_entries)


def test_parallel_index_build_through_scheduler():
    """With an active pool the prefetch runs on workers; counters and
    structure still match the sequential build."""
    database = _fresh_db()
    seq_counts, seq_entries = _build_counts(
        database, "seq_ix", "A", False, kind="ttree"
    )
    executor = ParallelBatchExecutor(
        database.catalog, workers=2, morsel_size=100, pool="inline"
    )
    par_runtime.activate_scheduler(executor.scheduler)
    try:
        par_counts, par_entries = _build_counts(
            database, "par_ix", "A", True, kind="ttree"
        )
    finally:
        par_runtime.deactivate_scheduler(executor.scheduler)
        executor.close()
    assert seq_counts == par_counts
    assert sorted(seq_entries) == sorted(par_entries)
    assert executor.scheduler.stats["morsels"] > 1


def test_parallel_index_build_multi_attribute():
    database = _fresh_db()
    seq_counts, seq_entries = _build_counts(
        database, "seq_ix", ["A", "B"], False, kind="ttree"
    )
    par_counts, par_entries = _build_counts(
        database, "par_ix", ["A", "B"], True, kind="ttree"
    )
    assert seq_counts == par_counts
    assert list(seq_entries) == list(par_entries)


def test_parallel_index_build_unique_violation():
    database = _fresh_db()
    relation = database.catalog.relation("R")
    with pytest.raises(Exception) as excinfo:
        relation.create_index(
            "uq_ix", "A", kind="ttree", unique=True, parallel=True
        )
    assert "uq_ix" not in relation.indexes or excinfo.value is not None


def test_parallel_build_restores_normal_extractor():
    """After the bulk load, later DML maintains the index organically."""
    database = _fresh_db(200)
    relation = database.catalog.relation("R")
    relation.create_index("par_ix", "A", kind="ttree", parallel=True)
    database.insert("R", [10_000, 7, 7])
    with counters_scope():
        refs = relation.indexes["par_ix"].search_all(7)
        values = {relation.read_field(ref, "Id") for ref in refs}
    assert 10_000 in values
