"""Unit tests for temporary lists and result descriptors (Section 2.3)."""

import pytest

from repro.errors import QueryError, SchemaError
from repro.storage.partition import PartitionConfig
from repro.storage.relation import Relation
from repro.storage.schema import Field, FieldType, Schema
from repro.storage.temporary import (
    ResultColumn,
    ResultDescriptor,
    TemporaryList,
)


@pytest.fixture
def relation() -> Relation:
    schema = Schema([Field("k", FieldType.INT), Field("s", FieldType.STR)])
    rel = Relation("R", schema, PartitionConfig(16, 1024))
    rel.create_index("R_pk", "k", unique=True)
    for i in range(5):
        rel.insert([i, f"v{i}"])
    return rel


def refs_of(relation):
    return list(relation.index("R_pk").scan())


class TestResultDescriptor:
    def test_requires_sources(self):
        with pytest.raises(QueryError):
            ResultDescriptor([], [])

    def test_validates_source_indices(self, relation):
        with pytest.raises(QueryError):
            ResultDescriptor([relation], [ResultColumn(1, "k")])

    def test_validates_field_names(self, relation):
        with pytest.raises(SchemaError):
            ResultDescriptor([relation], [ResultColumn(0, "zzz")])

    def test_duplicate_output_names_rejected(self, relation):
        with pytest.raises(QueryError):
            ResultDescriptor(
                [relation],
                [ResultColumn(0, "k"), ResultColumn(0, "s", label="k")],
            )

    def test_whole_relation_exposes_all_fields(self, relation):
        desc = ResultDescriptor.whole_relation(relation)
        assert desc.column_names == ["k", "s"]

    def test_labels_override_names(self, relation):
        desc = ResultDescriptor(
            [relation], [ResultColumn(0, "k", label="key")]
        )
        assert desc.column_names == ["key"]
        assert desc.column("key").field == "k"

    def test_project_narrows(self, relation):
        desc = ResultDescriptor.whole_relation(relation).project(["s"])
        assert desc.column_names == ["s"]

    def test_project_unknown_column_raises(self, relation):
        with pytest.raises(QueryError):
            ResultDescriptor.whole_relation(relation).project(["nope"])


class TestTemporaryList:
    def test_direct_traversal_allowed(self, relation):
        tl = TemporaryList.from_refs(relation, refs_of(relation))
        assert len(tl) == 5
        assert len(list(tl)) == 5
        assert tl[0] == list(tl)[0]

    def test_append_checks_arity(self, relation):
        tl = TemporaryList.from_refs(relation, [])
        ref = refs_of(relation)[0]
        tl.append((ref,))
        with pytest.raises(QueryError):
            tl.append((ref, ref))

    def test_materialize_follows_pointers(self, relation):
        tl = TemporaryList.from_refs(relation, refs_of(relation))
        values = tl.materialize()
        assert sorted(values) == [(i, f"v{i}") for i in range(5)]

    def test_to_dicts(self, relation):
        tl = TemporaryList.from_refs(relation, refs_of(relation)[:1])
        assert tl.to_dicts() == [{"k": 0, "s": "v0"}]

    def test_projection_shares_rows_zero_copy(self, relation):
        tl = TemporaryList.from_refs(relation, refs_of(relation))
        narrow = tl.project(["s"])
        assert narrow.rows() is tl.rows()  # no width reduction, no copy
        assert narrow.descriptor.column_names == ["s"]

    def test_projection_sees_later_appends(self, relation):
        tl = TemporaryList.from_refs(relation, [])
        narrow = tl.project(["s"])
        tl.append((refs_of(relation)[0],))
        assert len(narrow) == 1

    def test_value_extractor(self, relation):
        tl = TemporaryList.from_refs(relation, refs_of(relation))
        extract = tl.value_extractor("s")
        assert {extract(row) for row in tl} == {f"v{i}" for i in range(5)}

    def test_updates_to_base_relation_visible(self, relation):
        # Pointers, not copies: mutating the base relation changes what
        # the temporary list materialises.
        tl = TemporaryList.from_refs(relation, refs_of(relation))
        target = relation.index("R_pk").search(3)
        relation.update(target, "s", "CHANGED")
        assert ("CHANGED" in [v for __, v in tl.materialize()])


class TestTemporaryListIndex:
    def test_index_on_temporary_list(self, relation):
        tl = TemporaryList.from_refs(relation, refs_of(relation))
        idx = tl.create_index("by_s", "s", kind="chained_hash")
        row = idx.search("v3")
        assert tl.value_extractor("k")(row) == 3

    def test_index_maintained_on_append(self, relation):
        tl = TemporaryList.from_refs(relation, refs_of(relation)[:2])
        idx = tl.create_index("by_s", "s")
        extra = refs_of(relation)[4]
        tl.append((extra,))
        assert idx.search("v4") is not None

    def test_duplicate_index_name_rejected(self, relation):
        tl = TemporaryList.from_refs(relation, [])
        tl.create_index("x", "s")
        with pytest.raises(SchemaError):
            tl.create_index("x", "s")

    def test_ordered_index_on_temporary_list(self, relation):
        tl = TemporaryList.from_refs(relation, refs_of(relation))
        idx = tl.create_index("tree_k", "k", kind="ttree")
        keys = [tl.value_extractor("k")(row) for row in idx.scan()]
        assert keys == sorted(keys)
