"""Property tests: the optimizer never changes query answers.

Random relations, random predicates, random join configurations — the
optimized plan must return exactly what a brute-force evaluation returns,
whatever access path or join method got picked.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Field, FieldType, MainMemoryDatabase
from repro.query.plan import JoinNode, ScanNode
from repro.query.predicates import Comparison, Conjunction, Op

LEAN = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

rows_strategy = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 10)),
    min_size=0,
    max_size=40,
    unique_by=lambda t: t[0],
)

comparison_ops = st.sampled_from(
    [Op.EQ, Op.NE, Op.LT, Op.LE, Op.GT, Op.GE]
)


def build_db(rows, with_hash_index=False, with_value_tree=False):
    db = MainMemoryDatabase()
    db.create_relation(
        "R",
        [Field("k", FieldType.INT), Field("v", FieldType.INT)],
        primary_key="k",
    )
    if with_hash_index:
        db.create_index("R", "k_hash", "k", kind="modified_linear_hash")
    if with_value_tree:
        db.create_index("R", "v_tree", "v", kind="ttree")
    for k, v in rows:
        db.insert("R", [k, v])
    return db


def brute_force(db, predicate):
    result = db.execute(ScanNode("R", predicate))
    return sorted(result.materialize())


class TestSelectionEquivalence:
    @LEAN
    @given(
        rows=rows_strategy,
        field=st.sampled_from(["k", "v"]),
        op=comparison_ops,
        value=st.integers(-5, 35),
        hash_index=st.booleans(),
        value_tree=st.booleans(),
    )
    def test_single_comparison(
        self, rows, field, op, value, hash_index, value_tree
    ):
        db = build_db(rows, hash_index, value_tree)
        predicate = Comparison(field, op, value)
        optimized = db.select("R", predicate)
        assert sorted(optimized.materialize()) == brute_force(db, predicate)

    @LEAN
    @given(
        rows=rows_strategy,
        ops=st.lists(
            st.tuples(
                st.sampled_from(["k", "v"]),
                comparison_ops,
                st.integers(-5, 35),
            ),
            min_size=2,
            max_size=4,
        ),
        value_tree=st.booleans(),
    )
    def test_conjunction(self, rows, ops, value_tree):
        db = build_db(rows, with_value_tree=value_tree)
        predicate = Conjunction(
            tuple(Comparison(f, o, v) for f, o, v in ops)
        )
        optimized = db.select("R", predicate)
        assert sorted(optimized.materialize()) == brute_force(db, predicate)

    @LEAN
    @given(
        rows=rows_strategy,
        low=st.integers(-5, 35),
        high=st.integers(-5, 35),
    )
    def test_between(self, rows, low, high):
        db = build_db(rows, with_value_tree=True)
        predicate = Comparison("v", Op.BETWEEN, low, max(low, high))
        optimized = db.select("R", predicate)
        assert sorted(optimized.materialize()) == brute_force(db, predicate)


class TestJoinEquivalence:
    @LEAN
    @given(
        left_rows=rows_strategy,
        right_rows=rows_strategy,
        indexed=st.booleans(),
    )
    def test_auto_join_matches_nested_loops(
        self, left_rows, right_rows, indexed
    ):
        db = MainMemoryDatabase()
        for name in ("A", "B"):
            db.create_relation(
                name,
                [Field("k", FieldType.INT), Field("v", FieldType.INT)],
                primary_key="k",
            )
            if indexed:
                db.create_index(name, f"{name}_v", "v", kind="ttree")
        for k, v in left_rows:
            db.insert("A", [k, v])
        for k, v in right_rows:
            db.insert("B", [k, v])
        auto = db.join("A", "B", on=("v", "v"), method="auto")
        brute = db.execute(
            JoinNode(ScanNode("A"), ScanNode("B"), "v", "v", "nested_loops")
        )
        assert sorted(auto.materialize()) == sorted(brute.materialize())

    @LEAN
    @given(
        left_rows=rows_strategy,
        right_rows=rows_strategy,
        op=st.sampled_from(["<", "<=", ">", ">=", "!="]),
    )
    def test_nonequi_join_matches_brute_force(
        self, left_rows, right_rows, op
    ):
        db = MainMemoryDatabase()
        for name in ("A", "B"):
            db.create_relation(
                name,
                [Field("k", FieldType.INT), Field("v", FieldType.INT)],
                primary_key="k",
            )
        db.create_index("B", "B_v", "v", kind="ttree")
        for k, v in left_rows:
            db.insert("A", [k, v])
        for k, v in right_rows:
            db.insert("B", [k, v])
        result = db.join("A", "B", on=("v", "v"), op=op)
        predicate = {
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
            "!=": lambda a, b: a != b,
        }[op]
        expected = sorted(
            (ak, av, bk, bv)
            for ak, av in left_rows
            for bk, bv in right_rows
            if predicate(av, bv)
        )
        got = sorted(result.materialize())
        assert [tuple(r) for r in got] == expected
