"""Plan cache behaviour: LRU mechanics, normalization, hits, evictions."""

from __future__ import annotations

import pytest

from repro.cache import CacheConfig, LRUCache, normalize_sql
from tests.conftest import build_figure1_db


def cached_db():
    db = build_figure1_db()
    db.configure_cache(CacheConfig())
    return db


class TestLRUCache:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUCache(0, "x")

    def test_get_put_and_stats(self):
        cache = LRUCache(2, "x")
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["size"] == 1

    def test_lru_eviction_order(self):
        cache = LRUCache(2, "x")
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" becomes LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_invalidate(self):
        cache = LRUCache(2, "x")
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        assert cache.stats()["invalidations"] == 1


class TestNormalization:
    def test_whitespace_and_semicolon_collapse(self):
        assert (
            normalize_sql("  SELECT *   FROM Employee ; ")
            == normalize_sql("SELECT * FROM Employee")
        )

    def test_string_literals_keep_whitespace(self):
        a = normalize_sql("SELECT * FROM T WHERE Name = 'a  b'")
        b = normalize_sql("SELECT * FROM T WHERE Name = 'a b'")
        assert a != b

    def test_case_is_significant(self):
        # Identifiers are case-sensitive in this dialect; the key must be.
        assert normalize_sql("SELECT * FROM t") != normalize_sql(
            "SELECT * FROM T"
        )


class TestPlanCacheHits:
    def test_repeat_select_hits_ast_and_plan_caches(self):
        db = cached_db()
        text = "SELECT Name FROM Employee WHERE Age > 25"
        first = db.sql(text).materialize()
        second = db.sql("  SELECT Name FROM Employee   WHERE Age > 25 ;").materialize()
        assert first == second
        stats = db.cache_stats()
        assert stats["ast"]["hits"] >= 1
        assert stats["plan"]["hits"] + stats["result"]["hits"] >= 1

    def test_distinct_statements_do_not_collide(self):
        db = cached_db()
        young = db.sql("SELECT Name FROM Employee WHERE Age < 30").materialize()
        old = db.sql("SELECT Name FROM Employee WHERE Age > 30").materialize()
        assert set(young) != set(old)
        # and repeats still return the right partition
        assert db.sql("SELECT Name FROM Employee WHERE Age < 30").materialize() == young

    def test_plan_layer_capacity_evicts(self):
        db = build_figure1_db()
        db.configure_cache(
            CacheConfig(ast_capacity=2, plan_capacity=2, result_capacity=2)
        )
        for age in range(20, 30):
            db.sql(f"SELECT Name FROM Employee WHERE Age > {age}")
        stats = db.cache_stats()
        assert stats["plan"]["size"] <= 2
        assert stats["plan"]["evictions"] > 0

    def test_caching_is_off_by_default(self):
        db = build_figure1_db()
        assert db.plan_cache is None and db.result_cache is None
        db.sql("SELECT Name FROM Employee WHERE Age > 25")
        assert db.cache_stats() == {}

    def test_disabled_layers_respected(self):
        db = build_figure1_db()
        db.configure_cache(
            CacheConfig(enable_plans=False, enable_results=False)
        )
        assert db.plan_cache is None and db.result_cache is None
        assert db.executor.result_cache is None
