"""Result-reuse cache: subtree memoization, snapshot isolation, staleness."""

from __future__ import annotations

from repro.cache import CacheConfig, plan_fingerprint, plan_relations
from repro.cache.result_cache import ResultCache
from repro.instrument import counters_scope
from repro.query.plan import IndexLookupNode, ScanNode
from repro.query.predicates import gt
from tests.conftest import build_figure1_db


class TestFingerprints:
    def test_equal_plans_equal_fingerprints(self):
        a = IndexLookupNode("Employee", "Id", 23, prefer="tree")
        b = IndexLookupNode("Employee", "Id", 23, prefer="tree")
        assert plan_fingerprint(a) == plan_fingerprint(b)

    def test_different_keys_differ(self):
        a = IndexLookupNode("Employee", "Id", 23, prefer="tree")
        b = IndexLookupNode("Employee", "Id", 44, prefer="tree")
        assert plan_fingerprint(a) != plan_fingerprint(b)

    def test_plan_relations_include_fk_predicates(self):
        db = build_figure1_db()
        plan = db.selection_plan("Employee", gt("Dept_Id", 410))
        # The ordered FK comparison follows pointers into Department.
        assert plan_relations(plan) == frozenset({"Employee", "Department"})


class TestSubtreeMemoization:
    def test_executor_subtree_hit(self):
        db = build_figure1_db()
        db.configure_cache(CacheConfig())
        plan = db.selection_plan("Employee", gt("Age", 25))
        first = db.executor.execute(plan).materialize()
        with counters_scope() as scope:
            second = db.executor.execute(plan).materialize()
        assert second == first
        assert scope.extra.get("result_hits", 0) == 1

    def test_cached_rows_are_isolated_copies(self):
        db = build_figure1_db()
        db.configure_cache(CacheConfig())
        plan = ScanNode("Employee")
        first = db.executor.execute(plan)
        first.rows().clear()  # caller vandalises its copy
        second = db.executor.execute(plan)
        assert len(second) == 5

    def test_stale_entry_discarded(self):
        db = build_figure1_db()
        cache = ResultCache(db.catalog, capacity=8)
        db.executor.result_cache = cache
        plan = ScanNode("Employee")
        db.executor.execute(plan)
        db.insert("Employee", ["Zed", 99, 33, 459])
        refreshed = db.executor.execute(plan)
        assert len(refreshed) == 6
        assert cache.stats()["invalidations"] == 1

    def test_fk_target_change_invalidates_subtree(self):
        db = build_figure1_db()
        db.configure_cache(CacheConfig())
        plan = db.selection_plan("Employee", gt("Dept_Id", 410))
        before = db.executor.execute(plan).materialize()
        # Changing Department data must invalidate, because the cached
        # predicate followed pointers into Department.
        db.sql("INSERT INTO Department VALUES ('Lab', 999)")
        db.sql("INSERT INTO Employee VALUES ('Nia', 77, 30, 999)")
        after = db.executor.execute(plan).materialize()
        assert len(after) == len(before) + 1


class TestStatementLayer:
    def test_aggregate_results_cached_and_refreshed(self):
        db = build_figure1_db()
        db.configure_cache(CacheConfig())
        text = "SELECT count(*) AS n FROM Employee WHERE Age > 25"
        assert db.sql(text).rows() == [(3,)]
        hits_before = db.cache_stats()["result"]["hits"]
        assert db.sql(text).rows() == [(3,)]
        assert db.cache_stats()["result"]["hits"] > hits_before
        db.sql("INSERT INTO Employee VALUES ('Zed', 99, 60, 459)")
        assert db.sql(text).rows() == [(4,)]

    def test_order_by_limit_cached(self):
        db = build_figure1_db()
        db.configure_cache(CacheConfig())
        text = "SELECT Name, Age FROM Employee ORDER BY Age DESC LIMIT 2"
        first = db.sql(text).materialize()
        assert first == [("Yaman", 54), ("Jane", 47)]
        assert db.sql(text).materialize() == first
