"""Plan-cache invalidation for cost-ordered join chains.

A cached cost-ordered plan embeds an ordering decision derived from the
statistics of *every* joined relation.  A DML on any of them must
invalidate the cached plan — served stale, it would execute an order
chosen for cardinalities that no longer hold.
"""

from __future__ import annotations

import random

from repro import MainMemoryDatabase
from repro.cache import CacheConfig
from repro.cache.fingerprint import dependency_versions, plan_relations
from repro.query.optimizer import JoinChainEdge, JoinChainQuery

SEED = 19860528

QUERY = (
    "SELECT * FROM Big JOIN Mid ON link = mk "
    "JOIN Small ON Mid.tail = sk WHERE flag = 1"
)


def build_db() -> MainMemoryDatabase:
    db = MainMemoryDatabase()
    db.configure_cache(CacheConfig())
    db.configure_optimizer(join_ordering="cost")
    db.sql("CREATE TABLE Small (sk INT, flag INT, PRIMARY KEY (sk))")
    db.sql("CREATE TABLE Mid (mk INT, tail INT, PRIMARY KEY (mk))")
    db.sql("CREATE TABLE Big (bk INT, link INT, PRIMARY KEY (bk))")
    rng = random.Random(SEED)
    for s in range(10):
        db.insert("Small", [s, s % 5])
    for m in range(50):
        db.insert("Mid", [m, rng.randrange(10)])
    for b in range(400):
        db.insert("Big", [b, rng.randrange(50)])
    return db


def written_rows(db):
    db.configure_optimizer(join_ordering="written")
    try:
        return sorted(db.sql(QUERY).materialize(resolve_refs=True))
    finally:
        db.configure_optimizer(join_ordering="cost")


class TestStaleOrderEviction:
    def test_dml_on_any_joined_relation_evicts_the_plan(self):
        for table, row in (
            ("Small", [990, 1]),
            ("Mid", [990, 3]),
            ("Big", [990, 17]),
        ):
            db = build_db()
            db.sql(QUERY)
            misses_before = db.cache_stats()["plan"]["misses"]
            db.insert(table, row)
            assert sorted(
                db.sql(QUERY).materialize(resolve_refs=True)
            ) == written_rows(db)
            # The second execution must have rebuilt the plan, not
            # served the one ordered for the pre-DML statistics.
            assert db.cache_stats()["plan"]["misses"] > misses_before

    def test_unrelated_dml_keeps_the_cached_entries(self):
        db = build_db()
        db.sql("CREATE TABLE Other (ok INT, PRIMARY KEY (ok))")
        db.sql(QUERY)
        stats_before = db.cache_stats()
        db.insert("Other", [1])
        db.sql(QUERY)
        stats_after = db.cache_stats()
        # Served straight from the result cache: no replanning, no
        # recomputation, for a DML outside the chain's dependency set.
        assert stats_after["result"]["hits"] > stats_before["result"]["hits"]
        assert stats_after["plan"]["misses"] == stats_before["plan"]["misses"]

    def test_growth_that_flips_the_best_order_is_replanned(self):
        db = build_db()
        before = db.sql("EXPLAIN " + QUERY)
        db.sql(QUERY)
        # Invert the size relationships the original order was chosen
        # for: Small becomes the largest unfiltered relation by far.
        rng = random.Random(SEED + 1)
        for s in range(10, 3000):
            db.insert("Small", [s, 2 + s % 7])  # flag never 1
        for b in range(400, 430):
            db.insert("Big", [b, rng.randrange(50)])
        after = db.sql("EXPLAIN " + QUERY)
        assert before != after
        assert sorted(
            db.sql(QUERY).materialize(resolve_refs=True)
        ) == written_rows(db)


class TestDependencyClosure:
    def test_chain_plan_depends_on_every_joined_relation(self):
        db = build_db()
        query = JoinChainQuery(
            ("Big", "Mid", "Small"),
            {"Big": None, "Mid": None, "Small": None},
            (
                JoinChainEdge("Big", "link", "Mid", "mk", "value", 0),
                JoinChainEdge("Mid", "tail", "Small", "sk", "value", 1),
            ),
        )
        plan = db.optimizer.plan_join_chain(query)
        assert plan is not None
        deps = plan_relations(plan)
        assert {"Big", "Mid", "Small"} <= deps
        versions = dependency_versions(db.catalog, plan)
        assert set(versions) >= {"Big", "Mid", "Small"}

    def test_extra_relations_attribute_folds_into_dependencies(self):
        # The hardening hook directly: a plan annotated with extra
        # relations is stale when any of them changes, even if no node
        # scans it.
        db = build_db()
        plan = db.selection_plan("Big", None)
        plan._repro_extra_relations = frozenset(("Small",))
        assert "Small" in plan_relations(plan)
        versions = dependency_versions(db.catalog, plan)
        assert "Small" in versions
