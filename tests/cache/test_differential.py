"""Differential safety: a mixed workload with caching on must produce
exactly the rows the uncached engine produces, mutation by mutation."""

from __future__ import annotations

import random

from repro.cache import CacheConfig
from tests.conftest import build_figure1_db


def _mixed_workload(db, rng: random.Random):
    """Interleaved reads and writes; returns every read's rows."""
    reads = [
        "SELECT Name FROM Employee WHERE Age > 25",
        "SELECT Name FROM Employee WHERE Age BETWEEN 20 AND 50",
        "SELECT Employee.Name, Department.Name FROM Employee "
        "JOIN Department ON Dept_Id = Id",
        "SELECT count(*) AS n FROM Employee",
        "SELECT DISTINCT Age FROM Employee ORDER BY Age",
        "SELECT Name FROM Employee WHERE Dept_Id = 459",
    ]
    observed = []
    next_id = 1000
    live_ids = []
    for step in range(120):
        roll = rng.random()
        if roll < 0.6:
            text = reads[rng.randrange(len(reads))]
            result = db.sql(text)
            rows = result.materialize() if hasattr(result, "materialize") else list(result)
            observed.append((text, rows))
        elif roll < 0.75:
            age = rng.randint(18, 65)
            db.sql(
                f"INSERT INTO Employee VALUES ('W{next_id}', {next_id}, "
                f"{age}, 459)"
            )
            live_ids.append(next_id)
            next_id += 1
        elif roll < 0.9 and live_ids:
            victim = live_ids[rng.randrange(len(live_ids))]
            db.sql(
                f"UPDATE Employee SET Age = {rng.randint(18, 65)} "
                f"WHERE Id = {victim}"
            )
        elif live_ids:
            victim = live_ids.pop(rng.randrange(len(live_ids)))
            db.sql(f"DELETE FROM Employee WHERE Id = {victim}")
    return observed


def test_cached_workload_identical_to_uncached():
    baseline = _mixed_workload(build_figure1_db(), random.Random(7))
    cached_db = build_figure1_db()
    cached_db.configure_cache(CacheConfig())
    cached = _mixed_workload(cached_db, random.Random(7))
    assert cached == baseline
    # sanity: caching actually engaged during the run
    assert cached_db.cache_stats()["result"]["hits"] > 0


def test_small_capacity_still_correct():
    baseline = _mixed_workload(build_figure1_db(), random.Random(13))
    tiny = build_figure1_db()
    tiny.configure_cache(
        CacheConfig(ast_capacity=2, plan_capacity=2, result_capacity=1)
    )
    assert _mixed_workload(tiny, random.Random(13)) == baseline
