"""Prepared statements: parsing, typed binding, and differential checks."""

from __future__ import annotations

import pytest

from repro.cache import CacheConfig
from repro.errors import QueryError
from repro.sql.parser import Parameter, parse_statement
from tests.conftest import build_figure1_db


class TestParsing:
    def test_placeholders_parse_positionally(self):
        stmt = parse_statement(
            "SELECT Name FROM Employee WHERE Age > ? AND Id = ?"
        )
        values = [cond.value for cond in stmt.conditions]
        assert values == [Parameter(0), Parameter(1)]

    def test_placeholders_in_between_insert_update(self):
        between = parse_statement(
            "SELECT * FROM Employee WHERE Age BETWEEN ? AND ?"
        )
        assert between.conditions[0].value == Parameter(0)
        assert between.conditions[0].high == Parameter(1)
        insert = parse_statement("INSERT INTO Department VALUES (?, ?)")
        assert insert.rows[0] == (Parameter(0), Parameter(1))
        update = parse_statement("UPDATE Employee SET Age = ? WHERE Id = ?")
        assert update.assignments[0] == ("Age", Parameter(0))

    def test_raw_sql_with_placeholder_is_an_error(self):
        db = build_figure1_db()
        with pytest.raises(QueryError, match="prepare"):
            db.sql("SELECT Name FROM Employee WHERE Id = ?")


class TestBinding:
    def test_type_inference_and_validation(self):
        db = build_figure1_db()
        stmt = db.prepare("SELECT Name FROM Employee WHERE Id = ?")
        assert stmt.parameter_count == 1
        with pytest.raises(QueryError, match="parameter 1"):
            stmt.execute("not-an-int")

    def test_wrong_arity_rejected(self):
        db = build_figure1_db()
        stmt = db.prepare("SELECT Name FROM Employee WHERE Id = ?")
        with pytest.raises(QueryError, match="parameter"):
            stmt.execute()
        with pytest.raises(QueryError, match="parameter"):
            stmt.execute(1, 2)

    def test_null_binding_allowed(self):
        db = build_figure1_db()
        stmt = db.prepare("SELECT Name FROM Employee WHERE Age = ?")
        assert stmt.execute(None).materialize() == []

    def test_qualified_column_type_inference(self):
        db = build_figure1_db()
        stmt = db.prepare(
            "SELECT Employee.Name FROM Employee "
            "JOIN Department ON Dept_Id = Id WHERE Department.Name = ?"
        )
        with pytest.raises(QueryError, match="parameter 1"):
            stmt.execute(42)
        names = sorted(stmt.execute("Toy").materialize())
        assert names == [("Dave",), ("Suzan",)]

    def test_fk_column_binds_logical_value(self):
        db = build_figure1_db()
        stmt = db.prepare("SELECT Name FROM Employee WHERE Dept_Id = ?")
        assert sorted(stmt.execute(411).materialize()) == [
            ("Jane",), ("Yaman",),
        ]


class TestDifferential:
    """Prepared executions must match the literal-SQL uncached path."""

    CASES = [
        ("SELECT Name FROM Employee WHERE Id = ?", (23,),
         "SELECT Name FROM Employee WHERE Id = 23"),
        ("SELECT Name FROM Employee WHERE Age BETWEEN ? AND ?", (25, 50),
         "SELECT Name FROM Employee WHERE Age BETWEEN 25 AND 50"),
        ("SELECT Name FROM Employee WHERE Age > ? ORDER BY Name", (30,),
         "SELECT Name FROM Employee WHERE Age > 30 ORDER BY Name"),
    ]

    @pytest.mark.parametrize("prepared_text,args,literal_text", CASES)
    def test_matches_uncached_literal(self, prepared_text, args, literal_text):
        plain = build_figure1_db()
        expected = plain.sql(literal_text).materialize()

        cached = build_figure1_db()
        cached.configure_cache(CacheConfig())
        stmt = cached.prepare(prepared_text)
        # twice: once cold, once through the caches
        assert stmt.execute(*args).materialize() == expected
        assert stmt.execute(*args).materialize() == expected

    def test_distinct_bindings_distinct_results(self):
        db = build_figure1_db()
        db.configure_cache(CacheConfig())
        stmt = db.prepare("SELECT Name FROM Employee WHERE Id = ?")
        assert stmt.execute(23).materialize() == [("Dave",)]
        assert stmt.execute(44).materialize() == [("Yaman",)]
        assert stmt.execute(23).materialize() == [("Dave",)]

    def test_prepared_insert_and_update(self):
        db = build_figure1_db()
        insert = db.prepare("INSERT INTO Employee VALUES (?, ?, ?, ?)")
        insert.execute("Zed", 99, 33, 459)
        assert db.sql(
            "SELECT Name FROM Employee WHERE Id = 99"
        ).materialize() == [("Zed",)]
        update = db.prepare("UPDATE Employee SET Age = ? WHERE Id = ?")
        assert update.execute(34, 99) == 1
        row = db.sql("SELECT Age FROM Employee WHERE Id = 99").materialize()
        assert row == [(34,)]
