"""Version-based invalidation: mutations, DDL, and transaction aborts."""

from __future__ import annotations

from repro.cache import CacheConfig
from repro.query.predicates import eq, gt
from tests.conftest import build_figure1_db


def cached_db():
    db = build_figure1_db()
    db.configure_cache(CacheConfig())
    return db


class TestVersionCounters:
    def test_insert_update_delete_bump_versions(self):
        db = build_figure1_db()
        emp = db.relation("Employee")
        v0 = emp.version
        ref = db.insert("Employee", ["Zed", 99, 33, 459])
        v1 = emp.version
        assert v1 > v0
        db.update("Employee", ref, "Age", 34)
        v2 = emp.version
        assert v2 > v1
        db.delete("Employee", ref)
        assert emp.version > v2

    def test_index_ddl_bumps_version(self):
        db = build_figure1_db()
        emp = db.relation("Employee")
        before = db.relation("Employee").version
        db.create_index("Employee", "emp_age", "Age")
        after_create = emp.version
        assert after_create > before
        emp.drop_index("emp_age")
        assert emp.version > after_create

    def test_versions_globally_monotonic_across_drop_create(self):
        db = cached_db()
        db.sql("CREATE TABLE Scratch (K INT, PRIMARY KEY (K))")
        first = db.relation("Scratch").version
        db.sql("DROP TABLE Scratch")
        db.sql("CREATE TABLE Scratch (K INT, PRIMARY KEY (K))")
        # A re-created relation must never reuse an old version number,
        # or a cached entry keyed on (name, version) could go stale
        # silently.
        assert db.relation("Scratch").version > first


class TestResultInvalidation:
    def test_update_invalidates_cached_select(self):
        db = cached_db()
        text = "SELECT Name FROM Employee WHERE Age > 40"
        before = db.sql(text).materialize()
        assert ("Cindy",) not in before
        db.sql("UPDATE Employee SET Age = 41 WHERE Name = 'Cindy'")
        after = db.sql(text).materialize()
        assert ("Cindy",) in after

    def test_delete_invalidates_cached_select(self):
        db = cached_db()
        text = "SELECT Name FROM Employee WHERE Age > 40"
        assert ("Yaman",) in db.sql(text).materialize()
        db.sql("DELETE FROM Employee WHERE Name = 'Yaman'")
        assert ("Yaman",) not in db.sql(text).materialize()

    def test_insert_into_fk_target_invalidates_join(self):
        db = cached_db()
        text = (
            "SELECT Employee.Name, Department.Name FROM Employee "
            "JOIN Department ON Dept_Id = Id"
        )
        first = db.sql(text).materialize()
        # Renaming a department must be visible through the cached join
        # even though only the *inner* (FK target) relation changed.
        db.sql("UPDATE Department SET Name = 'Games' WHERE Id = 459")
        second = db.sql(text).materialize()
        assert first != second
        assert any(dept == "Games" for __, dept in second)

    def test_index_ddl_invalidates_cached_plan(self):
        db = cached_db()
        text = "SELECT Name FROM Employee WHERE Age > 40"
        db.sql(text)
        invalidations_before = db.cache_stats()["plan"]["invalidations"]
        db.sql("CREATE INDEX emp_age ON Employee (Age)")
        db.sql(text)  # must re-plan: a better access path now exists
        stats = db.cache_stats()
        assert stats["plan"]["invalidations"] > invalidations_before
        explained = db.sql("EXPLAIN " + text)
        assert "Range" in explained or "range" in explained

    def test_drop_table_invalidates(self):
        db = cached_db()
        db.sql("CREATE TABLE Scratch (K INT, V INT, PRIMARY KEY (K))")
        db.sql("INSERT INTO Scratch VALUES (1, 10)")
        assert db.sql("SELECT V FROM Scratch WHERE K = 1").materialize() == [(10,)]
        db.sql("DROP TABLE Scratch")
        db.sql("CREATE TABLE Scratch (K INT, V INT, PRIMARY KEY (K))")
        db.sql("INSERT INTO Scratch VALUES (1, 77)")
        assert db.sql("SELECT V FROM Scratch WHERE K = 1").materialize() == [(77,)]

    def test_fk_rewrite_never_matches_refreshes(self):
        db = cached_db()
        # No department 999 yet: the FK equality rewrites to match-nothing.
        text = "SELECT Name FROM Employee WHERE Dept_Id = 999"
        assert db.sql(text).materialize() == []
        db.sql("INSERT INTO Department VALUES ('Lab', 999)")
        db.sql("INSERT INTO Employee VALUES ('Nia', 77, 30, 999)")
        assert db.sql(text).materialize() == [("Nia",)]


class TestTransactions:
    def test_aborted_transaction_leaves_cache_correct(self):
        db = cached_db()
        text_pred = gt("Age", 40)
        baseline = db.sql("SELECT Name FROM Employee WHERE Age > 40").materialize()
        txn = db.begin()
        ref = db.select("Employee", eq("Name", "Cindy")).rows()[0][0]
        db.update("Employee", ref, "Age", 80, txn=txn)
        txn.abort()
        # Updates are deferred to commit, so the abort changed nothing;
        # the cached result must still be the truth.
        assert (
            db.sql("SELECT Name FROM Employee WHERE Age > 40").materialize()
            == baseline
        )
        assert {row[1] for row in db.select("Employee", text_pred).materialize()} == {
            row[1] for row in db.select("Employee", text_pred).materialize()
        }

    def test_committed_transaction_invalidates(self):
        db = cached_db()
        text = "SELECT Name FROM Employee WHERE Age > 40"
        before = db.sql(text).materialize()
        assert ("Cindy",) not in before
        txn = db.begin()
        ref = db.select("Employee", eq("Name", "Cindy")).rows()[0][0]
        db.update("Employee", ref, "Age", 80, txn=txn)
        txn.commit()
        assert ("Cindy",) in db.sql(text).materialize()
