"""Tests for multi-attribute indexes (paper Section 2.2).

"Since a single tuple pointer provides access to any field in the tuple,
multi-attribute indices will need less in the way of special mechanisms."
"""

import pytest

from repro import DuplicateKeyError, Field, FieldType, MainMemoryDatabase
from repro.query.select import select_tree_range


@pytest.fixture
def db():
    database = MainMemoryDatabase()
    database.create_relation(
        "Person",
        [
            Field("Id", FieldType.INT),
            Field("Last", FieldType.STR),
            Field("First", FieldType.STR),
            Field("Age", FieldType.INT),
        ],
        primary_key="Id",
    )
    people = [
        (1, "Smith", "Alice", 30),
        (2, "Smith", "Bob", 25),
        (3, "Jones", "Alice", 40),
        (4, "Jones", "Carol", 35),
        (5, "Adams", "Dave", 50),
    ]
    for row in people:
        database.insert("Person", list(row))
    return database


class TestCreation:
    def test_composite_keys_are_field_tuples(self, db):
        index = db.create_index(
            "Person", "name_idx", ["Last", "First"], kind="ttree"
        )
        assert index.field_name == ("Last", "First")
        assert index.search(("Smith", "Bob")) is not None
        assert index.search(("Smith", "Zed")) is None

    def test_backfills_existing_tuples(self, db):
        index = db.create_index("Person", "la", ["Last", "Age"])
        assert len(index) == 5

    def test_unique_composite(self, db):
        db.create_index(
            "Person", "name_u", ["Last", "First"], kind="ttree", unique=True
        )
        with pytest.raises(DuplicateKeyError):
            db.insert("Person", [6, "Smith", "Bob", 99])
        # Different first name is fine.
        db.insert("Person", [7, "Smith", "Carol", 99])

    def test_hash_composite(self, db):
        index = db.create_index(
            "Person", "name_h", ["Last", "First"], kind="chained_hash"
        )
        ref = index.search(("Jones", "Carol"))
        assert db.fetch("Person", ref)["Id"] == 4


class TestOrderedComposite:
    def test_lexicographic_scan_order(self, db):
        index = db.create_index(
            "Person", "name_idx", ["Last", "First"], kind="ttree"
        )
        keys = [index.key_of(ref) for ref in index.scan()]
        assert keys == sorted(keys)
        assert keys[0][0] == "Adams"

    def test_prefix_range_scan(self, db):
        # All Smiths: range over ("Smith", "") .. ("Smith", "￿").
        index = db.create_index(
            "Person", "name_idx", ["Last", "First"], kind="ttree"
        )
        refs = select_tree_range(
            index, ("Smith", ""), ("Smith", "￿")
        )
        ids = sorted(db.fetch("Person", r)["Id"] for r in refs)
        assert ids == [1, 2]


class TestMaintenance:
    def test_update_of_component_field_maintains_index(self, db):
        index = db.create_index(
            "Person", "name_idx", ["Last", "First"], kind="ttree"
        )
        ref = db.relation("Person").index("Person_pk").search(2)
        db.update("Person", ref, "First", "Bert")
        assert index.search(("Smith", "Bob")) is None
        assert index.search(("Smith", "Bert")) is not None

    def test_update_of_unrelated_field_leaves_index_alone(self, db):
        index = db.create_index(
            "Person", "name_idx", ["Last", "First"], kind="ttree"
        )
        ref = db.relation("Person").index("Person_pk").search(2)
        db.update("Person", ref, "Age", 26)
        assert index.search(("Smith", "Bob")) is not None

    def test_delete_maintains_index(self, db):
        index = db.create_index(
            "Person", "name_idx", ["Last", "First"], kind="ttree"
        )
        ref = db.relation("Person").index("Person_pk").search(3)
        db.delete("Person", ref)
        assert index.search(("Jones", "Alice")) is None

    def test_rebuild_after_recovery(self):
        database = MainMemoryDatabase(durable=True)
        database.create_relation(
            "T",
            [Field("a", FieldType.INT), Field("b", FieldType.INT)],
            primary_key="a",
        )
        database.create_index("T", "ab", ["a", "b"], kind="ttree")
        for i in range(10):
            database.insert("T", [i, i * 2])
        database.checkpoint()
        database.crash()
        database.recover()
        index = database.relation("T").index("ab")
        assert index.search((3, 6)) is not None
        assert len(index) == 10
