"""The fault injector core: policies, seeded replay, spec parsing."""

import pytest

from repro import MainMemoryDatabase
from repro.errors import ConfigError, InjectedFaultError
from repro.fault import (
    FAULT_POINTS,
    FaultConfig,
    FaultInjector,
    FaultPolicy,
    parse_fault_spec,
)
from repro.fault import runtime as fault_runtime


class TestPolicyValidation:
    def test_unknown_point_rejected(self):
        with pytest.raises(ConfigError):
            FaultPolicy("disk.format")

    def test_unsupported_action_rejected(self):
        # log.append supports error/corrupt, never torn.
        with pytest.raises(ConfigError):
            FaultPolicy("log.append", action="torn")

    def test_probability_bounds(self):
        with pytest.raises(ConfigError):
            FaultPolicy("disk.read", probability=1.5)
        with pytest.raises(ConfigError):
            FaultPolicy("disk.read", probability=-0.1)

    def test_negative_every_nth_rejected(self):
        with pytest.raises(ConfigError):
            FaultPolicy("disk.read", every_nth=-1)

    def test_bad_max_fires_rejected(self):
        with pytest.raises(ConfigError):
            FaultPolicy("disk.read", max_fires=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            FaultPolicy("disk.read", action="latency", latency=-1.0)

    def test_every_point_declares_actions(self):
        for point, actions in FAULT_POINTS.items():
            assert actions, point
            for action in actions:
                FaultPolicy(point, action=action)  # must all validate


class TestFiring:
    def test_error_action_raises_typed(self):
        injector = FaultInjector(policies=[FaultPolicy("disk.read")])
        with pytest.raises(InjectedFaultError) as err:
            injector.fire("disk.read")
        assert err.value.point == "disk.read"
        assert err.value.action == "error"

    def test_site_actions_are_returned(self):
        injector = FaultInjector(
            policies=[FaultPolicy("disk.write", action="torn")]
        )
        assert injector.fire("disk.write") == "torn"

    def test_latency_returns_marker(self):
        injector = FaultInjector(
            policies=[FaultPolicy("disk.read", action="latency", latency=0.0)]
        )
        assert injector.fire("disk.read") == "latency"

    def test_one_shot_fires_once(self):
        injector = FaultInjector(
            policies=[FaultPolicy("disk.write", action="corrupt",
                                  one_shot=True)]
        )
        assert injector.fire("disk.write") == "corrupt"
        assert injector.fire("disk.write") is None
        assert injector.fires["disk.write"] == 1

    def test_every_nth_pattern(self):
        injector = FaultInjector(
            policies=[FaultPolicy("disk.write", action="corrupt",
                                  every_nth=3)]
        )
        fired = [
            injector.fire("disk.write") == "corrupt" for _ in range(7)
        ]
        assert fired == [True, False, False, True, False, False, True]

    def test_max_fires_budget(self):
        injector = FaultInjector(
            policies=[FaultPolicy("disk.write", action="corrupt",
                                  max_fires=2)]
        )
        actions = [injector.fire("disk.write") for _ in range(4)]
        assert actions == ["corrupt", "corrupt", None, None]

    def test_match_filter(self):
        injector = FaultInjector(
            policies=[
                FaultPolicy(
                    "disk.read",
                    action="corrupt",
                    match={"relation": "Employee"},
                )
            ]
        )
        assert injector.fire("disk.read", relation="Department") is None
        assert injector.fire("disk.read", relation="Employee") == "corrupt"

    def test_hits_counted_without_policies(self):
        injector = FaultInjector()
        assert injector.fire("disk.read") is None
        assert injector.fire("disk.read") is None
        assert injector.hits["disk.read"] == 2
        assert injector.fires == {}

    def test_events_record_context(self):
        injector = FaultInjector(
            policies=[FaultPolicy("disk.write", action="corrupt")]
        )
        injector.fire("disk.write", relation="R", partition=3)
        (event,) = injector.events
        assert event.point == "disk.write"
        assert event.action == "corrupt"
        assert event.context == {"relation": "R", "partition": 3}

    def test_earlier_policy_wins_shared_point(self):
        injector = FaultInjector(
            policies=[
                FaultPolicy("disk.write", action="torn", one_shot=True),
                FaultPolicy("disk.write", action="corrupt"),
            ]
        )
        assert injector.fire("disk.write") == "torn"
        assert injector.fire("disk.write") == "corrupt"


class TestSeededReplay:
    def _sequence(self, injector, n=60):
        return [
            injector.fire("disk.write") == "corrupt" for _ in range(n)
        ]

    def test_reset_replays_exactly(self):
        injector = FaultInjector(
            seed=123,
            policies=[FaultPolicy("disk.write", action="corrupt",
                                  probability=0.5)],
        )
        first = self._sequence(injector)
        assert any(first) and not all(first)  # genuinely probabilistic
        injector.reset()
        assert self._sequence(injector) == first
        assert injector.hits["disk.write"] == 60

    def test_same_seed_same_sequence(self):
        make = lambda: FaultInjector(
            seed=7,
            policies=[FaultPolicy("disk.write", action="corrupt",
                                  probability=0.3)],
        )
        assert self._sequence(make()) == self._sequence(make())

    def test_different_seed_different_sequence(self):
        seq = {}
        for seed in (1, 2):
            injector = FaultInjector(
                seed=seed,
                policies=[FaultPolicy("disk.write", action="corrupt",
                                      probability=0.5)],
            )
            seq[seed] = tuple(self._sequence(injector, 100))
        assert seq[1] != seq[2]

    def test_full_probability_draws_no_randomness(self):
        # probability=1.0 policies must not consume RNG, so mixing them
        # in does not perturb the seeded sequence of the others.
        plain = FaultInjector(
            seed=5,
            policies=[FaultPolicy("disk.write", action="corrupt",
                                  probability=0.5)],
        )
        mixed = FaultInjector(
            seed=5,
            policies=[
                FaultPolicy("disk.read", action="corrupt"),
                FaultPolicy("disk.write", action="corrupt",
                            probability=0.5),
            ],
        )
        expected = self._sequence(plain)
        got = []
        for _ in range(60):
            mixed.fire("disk.read")  # deterministic, no draw
            got.append(mixed.fire("disk.write") == "corrupt")
        assert got == expected

    def test_report_shape(self):
        injector = FaultInjector(
            seed=9, policies=[FaultPolicy("disk.write", action="corrupt")]
        )
        injector.fire("disk.write")
        report = injector.report()
        assert report["seed"] == 9
        assert report["fires"] == {"disk.write": 1}
        assert report["events"][0]["point"] == "disk.write"


class TestSpecParsing:
    def test_full_spec(self):
        config = parse_fault_spec(
            "seed=42;pool.worker:action=error,prob=0.2,max=3;"
            "disk.read:action=corrupt,every=5"
        )
        assert config.seed == 42
        assert config.enabled
        worker, read = config.policies
        assert worker.point == "pool.worker"
        assert worker.probability == 0.2
        assert worker.max_fires == 3
        assert read.every_nth == 5

    def test_bare_point_defaults_to_error(self):
        (policy,) = parse_fault_spec("log.flush").policies
        assert policy.action == "error"
        assert policy.probability == 1.0

    def test_once_flag(self):
        (policy,) = parse_fault_spec("disk.read:once=1").policies
        assert policy.one_shot
        (policy,) = parse_fault_spec("disk.read:once=0").policies
        assert not policy.one_shot

    def test_empty_spec_is_disabled(self):
        config = parse_fault_spec("")
        assert not config.enabled
        assert config == FaultConfig()

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError):
            parse_fault_spec("disk.read:colour=red")

    def test_bad_value_rejected(self):
        with pytest.raises(ConfigError):
            parse_fault_spec("disk.read:prob=lots")

    def test_bad_seed_rejected(self):
        with pytest.raises(ConfigError):
            parse_fault_spec("seed=banana")

    def test_unknown_point_rejected(self):
        with pytest.raises(ConfigError):
            parse_fault_spec("disk.fry:action=error")


class TestRuntimeSlot:
    def test_inactive_by_default(self):
        assert fault_runtime.active() is None
        # The hook contract: with no injector, fire is a cheap no-op.
        assert fault_runtime.fire("disk.read", relation="R") is None

    def test_activate_deactivate(self):
        injector = FaultInjector()
        previous = fault_runtime.activate(injector)
        try:
            assert previous is None
            assert fault_runtime.active() is injector
        finally:
            fault_runtime.deactivate()
        assert fault_runtime.active() is None


class TestConfigureFaults:
    def test_returns_and_activates_injector(self):
        db = MainMemoryDatabase()
        injector = db.configure_faults(
            seed=3, policies=[FaultPolicy("disk.read", action="corrupt")]
        )
        assert injector is db.fault_injector
        assert fault_runtime.active() is injector
        assert injector.seed == 3

    def test_disable_restores_noop(self):
        db = MainMemoryDatabase()
        db.configure_faults(policies=[FaultPolicy("disk.read")])
        assert fault_runtime.active() is not None
        assert db.configure_faults() is None
        assert fault_runtime.active() is None
        assert db.fault_injector is None

    def test_spec_keyword(self):
        db = MainMemoryDatabase()
        injector = db.configure_faults(spec="seed=9;disk.read:action=corrupt")
        assert injector.seed == 9

    def test_config_and_kwargs_exclusive(self):
        db = MainMemoryDatabase()
        with pytest.raises(ConfigError):
            db.configure_faults(FaultConfig(), seed=1)
        with pytest.raises(ConfigError):
            db.configure_faults(spec="disk.read", seed=1)

    def test_env_hook(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULTS", "seed=11;disk.read:action=corrupt,once=1"
        )
        db = MainMemoryDatabase()
        assert db.fault_injector is not None
        assert db.fault_injector.seed == 11
        assert fault_runtime.active() is db.fault_injector
        db.configure_faults()

    def test_disabling_leaves_other_dbs_injector(self):
        # A db that never installed the active injector must not tear
        # down another's when it disables its own (absent) faults.
        owner = MainMemoryDatabase()
        other = MainMemoryDatabase()
        injector = owner.configure_faults(
            policies=[FaultPolicy("disk.read", action="corrupt")]
        )
        other.configure_faults()
        assert fault_runtime.active() is injector
        owner.configure_faults()
        assert fault_runtime.active() is None
