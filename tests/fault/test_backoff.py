"""The shared retry schedule: deterministic exponential backoff.

Every bounded-retry loop (restart's transient reads, the morsel
scheduler's re-dispatch, the replication shipper's hops) draws its
waits from one :class:`BackoffPolicy`.  The schedule is a pure function
of ``(policy, attempt)`` — jitter comes from a CRC over the policy seed
and attempt number, never a shared RNG stream — so chaos replays sleep
the exact same schedule regardless of how retries interleave, and the
default ``base=0.0`` policy never sleeps at all.
"""

import pytest

from repro.errors import ConfigError
from repro.fault import NO_BACKOFF, BackoffPolicy, parse_fault_spec
from repro.fault import runtime as fault_runtime
from repro.obs import runtime as obs_runtime
from tests.conftest import build_figure1_db


@pytest.fixture(autouse=True)
def clean_runtime():
    yield
    fault_runtime.deactivate()
    obs_runtime.deactivate()


class TestSchedule:
    def test_exponential_growth_clamped_at_max(self):
        policy = BackoffPolicy(base=0.001, factor=2.0, max_delay=0.004)
        assert policy.delays(5) == [0.001, 0.002, 0.004, 0.004, 0.004]

    def test_default_policy_never_sleeps(self):
        assert NO_BACKOFF.delay(0) == 0.0
        assert NO_BACKOFF.delay(50) == 0.0
        assert NO_BACKOFF.sleep(3) == 0.0

    def test_schedule_is_deterministic_across_instances(self):
        first = BackoffPolicy(
            base=0.001, factor=3.0, max_delay=0.1, jitter=0.5, seed=77
        )
        second = BackoffPolicy(
            base=0.001, factor=3.0, max_delay=0.1, jitter=0.5, seed=77
        )
        assert first.delays(8) == second.delays(8)

    def test_jitter_stays_within_the_configured_fraction(self):
        policy = BackoffPolicy(
            base=0.001, factor=2.0, max_delay=0.01, jitter=0.25, seed=5
        )
        plain = BackoffPolicy(base=0.001, factor=2.0, max_delay=0.01)
        for attempt in range(10):
            raw = plain.delay(attempt)
            jittered = policy.delay(attempt)
            assert raw * 0.75 <= jittered <= raw * 1.25

    def test_different_seeds_shift_the_jitter(self):
        kwargs = dict(base=0.001, factor=2.0, max_delay=1.0, jitter=0.5)
        a = BackoffPolicy(seed=1, **kwargs).delays(12)
        b = BackoffPolicy(seed=2, **kwargs).delays(12)
        assert a != b

    def test_sleep_returns_the_waited_delay(self):
        policy = BackoffPolicy(base=0.0005, factor=1.0)
        assert policy.sleep(0) == pytest.approx(0.0005)


class TestValidation:
    def test_negative_base_rejected(self):
        with pytest.raises(ConfigError):
            BackoffPolicy(base=-0.1)

    def test_factor_below_one_rejected(self):
        with pytest.raises(ConfigError):
            BackoffPolicy(base=0.001, factor=0.5)

    def test_jitter_outside_unit_interval_rejected(self):
        with pytest.raises(ConfigError):
            BackoffPolicy(base=0.001, jitter=1.5)


class TestSpecParsing:
    def test_backoff_clause_builds_the_policy(self):
        config = parse_fault_spec(
            "seed=9;backoff:base=0.001,factor=3,max=0.5,jitter=0.25"
        )
        assert config.backoff == BackoffPolicy(
            base=0.001, factor=3.0, max_delay=0.5, jitter=0.25, seed=9
        )

    def test_backoff_seed_defaults_to_injector_seed(self):
        config = parse_fault_spec("seed=123;backoff:base=0.01")
        assert config.backoff.seed == 123

    def test_explicit_backoff_seed_wins(self):
        config = parse_fault_spec("seed=123;backoff:base=0.01,seed=7")
        assert config.backoff.seed == 7

    def test_unknown_backoff_key_rejected(self):
        with pytest.raises(ConfigError):
            parse_fault_spec("backoff:warp=9")


class TestWiring:
    def test_configure_faults_feeds_recovery_backoff(self):
        db = build_figure1_db(durable=True)
        policy = BackoffPolicy(base=0.0001, factor=2.0, max_delay=0.001)
        db.configure_faults(seed=1, backoff=policy)
        assert db.recovery.backoff == policy
        # Resetting faults restores the no-sleep default.
        db.configure_faults()
        assert db.recovery.backoff == NO_BACKOFF

    def test_execution_config_accepts_a_retry_backoff(self):
        db = build_figure1_db(durable=False)
        policy = BackoffPolicy(base=0.0001)
        db.configure_execution(
            engine="batch", workers=2, pool="inline", retry_backoff=policy
        )
        try:
            assert db.executor.scheduler.retry_backoff == policy
        finally:
            db.configure_execution()

    def test_execution_config_rejects_non_policy(self):
        db = build_figure1_db(durable=False)
        with pytest.raises(ConfigError):
            db.configure_execution(engine="batch", retry_backoff="fast")
