"""Seeded end-to-end chaos: faults change nothing but the event log.

One pass runs a 60/20/20 query mix (selections/joins/projections) on a
durable database after a checkpoint-crash-recover cycle with no faults;
a second pass runs the identical workload on an identically-built
database under a fixed-seed fault plan that kills a worker, injects
transient worker errors, and corrupts every third disk read.  The
self-healing layers must absorb every injected fault: both passes yield
identical query results and identical Section 3.1 counter totals.

``REPRO_CHAOS_SEED`` selects the fault seed (the CI chaos lane sweeps
several); the data and plan mix are pinned separately so both passes
always see the same workload.
"""

import os
import random

import pytest

from repro import Field, FieldType, MainMemoryDatabase
from repro.fault import FaultPolicy
from repro.fault import runtime as fault_runtime
from repro.instrument import counters_scope
from repro.obs import runtime as obs_runtime
from repro.query.parallel import fork_available
from repro.query.plan import FilterNode, JoinNode, ProjectNode, ScanNode
from repro.query.predicates import between, ge, gt, le, lt
from repro.query.vectorized import DEREF_SAVED_COUNTER

#: Seed for the fault plan only — CI sweeps this via the chaos lane.
SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1012"))
#: Seed for data and plans, pinned so every pass runs the same workload.
DATA_SEED = 990131

N_R = 1000
N_S = 200
VALUE_SPACE = 50
MORSEL = 128
POOL = "process" if fork_available() else "inline"


def _build_db() -> MainMemoryDatabase:
    rng = random.Random(DATA_SEED)
    db = MainMemoryDatabase(durable=True)
    db.create_relation(
        "R",
        [
            Field("Id", FieldType.INT),
            Field("A", FieldType.INT),
            Field("B", FieldType.INT),
        ],
        primary_key="Id",
    )
    db.create_relation(
        "S",
        [Field("Id", FieldType.INT), Field("A", FieldType.INT)],
        primary_key="Id",
    )
    for i in range(N_R):
        db.insert(
            "R", [i, rng.randrange(VALUE_SPACE), rng.randrange(1_000)]
        )
    for i in range(N_S):
        db.insert("S", [i, rng.randrange(VALUE_SPACE)])
    return db


def _plan_mix():
    """60/20/20 selections/joins/projections, ten plans."""
    rng = random.Random(DATA_SEED + 1)
    plans = []
    for i in range(6):
        low = rng.randrange(VALUE_SPACE // 2)
        high = low + rng.randrange(5, VALUE_SPACE // 2)
        if i % 2:
            plans.append(ScanNode("R", gt("A", low) & lt("A", high)))
        else:
            plans.append(
                FilterNode(
                    ScanNode("R"),
                    between("A", low, high) | ge("B", 900) | le("B", 50),
                )
            )
    for __ in range(2):
        low = rng.randrange(VALUE_SPACE // 2)
        plans.append(
            JoinNode(
                ScanNode("R", gt("A", low)), ScanNode("S"), "A", "A", "hash"
            )
        )
    plans.extend(
        [
            ProjectNode(
                ScanNode("R"), ("A",), deduplicate=True, dedup_method="hash"
            ),
            ProjectNode(
                ScanNode("R"),
                ("A", "B"),
                deduplicate=True,
                dedup_method="hash",
            ),
        ]
    )
    return plans


def _chaos_policies():
    return [
        FaultPolicy("pool.worker", action="kill", one_shot=True),
        FaultPolicy("pool.worker", action="error", probability=0.05),
        FaultPolicy("disk.read", action="corrupt", every_nth=3),
    ]


def _run_pass(chaos: bool):
    db = _build_db()
    db.checkpoint()
    # Post-checkpoint commits exercise log merge during restart.
    rng = random.Random(DATA_SEED + 2)
    for i in range(20):
        db.insert(
            "R",
            [N_R + i, rng.randrange(VALUE_SPACE), rng.randrange(1_000)],
        )
    db.crash()
    injector = None
    if chaos:
        injector = db.configure_faults(seed=SEED, policies=_chaos_policies())
    try:
        db.recover()
        db.configure_execution(
            engine="batch",
            workers=2,
            morsel_size=MORSEL,
            pool=POOL,
            retry_attempts=3,
        )
        results = []
        with counters_scope() as counters:
            for plan in _plan_mix():
                results.append(db.executor.execute(plan).rows())
        counts = counters.snapshot().as_dict()
        counts.pop(DEREF_SAVED_COUNTER, None)
        report = injector.report() if injector is not None else None
    finally:
        db.configure_execution()
        db.configure_faults()
    return results, counts, report


@pytest.fixture(autouse=True)
def clean_runtime():
    yield
    fault_runtime.deactivate()
    obs_runtime.deactivate()


def test_chaos_run_is_indistinguishable_in_results():
    baseline_results, baseline_counts, __ = _run_pass(chaos=False)
    chaos_results, chaos_counts, report = _run_pass(chaos=True)
    # The fault plan genuinely did something...
    assert report is not None
    assert sum(report["fires"].values()) > 0
    # ...the recovery layer definitely saw the corrupt-read fault...
    assert report["fires"].get("disk.read", 0) > 0
    # ...and none of it is visible in results or operation totals.
    assert chaos_results == baseline_results
    assert chaos_counts == baseline_counts


def test_chaos_replay_is_deterministic():
    first_results, first_counts, first_report = _run_pass(chaos=True)
    second_results, second_counts, second_report = _run_pass(chaos=True)
    assert first_results == second_results
    assert first_counts == second_counts
    # Same seed, same fault plan: the fire totals replay exactly.
    assert first_report["fires"] == second_report["fires"]
