"""Checksummed durability: framing, typed corruption, partial recovery."""

import pytest

from repro.errors import (
    CorruptImageError,
    CorruptLogRecordError,
    TornWriteError,
)
from repro.fault import FaultPolicy
from repro.obs import ObservabilityConfig
from repro.recovery.framing import HEADER_SIZE, MAGIC, frame, unframe
from repro.recovery.log import LogRecord, record_checksum, verify_record
from tests.conftest import EMPLOYEES


class TestFraming:
    def test_roundtrip(self):
        payload = b"the partition image"
        assert unframe(frame(payload)) == payload

    def test_empty_payload_roundtrip(self):
        assert unframe(frame(b"")) == b""

    def test_frame_layout(self):
        framed = frame(b"xyz")
        assert framed[:4] == MAGIC
        assert len(framed) == HEADER_SIZE + 3

    def test_truncated_frame_is_torn(self):
        framed = frame(b"a partition image, torn mid-write")
        with pytest.raises(TornWriteError):
            unframe(framed[: len(framed) - 5])

    def test_truncated_header_is_torn(self):
        with pytest.raises(TornWriteError):
            unframe(frame(b"abc")[: HEADER_SIZE - 1])

    def test_flipped_payload_byte_is_corrupt(self):
        framed = bytearray(frame(b"a partition image"))
        framed[-1] ^= 0xFF
        with pytest.raises(CorruptImageError) as err:
            unframe(bytes(framed), "Employee[0]")
        assert "Employee[0]" in str(err.value)

    def test_bad_magic_is_corrupt(self):
        framed = bytearray(frame(b"image"))
        framed[0] ^= 0xFF
        with pytest.raises(CorruptImageError):
            unframe(bytes(framed))

    def test_torn_is_a_corrupt_image(self):
        # Callers that only care about "damaged" can catch the base.
        assert issubclass(TornWriteError, CorruptImageError)


class TestPersistentDamage:
    def _checkpointed(self, durable_db):
        durable_db.checkpoint()
        return durable_db.recovery.disk

    def test_corrupt_image_detected_at_read(self, durable_db):
        disk = self._checkpointed(durable_db)
        disk.damage_partition("Employee", 0, mode="corrupt")
        with pytest.raises(CorruptImageError):
            disk.read_partition("Employee", 0)

    def test_torn_image_detected_at_read(self, durable_db):
        disk = self._checkpointed(durable_db)
        disk.damage_partition("Employee", 0, mode="torn")
        with pytest.raises(TornWriteError):
            disk.read_partition("Employee", 0)

    def test_default_restart_is_all_or_nothing(self, durable_db):
        self._checkpointed(durable_db)
        durable_db.recovery.disk.damage_partition("Employee", 0)
        durable_db.crash()
        with pytest.raises(CorruptImageError):
            durable_db.recover()

    def test_partial_restart_quarantines_damage(self, durable_db):
        self._checkpointed(durable_db)
        durable_db.recovery.disk.damage_partition("Employee", 0)
        durable_db.crash()
        stats = durable_db.recover(partial=True)
        assert not stats.fully_recovered
        ((key, reason),) = stats.quarantined
        assert key == ("Employee", 0)
        assert "checksum" in reason or "CRC" in reason.upper()
        # The healthy relation came up consistent and queryable.
        assert len(durable_db.select("Department")) == 4
        report = stats.quarantine_report()
        assert list(report) == ["Employee"]

    def test_quarantined_partition_not_background_queued(self, durable_db):
        self._checkpointed(durable_db)
        durable_db.recovery.disk.damage_partition("Employee", 0)
        durable_db.crash()
        durable_db.recover(partial=True)
        assert ("Employee", 0) not in durable_db.recovery._pending_background
        assert durable_db.finish_recovery() == 0

    def test_partial_restart_with_working_set(self, durable_db):
        self._checkpointed(durable_db)
        manager = durable_db.recovery
        manager.disk.damage_partition("Employee", 0)
        durable_db.crash()
        dept_parts = [
            key for key in manager.disk.partition_keys()
            if key[0] == "Department"
        ]
        stats = durable_db.recover(working_set=dept_parts, partial=True)
        assert stats.working_set_partitions == len(dept_parts)
        assert len(durable_db.select("Department")) == 4
        # The damaged partition surfaces when the background reload
        # reaches it, quarantined into the same stats object.
        durable_db.finish_recovery()
        assert [key for key, __ in stats.quarantined] == [("Employee", 0)]

    def test_rewrite_clears_damage(self, durable_db):
        disk = self._checkpointed(durable_db)
        disk.damage_partition("Employee", 0)
        durable_db.checkpoint()  # fresh images overwrite the damage
        disk.read_partition("Employee", 0)  # no raise


class TestTransientReadFaults:
    def test_restart_heals_transient_corruption(self, durable_db):
        durable_db.checkpoint()
        durable_db.crash()
        durable_db.configure_faults(
            seed=1,
            policies=[
                FaultPolicy("disk.read", action="corrupt", one_shot=True)
            ],
        )
        stats = durable_db.recover()  # default mode: no quarantine needed
        durable_db.configure_faults()
        assert stats.read_retries == 1
        assert stats.fully_recovered
        assert len(durable_db.select("Employee")) == len(EMPLOYEES)

    def test_persistent_injected_write_corruption(self, durable_db):
        # A corrupt *write* persists: recovery cannot heal it by retry.
        durable_db.configure_faults(
            seed=1,
            policies=[
                FaultPolicy(
                    "disk.write",
                    action="corrupt",
                    one_shot=True,
                    match={"relation": "Employee"},
                )
            ],
        )
        durable_db.checkpoint()
        durable_db.configure_faults()
        durable_db.crash()
        stats = durable_db.recover(partial=True)
        assert [key for key, __ in stats.quarantined] == [("Employee", 0)]

    def test_torn_injected_write(self, durable_db):
        durable_db.configure_faults(
            seed=1,
            policies=[
                FaultPolicy(
                    "disk.write",
                    action="torn",
                    one_shot=True,
                    match={"relation": "Employee"},
                )
            ],
        )
        durable_db.checkpoint()
        durable_db.configure_faults()
        with pytest.raises(TornWriteError):
            durable_db.recovery.disk.read_partition("Employee", 0)


class TestLogRecordChecksums:
    def _record(self):
        return LogRecord(
            7, 1, "Employee", 0, "insert", {"slot": 0, "values": [1]}
        ).sealed()

    def test_sealed_record_verifies(self):
        verify_record(self._record())  # no raise

    def test_checksum_is_content_addressed(self):
        record = self._record()
        assert record.checksum == record_checksum(
            7, 1, "Employee", 0, "insert", {"slot": 0, "values": [1]}
        )

    def test_tampered_record_detected(self):
        record = self._record()
        tampered = LogRecord(
            record.lsn,
            record.txn_id,
            record.relation,
            record.partition_id,
            "delete",  # content changed after sealing
            record.payload,
            record.checksum,
        )
        with pytest.raises(CorruptLogRecordError):
            verify_record(tampered)

    def test_unsealed_record_skips_verification(self):
        verify_record(
            LogRecord(1, 1, "R", 0, "insert", {"slot": 0, "values": []})
        )

    def test_appended_records_are_sealed(self, durable_db):
        durable_db.checkpoint()
        durable_db.insert("Employee", ["Sealed", 300, 30, 459])
        log = durable_db.recovery.stable_log
        records = log.drain_committed()
        assert records and all(r.checksum is not None for r in records)
        for record in records:
            verify_record(record)

    def test_corrupt_append_surfaces_at_restart(self, durable_db):
        durable_db.checkpoint()
        durable_db.configure_faults(
            seed=1,
            policies=[
                FaultPolicy("log.append", action="corrupt", one_shot=True)
            ],
        )
        durable_db.insert("Employee", ["Bad", 301, 30, 459])
        durable_db.configure_faults()
        durable_db.crash()
        with pytest.raises(CorruptLogRecordError):
            durable_db.recover()

    def test_corrupt_record_quarantines_in_partial_mode(self, durable_db):
        durable_db.checkpoint()
        durable_db.configure_faults(
            seed=1,
            policies=[
                FaultPolicy("log.append", action="corrupt", one_shot=True)
            ],
        )
        durable_db.insert("Employee", ["Bad", 301, 30, 459])
        durable_db.configure_faults()
        durable_db.crash()
        stats = durable_db.recover(partial=True)
        assert [key for key, __ in stats.quarantined] == [("Employee", 0)]
        assert len(durable_db.select("Department")) == 4


class TestChecksumMetrics:
    def test_disk_failures_counted(self, durable_db):
        obs = durable_db.configure_observability(ObservabilityConfig())
        durable_db.checkpoint()
        durable_db.recovery.disk.damage_partition("Employee", 0)
        with pytest.raises(CorruptImageError):
            durable_db.recovery.disk.read_partition("Employee", 0)
        assert (
            obs.metrics.counter(
                "checksum_failures_total",
                device="disk",
                kind="CorruptImageError",
            ).value
            == 1
        )

    def test_recovery_retry_and_quarantine_counted(self, durable_db):
        obs = durable_db.configure_observability(ObservabilityConfig())
        durable_db.checkpoint()
        durable_db.recovery.disk.damage_partition("Employee", 0)
        durable_db.crash()
        durable_db.recover(partial=True)
        assert (
            obs.metrics.counter(
                "recovery_read_retries_total", relation="Employee"
            ).value
            >= 1
        )
        assert (
            obs.metrics.counter(
                "recovery_quarantined_partitions_total", relation="Employee"
            ).value
            == 1
        )

    def test_log_failures_counted(self, durable_db):
        obs = durable_db.configure_observability(ObservabilityConfig())
        durable_db.checkpoint()
        durable_db.configure_faults(
            seed=1,
            policies=[
                FaultPolicy("log.append", action="corrupt", one_shot=True)
            ],
        )
        durable_db.insert("Employee", ["Bad", 302, 30, 459])
        durable_db.configure_faults()
        durable_db.crash()
        with pytest.raises(CorruptLogRecordError):
            durable_db.recover()
        assert (
            obs.metrics.counter(
                "checksum_failures_total",
                device="log",
                kind="CorruptLogRecordError",
            ).value
            >= 1
        )

    def test_fault_injections_counted(self, durable_db):
        obs = durable_db.configure_observability(ObservabilityConfig())
        durable_db.checkpoint()
        durable_db.crash()
        durable_db.configure_faults(
            seed=1,
            policies=[
                FaultPolicy("disk.read", action="corrupt", one_shot=True)
            ],
        )
        durable_db.recover()
        durable_db.configure_faults()
        assert (
            obs.metrics.counter(
                "fault_injections_total", point="disk.read", action="corrupt"
            ).value
            == 1
        )
