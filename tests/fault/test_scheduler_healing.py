"""Self-healing morsel scheduler: retry, re-fork, quarantine, poison.

The healing contract (DESIGN.md section 3.10): injected worker faults
never change results — a retried or quarantined morsel merges its packed
counts exactly once, so rows and Section 3.1 totals stay bit-identical
to the fault-free run, and only when the retry budget is truly exhausted
does a typed ``PoisonedMorselError`` surface.
"""

import random

import pytest

from repro import Field, FieldType, MainMemoryDatabase
from repro.errors import PoisonedMorselError
from repro.fault import FaultInjector, FaultPolicy
from repro.fault import runtime as fault_runtime
from repro.instrument import counters_scope
from repro.obs import ObservabilityConfig
from repro.obs import runtime as obs_runtime
from repro.query.parallel import ParallelBatchExecutor, fork_available
from repro.query.plan import FilterNode, JoinNode, ScanNode
from repro.query.predicates import gt
from repro.query.vectorized import DEREF_SAVED_COUNTER, BatchExecutor

SEED = 424242
N_R = 600
N_S = 120
MORSEL = 96

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="no fork start method on this platform"
)


@pytest.fixture(scope="module")
def db():
    rng = random.Random(SEED)
    database = MainMemoryDatabase()
    database.create_relation(
        "R",
        [
            Field("Id", FieldType.INT),
            Field("A", FieldType.INT),
            Field("B", FieldType.INT),
        ],
        primary_key="Id",
    )
    database.create_relation(
        "S",
        [Field("Id", FieldType.INT), Field("A", FieldType.INT)],
        primary_key="Id",
    )
    for i in range(N_R):
        database.insert("R", [i, rng.randrange(40), rng.randrange(1_000)])
    for i in range(N_S):
        database.insert("S", [i, rng.randrange(40)])
    return database


def _executor(db, pool="inline", **kwargs):
    return ParallelBatchExecutor(
        db.catalog,
        workers=2,
        morsel_size=MORSEL,
        pool=pool,
        **kwargs,
    )


def _run(executor, plan):
    with counters_scope() as counters:
        result = executor.execute(plan)
    counts = counters.snapshot().as_dict()
    counts.pop(DEREF_SAVED_COUNTER, None)
    return result.rows(), counts


def _activate(policies, seed=7):
    fault_runtime.activate(FaultInjector(seed=seed, policies=policies))


PLAN = FilterNode(ScanNode("R"), gt("B", 250))
JOIN_PLAN = JoinNode(ScanNode("R"), ScanNode("S"), "A", "A", "hash")


class TestFallbackReason:
    def test_reason_resets_per_run(self, db):
        executor = _executor(db, pool="process")
        try:
            _activate(
                [FaultPolicy("pool.dispatch", one_shot=True)]
            )
            executor.execute(PLAN)  # dispatch fault -> whole-run inline
            assert (
                executor.scheduler.fallback_code == "injected-dispatch-fault"
            )
            assert executor.scheduler.fallback_reason is not None
            executor.execute(PLAN)  # fault expired: no stale reason
            if fork_available():
                assert executor.scheduler.fallback_reason is None
                assert executor.scheduler.fallback_code is None
        finally:
            executor.close()
            fault_runtime.deactivate()

    def test_fallback_exported_as_metric(self, db):
        db_obs = MainMemoryDatabase()
        obs = db_obs.configure_observability(ObservabilityConfig())
        executor = _executor(db, pool="process")
        try:
            _activate([FaultPolicy("pool.dispatch", one_shot=True)])
            executor.execute(PLAN)
            assert (
                obs.metrics.counter(
                    "scheduler_fallback_total",
                    reason="injected-dispatch-fault",
                ).value
                == 1
            )
        finally:
            executor.close()
            fault_runtime.deactivate()


class TestInlineHealing:
    """pool='inline' exercises the retry machinery deterministically."""

    def test_transient_fault_retries_and_matches_baseline(self, db):
        base = BatchExecutor(db.catalog)
        expected_rows, expected_counts = _run(base, PLAN)
        executor = _executor(db)
        try:
            _activate(
                [FaultPolicy("pool.worker", one_shot=True)],
            )
            rows, counts = _run(executor, PLAN)
            assert rows == expected_rows
            assert counts == expected_counts
            assert executor.scheduler.stats["morsel_retries"] == 1
        finally:
            executor.close()
            fault_runtime.deactivate()

    def test_persistent_fault_poisons_morsel(self, db):
        executor = _executor(db, retry_attempts=2)
        try:
            _activate([FaultPolicy("pool.worker")])  # never stops failing
            with pytest.raises(PoisonedMorselError) as err:
                executor.execute(PLAN)
            assert "retry budget" in str(err.value)
            assert err.value.index == 0
        finally:
            executor.close()
            fault_runtime.deactivate()

    def test_healed_run_after_poison(self, db):
        # The scheduler is not wedged by a poisoned morsel: with the
        # fault gone the next run succeeds.
        base_rows, base_counts = _run(BatchExecutor(db.catalog), PLAN)
        executor = _executor(db, retry_attempts=2)
        try:
            _activate([FaultPolicy("pool.worker")])
            with pytest.raises(PoisonedMorselError):
                executor.execute(PLAN)
            fault_runtime.deactivate()
            rows, counts = _run(executor, PLAN)
            assert rows == base_rows
            assert counts == base_counts
        finally:
            executor.close()
            fault_runtime.deactivate()

    def test_poison_metrics_exported(self, db):
        db_obs = MainMemoryDatabase()
        obs = db_obs.configure_observability(ObservabilityConfig())
        executor = _executor(db, retry_attempts=2)
        try:
            _activate([FaultPolicy("pool.worker")])
            with pytest.raises(PoisonedMorselError):
                executor.execute(PLAN)
            snapshot = obs.metrics.snapshot()
            assert "poisoned_morsels_total" in snapshot
            assert "morsel_retries_total" in snapshot
        finally:
            executor.close()
            fault_runtime.deactivate()


@needs_fork
class TestPooledHealing:
    def test_one_shot_error_heals_with_identical_results(self, db):
        base_rows, base_counts = _run(BatchExecutor(db.catalog), PLAN)
        executor = _executor(db, pool="process")
        try:
            _activate([FaultPolicy("pool.worker", one_shot=True)])
            rows, counts = _run(executor, PLAN)
            assert rows == base_rows
            assert counts == base_counts
            stats = executor.scheduler.stats
            assert stats["morsel_retries"] == 1
            # The retried morsel was differentially re-verified inline.
            assert stats["verified_retries"] == 1
        finally:
            executor.close()
            fault_runtime.deactivate()

    def test_worker_kill_reforks_pool(self, db):
        base_rows, base_counts = _run(BatchExecutor(db.catalog), JOIN_PLAN)
        executor = _executor(db, pool="process")
        try:
            _activate(
                [FaultPolicy("pool.worker", action="kill", one_shot=True)]
            )
            rows, counts = _run(executor, JOIN_PLAN)
            assert rows == base_rows
            assert counts == base_counts
            assert executor.scheduler.stats["pool_reforks"] >= 1
        finally:
            executor.close()
            fault_runtime.deactivate()

    def test_quarantined_morsel_runs_inline_once(self, db):
        base_rows, base_counts = _run(BatchExecutor(db.catalog), PLAN)
        executor = _executor(db, pool="process", retry_attempts=2)
        try:
            # Morsel 2 fails both pooled attempts; by the time the
            # quarantine path re-executes it inline the fault budget is
            # spent, so the inline run succeeds.
            _activate(
                [
                    FaultPolicy(
                        "pool.worker", match={"morsel": 2}, max_fires=2
                    )
                ]
            )
            rows, counts = _run(executor, PLAN)
            assert rows == base_rows
            assert counts == base_counts
            stats = executor.scheduler.stats
            assert stats["quarantined_morsels"] == 1
            assert executor.scheduler.fallback_reason is None
        finally:
            executor.close()
            fault_runtime.deactivate()

    def test_scheduler_metrics_exported(self, db):
        db_obs = MainMemoryDatabase()
        obs = db_obs.configure_observability(ObservabilityConfig())
        executor = _executor(db, pool="process")
        try:
            _activate([FaultPolicy("pool.worker", one_shot=True)])
            executor.execute(PLAN)
            retries = obs.metrics.snapshot().get("morsel_retries_total", {})
            assert sum(retries.values()) == 1
        finally:
            executor.close()
            fault_runtime.deactivate()
