"""Fault-injection test fixtures.

The active fault injector (like the active observability instance) is a
process-wide module slot; every test here clears both on exit so no
injected fault or metric registry leaks into unrelated tests.
"""

from __future__ import annotations

import pytest

from repro.fault import runtime as fault_runtime
from repro.obs import runtime as obs_runtime


@pytest.fixture(autouse=True)
def clean_runtime():
    """Guarantee no injector or observability survives a test."""
    yield
    fault_runtime.deactivate()
    obs_runtime.deactivate()
