"""Structure-specific tests for AVL trees, B-Trees, and the array index."""

import random

import pytest

from repro.errors import UnsupportedOperationError
from repro.indexes.array_index import ArrayIndex
from repro.indexes.avl_tree import AVLTreeIndex
from repro.indexes.btree import BTreeIndex
from repro.instrument import counters_scope
from repro.query.sort import quicksort


class TestAVLTree:
    def test_balance_after_ascending_inserts(self):
        t = AVLTreeIndex()
        for k in range(1000):
            t.insert(k)
        t.check_invariants()
        # AVL height bound: 1.44 * log2(n+2); 1000 keys -> <= 14.
        assert t.height() <= 14

    def test_balance_after_descending_inserts(self):
        t = AVLTreeIndex()
        for k in reversed(range(1000)):
            t.insert(k)
        t.check_invariants()
        assert t.height() <= 14

    def test_balance_after_zigzag_inserts(self):
        t = AVLTreeIndex()
        for i in range(500):
            t.insert(i)
            t.insert(1000 - i)
        t.check_invariants()

    def test_delete_rebalances(self):
        rng = random.Random(11)
        t = AVLTreeIndex()
        keys = rng.sample(range(10000), 1000)
        for k in keys:
            t.insert(k)
        for k in keys[:900]:
            t.delete(k)
        t.check_invariants()
        assert sorted(t.scan()) == sorted(keys[900:])

    def test_delete_node_with_two_children(self):
        t = AVLTreeIndex()
        for k in [50, 25, 75, 10, 30, 60, 90]:
            t.insert(k)
        t.delete(50)  # root with two children
        t.check_invariants()
        assert list(t.scan()) == [10, 25, 30, 60, 75, 90]

    def test_storage_factor_is_three(self):
        # "The AVL Tree storage factor was 3 because of the two node
        # pointers it needs for each data item."
        t = AVLTreeIndex()
        for k in range(100):
            t.insert(k)
        assert t.storage_factor() == pytest.approx(3.0)

    def test_search_costs_no_arithmetic_only_compares(self):
        t = AVLTreeIndex()
        for k in range(1023):
            t.insert(k)
        with counters_scope() as c:
            t.search(512)
        # One comparison per level at most (three-way compare counted once).
        assert c.comparisons <= 14


class TestBTree:
    def test_node_size_validated(self):
        with pytest.raises(ValueError):
            BTreeIndex(node_size=2)

    @pytest.mark.parametrize("node_size", [3, 4, 7, 20, 64])
    def test_invariants_after_random_mix(self, node_size):
        rng = random.Random(node_size)
        t = BTreeIndex(node_size=node_size)
        model = set()
        for __ in range(2000):
            if model and rng.random() < 0.45:
                k = rng.choice(tuple(model))
                t.delete(k)
                model.discard(k)
            else:
                k = rng.randrange(5000)
                if k in model:
                    continue
                t.insert(k)
                model.add(k)
        t.check_invariants()
        assert list(t.scan()) == sorted(model)

    def test_split_propagates_to_root(self):
        t = BTreeIndex(node_size=3)
        for k in range(50):
            t.insert(k)
        t.check_invariants()
        assert t.depth() >= 3

    def test_root_collapse_on_drain(self):
        t = BTreeIndex(node_size=3)
        for k in range(50):
            t.insert(k)
        for k in range(50):
            t.delete(k)
        assert len(t) == 0
        assert t.depth() == 1

    def test_deletion_via_predecessor_swap(self):
        t = BTreeIndex(node_size=3)
        for k in range(30):
            t.insert(k)
        # Delete keys that live in internal nodes.
        for k in (15, 7, 23):
            t.delete(k)
            t.check_invariants()
        assert list(t.scan()) == [
            k for k in range(30) if k not in (15, 7, 23)
        ]

    def test_search_needs_binary_search_per_level(self):
        # "The B Tree search time is the worst of the four
        # order-preserving structures, because it requires several binary
        # searches, one for each node in the search path."
        t = BTreeIndex(node_size=8)
        avl = AVLTreeIndex()
        for k in range(4096):
            t.insert(k)
            avl.insert(k)
        with counters_scope() as bt:
            for probe in range(0, 4096, 97):
                t.search(probe)
        with counters_scope() as av:
            for probe in range(0, 4096, 97):
                avl.search(probe)
        assert bt.comparisons > av.comparisons

    def test_duplicates_share_an_entry(self):
        t = BTreeIndex(key_of=lambda it: it[0], unique=False, node_size=6)
        for i in range(5):
            t.insert((3, i))
        t.insert((1, 99))
        assert sorted(t.search_all(3)) == [(3, i) for i in range(5)]
        t.delete((3, 2))
        assert len(t.search_all(3)) == 4


class TestArrayIndex:
    def test_build_from_items_sorts(self):
        arr = ArrayIndex(items=[5, 1, 4, 2, 3])
        assert list(arr.scan()) == [1, 2, 3, 4, 5]

    def test_presorted_flag_skips_sort(self):
        arr = ArrayIndex(items=[1, 2, 3], presorted=True)
        assert list(arr.scan()) == [1, 2, 3]

    def test_positional_access(self):
        arr = ArrayIndex(items=[30, 10, 20])
        assert arr.at(0) == 10
        assert arr.at(2) == 30

    def test_minimum_storage(self):
        # The array is the storage-cost baseline: exactly one pointer per
        # item (factor 1.0).
        arr = ArrayIndex(items=list(range(100)))
        assert arr.storage_factor() == pytest.approx(1.0)

    def test_update_moves_half_the_array(self):
        # "Every update requires moving half of the array, on the
        # average" — inserting at the front moves everything.
        arr = ArrayIndex(items=list(range(1, 1001)))
        with counters_scope() as c:
            arr.insert(0)
        assert c.moves >= 1000

    def test_scan_reverse(self):
        arr = ArrayIndex(items=[2, 1, 3])
        assert list(arr.scan_reverse()) == [3, 2, 1]

    def test_build_unsorted_then_quicksort(self):
        rng = random.Random(3)
        values = [rng.randrange(1000) for __ in range(500)]
        arr = ArrayIndex.build_unsorted(values)
        arr.sort_in_place(lambda items: quicksort(items))
        assert list(arr.scan()) == sorted(values)

    def test_duplicates_adjacent(self):
        arr = ArrayIndex(
            key_of=lambda it: it[0],
            unique=False,
            items=[(2, "a"), (1, "b"), (2, "c"), (1, "d")],
        )
        keys = [k for k, __ in arr.scan()]
        assert keys == [1, 1, 2, 2]
        assert sorted(arr.search_all(2)) == [(2, "a"), (2, "c")]
