"""T-Tree structural tests: node taxonomy, occupancy, GLB transfers,
rotations, and the invariants of Section 3.2.1."""

import random

import pytest

from repro.indexes.ttree import TTreeIndex


def fill(tree, keys):
    for k in keys:
        tree.insert(k)
    return tree


class TestConstruction:
    def test_node_size_validated(self):
        with pytest.raises(ValueError):
            TTreeIndex(node_size=1)
        with pytest.raises(ValueError):
            TTreeIndex(node_size=8, min_slack=-1)

    def test_min_count_tracks_slack(self):
        t = TTreeIndex(node_size=10, min_slack=2)
        assert t.max_count == 10
        assert t.min_count == 8

    def test_min_count_never_below_one(self):
        t = TTreeIndex(node_size=2, min_slack=5)
        assert t.min_count == 1

    def test_single_node_tree(self):
        t = fill(TTreeIndex(node_size=8), [5, 3, 7])
        assert t.node_count == 1
        assert t.height() == 1
        assert list(t.scan()) == [3, 5, 7]


class TestInsertBehaviour:
    def test_bounding_insert_goes_into_node(self):
        # Keys 0..7 fill one node of 8; key 3.5 bounds -> overflow path.
        t = fill(TTreeIndex(node_size=8), range(8))
        assert t.node_count == 1
        t.insert(3.5)  # bounded by [0..7], node full
        t.check_invariants()
        assert list(t.scan()) == [0, 1, 2, 3, 3.5, 4, 5, 6, 7]

    def test_overflow_transfers_minimum_to_new_leaf(self):
        t = fill(TTreeIndex(node_size=4), range(4))
        t.insert(1.5)  # bounded, node full: min (0) moves to a left leaf
        assert t.node_count == 2
        assert list(t.scan()) == [0, 1, 1.5, 2, 3]
        t.check_invariants()

    def test_edge_insert_appends_without_overflow(self):
        t = fill(TTreeIndex(node_size=8), [10, 20])
        t.insert(5)   # below min, node has room -> becomes new minimum
        t.insert(30)  # above max, node has room -> becomes new maximum
        assert t.node_count == 1
        assert list(t.scan()) == [5, 10, 20, 30]

    def test_edge_insert_on_full_node_adds_leaf(self):
        t = fill(TTreeIndex(node_size=4), [10, 20, 30, 40])
        t.insert(5)
        assert t.node_count == 2
        assert list(t.scan()) == [5, 10, 20, 30, 40]
        t.check_invariants()

    def test_sequential_ascending_inserts_stay_balanced(self):
        t = fill(TTreeIndex(node_size=10), range(1000))
        t.check_invariants()
        # Balanced: height is O(log(nodes)), far below node_count.
        assert t.height() <= 9

    def test_sequential_descending_inserts_stay_balanced(self):
        t = fill(TTreeIndex(node_size=10), reversed(range(1000)))
        t.check_invariants()
        assert t.height() <= 9

    def test_node_count_grows_with_data(self):
        t = fill(TTreeIndex(node_size=10), range(200))
        assert 20 <= t.node_count <= 40  # ~10 items per node


class TestDeleteBehaviour:
    def test_delete_from_leaf_allows_underflow(self):
        t = fill(TTreeIndex(node_size=4), range(4))
        t.delete(2)
        assert list(t.scan()) == [0, 1, 3]
        t.check_invariants()

    def test_internal_underflow_borrows_glb(self):
        # Build a three-node tree, then drain the root until it must
        # borrow its greatest lower bound from the left subtree.
        t = fill(TTreeIndex(node_size=4, min_slack=1), range(12))
        t.check_invariants()
        before = list(t.scan())
        victim = before[len(before) // 2]
        t.delete(victim)
        t.check_invariants()
        assert list(t.scan()) == [k for k in before if k != victim]

    def test_emptied_leaf_is_unlinked(self):
        t = fill(TTreeIndex(node_size=2), range(6))
        nodes_before = t.node_count
        for k in range(6):
            t.delete(k)
        assert t.node_count == 0
        assert nodes_before > 0
        assert t.height() == 0

    def test_delete_missing_key_unsuccessful(self):
        from repro.errors import KeyNotFoundError

        t = fill(TTreeIndex(node_size=4), range(8))
        with pytest.raises(KeyNotFoundError):
            t.delete(100)
        # Within bounding node but absent:
        t2 = fill(TTreeIndex(node_size=8), [0, 2, 4, 6])
        with pytest.raises(KeyNotFoundError):
            t2.delete(3)


class TestSearchSemantics:
    def test_search_stops_at_bounding_node(self):
        t = fill(TTreeIndex(node_size=4), range(100))
        for k in (0, 37, 99):
            assert t.search(k) == k

    def test_search_within_bounds_but_absent(self):
        t = fill(TTreeIndex(node_size=8), [0, 10, 20, 30])
        assert t.search(15) is None

    def test_search_all_scans_both_directions(self):
        # Duplicates spanning several nodes must all be found from any
        # starting match (Test 6's bidirectional scan).
        t = TTreeIndex(
            key_of=lambda it: it[0], unique=False, node_size=4
        )
        items = [(5, i) for i in range(10)]
        items += [(1, 100), (9, 101)]
        for item in items:
            t.insert(item)
        t.check_invariants()
        assert sorted(t.search_all(5)) == sorted((5, i) for i in range(10))
        assert t.search_all(1) == [(1, 100)]
        assert t.search_all(7) == []


class TestScans:
    def test_scan_both_directions(self):
        keys = random.Random(5).sample(range(10000), 500)
        t = fill(TTreeIndex(node_size=6), keys)
        assert list(t.scan()) == sorted(keys)
        assert list(t.scan_reverse()) == sorted(keys, reverse=True)

    def test_scan_from_between_nodes(self):
        t = fill(TTreeIndex(node_size=4), range(0, 100, 2))
        assert list(t.scan_from(51)) == list(range(52, 100, 2))

    def test_range_scan(self):
        t = fill(TTreeIndex(node_size=4), range(100))
        assert list(t.range_scan(10, 20)) == list(range(10, 21))


class TestOccupancyInvariant:
    @pytest.mark.parametrize("node_size,slack", [(2, 0), (4, 1), (8, 2), (16, 2)])
    def test_random_mix_preserves_invariants(self, node_size, slack):
        rng = random.Random(node_size * 31 + slack)
        t = TTreeIndex(node_size=node_size, min_slack=slack)
        model = set()
        for step in range(2500):
            if model and rng.random() < 0.45:
                k = rng.choice(tuple(model))
                t.delete(k)
                model.discard(k)
            else:
                k = rng.randrange(5000)
                if k in model:
                    continue
                t.insert(k)
                model.add(k)
        t.check_invariants()
        assert list(t.scan()) == sorted(model)

    def test_storage_factor_reasonable_at_medium_nodes(self):
        # The paper reports ~1.5 for medium/large nodes.
        t = fill(TTreeIndex(node_size=30), random.Random(1).sample(range(10**6), 5000))
        assert 1.0 <= t.storage_factor() <= 2.0


class TestKeyExtraction:
    def test_items_are_pointers_keys_extracted(self):
        # "A main memory style": the index stores items, extracting keys.
        rows = {i: (i * 10, f"row{i}") for i in range(50)}
        t = TTreeIndex(key_of=lambda rid: rows[rid][0], node_size=6)
        for rid in rows:
            t.insert(rid)
        assert t.search(170) == 17
        assert [rows[r][0] for r in t.scan()] == sorted(
            v[0] for v in rows.values()
        )
