"""The common Index contract, parametrized over all eight structures.

Every structure from the paper's study must satisfy the same core
behaviours the index tests of Section 3.2.2 exercised: create, search,
scan, query mixes, and deletion — in both unique and duplicate modes.
"""

import random

import pytest

from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.indexes import HASH_KINDS, INDEX_KINDS, ORDERED_KINDS

ALL_KINDS = sorted(INDEX_KINDS)


def make_index(kind, **kwargs):
    return INDEX_KINDS[kind](**kwargs)


@pytest.fixture(params=ALL_KINDS)
def kind(request):
    return request.param


@pytest.fixture
def keys():
    rng = random.Random(42)
    return rng.sample(range(100000), 800)


class TestBasicContract:
    def test_empty_index(self, kind):
        idx = make_index(kind)
        assert len(idx) == 0
        assert idx.search(1) is None
        assert idx.search_all(1) == []
        assert list(idx.scan()) == []
        assert 1 not in idx

    def test_insert_then_search(self, kind, keys):
        idx = make_index(kind)
        for k in keys:
            idx.insert(k)
        assert len(idx) == len(keys)
        for k in keys[::37]:
            assert idx.search(k) == k
            assert k in idx

    def test_search_missing_returns_none(self, kind, keys):
        idx = make_index(kind)
        for k in keys:
            idx.insert(k)
        assert idx.search(-1) is None
        assert idx.search(10**9) is None

    def test_scan_yields_everything(self, kind, keys):
        idx = make_index(kind)
        for k in keys:
            idx.insert(k)
        scanned = list(idx.scan())
        assert sorted(scanned) == sorted(keys)

    def test_iteration_protocol(self, kind, keys):
        idx = make_index(kind)
        for k in keys[:10]:
            idx.insert(k)
        assert sorted(idx) == sorted(keys[:10])

    def test_delete_removes_key(self, kind, keys):
        idx = make_index(kind)
        for k in keys:
            idx.insert(k)
        for k in keys[:100]:
            idx.delete(k)
        assert len(idx) == len(keys) - 100
        for k in keys[:100]:
            assert idx.search(k) is None
        for k in keys[100:150]:
            assert idx.search(k) == k

    def test_delete_missing_raises(self, kind):
        idx = make_index(kind)
        idx.insert(5)
        with pytest.raises(KeyNotFoundError):
            idx.delete(99)

    def test_delete_from_empty_raises(self, kind):
        with pytest.raises(KeyNotFoundError):
            make_index(kind).delete(1)

    def test_delete_everything_then_reuse(self, kind, keys):
        idx = make_index(kind)
        subset = keys[:200]
        for k in subset:
            idx.insert(k)
        for k in subset:
            idx.delete(k)
        assert len(idx) == 0
        assert list(idx.scan()) == []
        idx.insert(1)
        assert idx.search(1) == 1


class TestUniqueMode:
    def test_duplicate_insert_rejected(self, kind):
        idx = make_index(kind, unique=True)
        idx.insert(7)
        with pytest.raises(DuplicateKeyError):
            idx.insert(7)
        assert len(idx) == 1

    def test_reinsert_after_delete_allowed(self, kind):
        idx = make_index(kind, unique=True)
        idx.insert(7)
        idx.delete(7)
        idx.insert(7)
        assert idx.search(7) == 7


class TestDuplicateMode:
    """Non-unique indexes store tuple pointers sharing a key value."""

    def _fill(self, kind, per_key=4, key_count=50):
        idx = make_index(kind, key_of=lambda item: item[0], unique=False)
        items = [
            (key, seq) for key in range(key_count) for seq in range(per_key)
        ]
        rng = random.Random(9)
        rng.shuffle(items)
        for item in items:
            idx.insert(item)
        return idx, items

    def test_search_all_returns_every_duplicate(self, kind):
        idx, items = self._fill(kind)
        for key in (0, 17, 49):
            expected = sorted(i for i in items if i[0] == key)
            assert sorted(idx.search_all(key)) == expected

    def test_search_all_missing_key_empty(self, kind):
        idx, __ = self._fill(kind)
        assert idx.search_all(999) == []

    def test_delete_specific_item_not_just_key(self, kind):
        idx, items = self._fill(kind)
        idx.delete((17, 2))
        remaining = sorted(idx.search_all(17))
        assert (17, 2) not in remaining
        assert len(remaining) == 3

    def test_scan_contains_all_duplicates(self, kind):
        idx, items = self._fill(kind)
        assert sorted(idx.scan()) == sorted(items)

    def test_ordered_scan_keeps_equal_keys_contiguous(self, kind):
        if kind not in ORDERED_KINDS:
            pytest.skip("hash indexes scan in arbitrary order")
        idx, __ = self._fill(kind)
        keys = [item[0] for item in idx.scan()]
        assert keys == sorted(keys)


class TestOrderedContract:
    @pytest.fixture(params=list(ORDERED_KINDS))
    def okind(self, request):
        return request.param

    def test_scan_is_sorted(self, okind, keys):
        idx = make_index(okind)
        for k in keys:
            idx.insert(k)
        assert list(idx.scan()) == sorted(keys)

    def test_scan_from_midpoint(self, okind, keys):
        idx = make_index(okind)
        for k in keys:
            idx.insert(k)
        pivot = sorted(keys)[len(keys) // 2]
        assert list(idx.scan_from(pivot)) == [
            k for k in sorted(keys) if k >= pivot
        ]

    def test_scan_from_nonexistent_key(self, okind, keys):
        idx = make_index(okind)
        for k in keys:
            idx.insert(k)
        pivot = sorted(keys)[len(keys) // 2] + 1  # very likely absent
        assert list(idx.scan_from(pivot)) == [
            k for k in sorted(keys) if k >= pivot
        ]

    def test_range_scan_inclusive(self, okind, keys):
        idx = make_index(okind)
        for k in keys:
            idx.insert(k)
        lo, hi = sorted(keys)[100], sorted(keys)[300]
        expected = [k for k in sorted(keys) if lo <= k <= hi]
        assert list(idx.range_scan(lo, hi)) == expected

    def test_range_scan_exclusive_bounds(self, okind, keys):
        idx = make_index(okind)
        for k in keys:
            idx.insert(k)
        lo, hi = sorted(keys)[100], sorted(keys)[300]
        expected = [k for k in sorted(keys) if lo < k < hi]
        got = list(
            idx.range_scan(lo, hi, include_low=False, include_high=False)
        )
        assert got == expected

    def test_range_scan_unbounded_sides(self, okind, keys):
        idx = make_index(okind)
        for k in keys:
            idx.insert(k)
        mid = sorted(keys)[400]
        assert list(idx.range_scan(None, mid)) == [
            k for k in sorted(keys) if k <= mid
        ]
        assert list(idx.range_scan(mid, None)) == [
            k for k in sorted(keys) if k >= mid
        ]

    def test_min_and_max(self, okind, keys):
        idx = make_index(okind)
        for k in keys:
            idx.insert(k)
        assert idx.min_item() == min(keys)
        assert idx.max_item() == max(keys)

    def test_min_max_empty(self, okind):
        idx = make_index(okind)
        assert idx.min_item() is None
        assert idx.max_item() is None


class TestStorageAccounting:
    def test_storage_bytes_positive_when_filled(self, kind, keys):
        idx = make_index(kind)
        for k in keys:
            idx.insert(k)
        assert idx.storage_bytes() > 0

    def test_storage_factor_at_least_one(self, kind, keys):
        idx = make_index(kind)
        for k in keys:
            idx.insert(k)
        # Nothing can use less than the array's pointer-per-item minimum.
        assert idx.storage_factor() >= 1.0

    def test_empty_factor_is_zero(self, kind):
        assert make_index(kind).storage_factor() == 0.0


class TestMixedWorkload:
    """The Graph 2 style query mix keeps every structure consistent."""

    def test_query_mix_consistency(self, kind):
        rng = random.Random(kind)
        idx = make_index(kind, unique=True)
        model = set()
        for __ in range(1500):
            roll = rng.random()
            if roll < 0.6 and model:
                k = rng.choice(tuple(model))
                assert idx.search(k) == k
            elif roll < 0.8 or not model:
                k = rng.randrange(10000)
                if k in model:
                    continue
                idx.insert(k)
                model.add(k)
            else:
                k = rng.choice(tuple(model))
                idx.delete(k)
                model.discard(k)
        assert len(idx) == len(model)
        assert sorted(idx.scan()) == sorted(model)
