"""Property-based tests: every index is equivalent to a reference model.

Hypothesis drives random operation sequences against each structure and a
plain-Python model (a set for unique indexes, a multiset of (key, id)
items for duplicate mode); any divergence is a bug.  Stateful testing is
the closest automated analogue of the paper's validity methodology of
cross-checking operation counts against expected behaviour.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.indexes import INDEX_KINDS, ORDERED_KINDS
from repro.indexes.ttree import TTreeIndex

KINDS = sorted(INDEX_KINDS)

# An operation is (op_code, key): 0=insert, 1=delete, 2=search.
operations = st.lists(
    st.tuples(st.integers(0, 2), st.integers(-50, 50)),
    min_size=1,
    max_size=200,
)

#: Reined-in settings: eight structures x many examples adds up.
LEAN = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@pytest.mark.parametrize("kind", KINDS)
class TestUniqueModelEquivalence:
    @LEAN
    @given(ops=operations)
    def test_matches_set_model(self, kind, ops):
        index = INDEX_KINDS[kind](unique=True)
        model = set()
        for op, key in ops:
            if op == 0:
                if key in model:
                    with pytest.raises(DuplicateKeyError):
                        index.insert(key)
                else:
                    index.insert(key)
                    model.add(key)
            elif op == 1:
                if key in model:
                    index.delete(key)
                    model.discard(key)
                else:
                    with pytest.raises(KeyNotFoundError):
                        index.delete(key)
            else:
                expected = key if key in model else None
                assert index.search(key) == expected
        assert len(index) == len(model)
        assert sorted(index.scan()) == sorted(model)

    @LEAN
    @given(keys=st.lists(st.integers(-1000, 1000), unique=True, max_size=150))
    def test_bulk_insert_then_verify(self, kind, keys):
        index = INDEX_KINDS[kind](unique=True)
        for k in keys:
            index.insert(k)
        for k in keys:
            assert index.search(k) == k
        assert sorted(index.scan()) == sorted(keys)


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.slow
class TestDuplicateModelEquivalence:
    @LEAN
    @given(
        items=st.lists(
            st.tuples(st.integers(-10, 10), st.integers(0, 10**6)),
            unique=True,
            max_size=150,
        )
    )
    def test_search_all_matches_filter(self, kind, items):
        index = INDEX_KINDS[kind](key_of=lambda it: it[0], unique=False)
        for item in items:
            index.insert(item)
        for key in range(-10, 11):
            expected = sorted(it for it in items if it[0] == key)
            assert sorted(index.search_all(key)) == expected

    @LEAN
    @given(
        items=st.lists(
            st.tuples(st.integers(-5, 5), st.integers(0, 10**6)),
            unique=True,
            min_size=2,
            max_size=100,
        ),
        data=st.data(),
    )
    def test_delete_exact_item(self, kind, items, data):
        index = INDEX_KINDS[kind](key_of=lambda it: it[0], unique=False)
        for item in items:
            index.insert(item)
        victims = data.draw(
            st.lists(st.sampled_from(items), unique=True, max_size=len(items))
        )
        for victim in victims:
            index.delete(victim)
        remaining = sorted(set(items) - set(victims))
        assert sorted(index.scan()) == remaining


@pytest.mark.parametrize("kind", sorted(ORDERED_KINDS))
class TestOrderedProperties:
    @LEAN
    @given(keys=st.lists(st.integers(-10**6, 10**6), unique=True, max_size=200))
    def test_scan_is_sorted(self, kind, keys):
        index = INDEX_KINDS[kind](unique=True)
        for k in keys:
            index.insert(k)
        assert list(index.scan()) == sorted(keys)

    @LEAN
    @given(
        keys=st.lists(st.integers(-1000, 1000), unique=True, max_size=150),
        low=st.integers(-1000, 1000),
        high=st.integers(-1000, 1000),
    )
    def test_range_scan_matches_filter(self, kind, keys, low, high):
        index = INDEX_KINDS[kind](unique=True)
        for k in keys:
            index.insert(k)
        expected = [k for k in sorted(keys) if low <= k <= high]
        assert list(index.range_scan(low, high)) == expected

    @LEAN
    @given(
        keys=st.lists(st.integers(-1000, 1000), unique=True, max_size=150),
        pivot=st.integers(-1000, 1000),
    )
    def test_scan_from_matches_filter(self, kind, keys, pivot):
        index = INDEX_KINDS[kind](unique=True)
        for k in keys:
            index.insert(k)
        assert list(index.scan_from(pivot)) == [
            k for k in sorted(keys) if k >= pivot
        ]


@pytest.mark.parametrize("kind", sorted(ORDERED_KINDS) + ["bplus"])
@pytest.mark.slow
class TestOrderedDuplicateScans:
    """Regression class: equal keys may straddle node boundaries, and
    directional scans must not lose any of them (a real T-Tree bug this
    property caught: scan_from started mid-run inside the bounding node,
    skipping duplicates that had spilled into predecessor nodes)."""

    @LEAN
    @given(
        items=st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 10**6)),
            unique=True,
            max_size=120,
        ),
        pivot=st.integers(-1, 9),
    )
    def test_scan_from_with_duplicates(self, kind, items, pivot):
        index = INDEX_KINDS[kind](key_of=lambda it: it[0], unique=False)
        for item in items:
            index.insert(item)
        got = sorted(index.scan_from(pivot))
        assert got == sorted(it for it in items if it[0] >= pivot)

    @LEAN
    @given(
        items=st.lists(
            st.tuples(st.integers(0, 8), st.integers(0, 10**6)),
            unique=True,
            max_size=120,
        ),
        low=st.integers(-1, 9),
        high=st.integers(-1, 9),
    )
    def test_range_scan_with_duplicates(self, kind, items, low, high):
        index = INDEX_KINDS[kind](key_of=lambda it: it[0], unique=False)
        for item in items:
            index.insert(item)
        got = sorted(index.range_scan(low, high))
        assert got == sorted(
            it for it in items if low <= it[0] <= high
        )


class TestTTreeInvariantProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 1), st.integers(-100, 100)),
            min_size=1,
            max_size=300,
        ),
        node_size=st.integers(2, 12),
    )
    def test_invariants_hold_after_every_sequence(self, ops, node_size):
        tree = TTreeIndex(node_size=node_size, unique=True)
        model = set()
        for op, key in ops:
            if op == 0 and key not in model:
                tree.insert(key)
                model.add(key)
            elif op == 1 and key in model:
                tree.delete(key)
                model.discard(key)
        tree.check_invariants()
        assert list(tree.scan()) == sorted(model)
