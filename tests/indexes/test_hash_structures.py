"""Structure-specific tests for the four hash-based indexes."""

import random

import pytest

from repro.indexes.chained_hash import ChainedBucketHashIndex
from repro.indexes.extendible_hash import ExtendibleHashIndex
from repro.indexes.linear_hash import (
    LOWER_UTILIZATION,
    UPPER_UTILIZATION,
    LinearHashIndex,
)
from repro.indexes.modified_linear_hash import ModifiedLinearHashIndex
from repro.instrument import counters_scope


class TestChainedBucketHash:
    def test_static_directory_never_grows(self):
        idx = ChainedBucketHashIndex(table_size=16)
        for k in range(500):
            idx.insert(k)
        assert idx.table_size == 16  # static structure

    def test_for_expected_sizes_table(self):
        idx = ChainedBucketHashIndex.for_expected(1000)
        assert idx.table_size >= 1000

    def test_chain_lengths_sum_to_count(self):
        idx = ChainedBucketHashIndex(table_size=8)
        for k in range(100):
            idx.insert(k)
        assert sum(idx.chain_lengths()) == 100

    def test_insert_unless_present_discards_duplicates(self):
        idx = ChainedBucketHashIndex(
            key_of=lambda it: it[0], unique=False, table_size=8
        )
        assert idx.insert_unless_present((1, "a")) is True
        assert idx.insert_unless_present((1, "b")) is False
        assert len(idx) == 1

    def test_search_cost_fixed_regardless_of_size(self):
        # "A hash table has a fixed cost, independent of the index size."
        small = ChainedBucketHashIndex.for_expected(100)
        large = ChainedBucketHashIndex.for_expected(10000)
        for k in range(100):
            small.insert(k)
        for k in range(10000):
            large.insert(k)
        with counters_scope() as cs:
            for k in range(0, 100, 7):
                small.search(k)
        with counters_scope() as cl:
            for k in range(0, 100, 7):
                large.search(k)
        # Same probe count, roughly the same comparisons.
        assert cl.comparisons <= cs.comparisons * 3

    def test_table_size_validated(self):
        with pytest.raises(ValueError):
            ChainedBucketHashIndex(table_size=0)


class TestExtendibleHash:
    def test_directory_doubles_under_load(self):
        idx = ExtendibleHashIndex(node_size=4)
        depth0 = idx.global_depth
        for k in range(500):
            idx.insert(k)
        assert idx.global_depth > depth0

    def test_bucket_count_grows(self):
        idx = ExtendibleHashIndex(node_size=4)
        for k in range(500):
            idx.insert(k)
        assert idx.bucket_count() > 2

    def test_local_depth_bounds_directory_sharing(self):
        idx = ExtendibleHashIndex(node_size=2)
        for k in range(64):
            idx.insert(k)
        # Directory size is 2^global_depth and every bucket is reachable.
        assert len(idx._directory) == 2 ** idx.global_depth

    def test_small_nodes_use_more_storage(self):
        # The paper: small node sizes (2, 4, 6) blow up the directory.
        rng = random.Random(2)
        keys = rng.sample(range(10**6), 2000)
        small = ExtendibleHashIndex(node_size=2)
        large = ExtendibleHashIndex(node_size=32)
        for k in keys:
            small.insert(k)
            large.insert(k)
        assert small.storage_factor() > large.storage_factor()

    def test_duplicate_heavy_bucket_overflows_gracefully(self):
        idx = ExtendibleHashIndex(
            key_of=lambda it: it[0], unique=False, node_size=4
        )
        for i in range(64):
            idx.insert((7, i))  # 64 items, one hash value
        assert len(idx.search_all(7)) == 64
        # The directory must not have exploded to its ceiling for this.
        assert idx.global_depth < 16


class TestLinearHash:
    def test_splits_keep_utilization_bounded(self):
        idx = LinearHashIndex(node_size=8)
        for k in range(2000):
            idx.insert(k)
        assert idx.utilization() <= UPPER_UTILIZATION + 0.05

    def test_contraction_on_deletes(self):
        idx = LinearHashIndex(node_size=8)
        for k in range(2000):
            idx.insert(k)
        buckets_full = idx.bucket_count
        for k in range(1800):
            idx.delete(k)
        assert idx.bucket_count < buckets_full

    def test_reorganization_thrash_under_static_mix(self):
        # "It did a significant amount of data reorganization even though
        # the number of elements was relatively constant."
        rng = random.Random(4)
        idx = LinearHashIndex(node_size=8)
        live = list(range(1000))
        for k in live:
            idx.insert(k)
        with counters_scope() as c:
            next_key = 1000
            for __ in range(500):
                victim = live.pop(rng.randrange(len(live)))
                idx.delete(victim)
                idx.insert(next_key)
                live.append(next_key)
                next_key += 1
        # Reorganisation shows up as data movement well beyond the 1000
        # moves the bare inserts/deletes would need.
        assert c.moves > 1500

    def test_addressing_covers_all_buckets(self):
        idx = LinearHashIndex(node_size=4)
        for k in range(500):
            idx.insert(k)
        assert sorted(idx.scan()) == list(range(500))


class TestModifiedLinearHash:
    def test_chain_target_controls_directory(self):
        short = ModifiedLinearHashIndex(chain_target=1.0)
        long = ModifiedLinearHashIndex(chain_target=16.0)
        for k in range(1000):
            short.insert(k)
            long.insert(k)
        assert short.directory_size > long.directory_size
        assert short.average_chain_length() <= 1.0 + 1e-9
        assert long.average_chain_length() <= 16.0 + 1e-9

    def test_no_thrash_under_static_mix(self):
        # Unlike Linear Hashing, MLH's growth criterion (average chain
        # length) is stable when the element count is static.
        rng = random.Random(4)
        idx = ModifiedLinearHashIndex(chain_target=2.0)
        live = list(range(1000))
        for k in live:
            idx.insert(k)
        dir_before = idx.directory_size
        next_key = 1000
        for __ in range(500):
            victim = live.pop(rng.randrange(len(live)))
            idx.delete(victim)
            idx.insert(next_key)
            live.append(next_key)
            next_key += 1
        assert idx.directory_size == dir_before

    def test_long_chains_cost_traversals(self):
        # "Each data reference requires traversing a pointer.  This
        # overhead is noticeable when the chain becomes long."
        short = ModifiedLinearHashIndex(chain_target=2.0)
        long = ModifiedLinearHashIndex(chain_target=50.0)
        for k in range(2000):
            short.insert(k)
            long.insert(k)
        with counters_scope() as cs:
            for k in range(0, 2000, 13):
                short.search(k)
        with counters_scope() as cl:
            for k in range(0, 2000, 13):
                long.search(k)
        assert cl.traversals > cs.traversals * 2

    def test_per_item_pointer_overhead(self):
        # "There was 4 bytes of pointer overhead for each data item."
        idx = ModifiedLinearHashIndex(chain_target=2.0)
        for k in range(512):
            idx.insert(k)
        overhead = idx.storage_bytes() - 512 * 4  # minus the data pointers
        assert overhead >= 512 * 4  # at least one extra pointer per item

    def test_chain_target_validated(self):
        with pytest.raises(ValueError):
            ModifiedLinearHashIndex(chain_target=0)
        with pytest.raises(ValueError):
            ModifiedLinearHashIndex(node_items=0)

    def test_multi_item_nodes_reduce_storage(self):
        # Table 1: "the storage utilization for Modified Linear Hashing
        # can probably be improved by using multiple-item nodes, thereby
        # reducing the pointer to data item ratio."  Implemented and
        # confirmed.
        single = ModifiedLinearHashIndex(chain_target=8.0, node_items=1)
        multi = ModifiedLinearHashIndex(chain_target=8.0, node_items=4)
        for k in range(3000):
            single.insert(k)
            multi.insert(k)
        assert multi.storage_factor() < single.storage_factor()

    def test_multi_item_nodes_behave_identically(self):
        import random

        rng = random.Random(12)
        idx = ModifiedLinearHashIndex(
            key_of=lambda it: it[0], unique=False,
            chain_target=4.0, node_items=3,
        )
        items = [(rng.randrange(100), i) for i in range(1500)]
        for item in items:
            idx.insert(item)
        assert sorted(idx.search_all(42)) == sorted(
            it for it in items if it[0] == 42
        )
        victims = random.Random(13).sample(items, 700)
        for victim in victims:
            idx.delete(victim)
        assert sorted(idx.scan()) == sorted(set(items) - set(victims))
