"""Tests for the T-Tree spill policy (footnote 5) and rotation counting."""

import random

import pytest

from repro.indexes import AVLTreeIndex, TTreeIndex
from repro.instrument import counters_scope


def run_mix(tree, ops):
    for op, key in ops:
        if op == "insert":
            tree.insert(key)
        else:
            tree.delete(key)


def make_ops(n, seed):
    rng = random.Random(seed)
    live = set()
    ops = []
    for __ in range(n):
        if live and rng.random() < 0.45:
            key = rng.choice(tuple(live))
            live.discard(key)
            ops.append(("delete", key))
        else:
            key = rng.randrange(n * 10)
            if key in live:
                continue
            live.add(key)
            ops.append(("insert", key))
    return ops


class TestSpillPolicies:
    def test_spill_validated(self):
        with pytest.raises(ValueError):
            TTreeIndex(spill="sideways")

    @pytest.mark.parametrize("spill", ["min", "max"])
    def test_both_policies_correct(self, spill):
        ops = make_ops(3000, seed=9)
        tree = TTreeIndex(node_size=6, spill=spill)
        model = set()
        for op, key in ops:
            if op == "insert":
                tree.insert(key)
                model.add(key)
            else:
                tree.delete(key)
                model.discard(key)
        tree.check_invariants()
        assert list(tree.scan()) == sorted(model)

    def test_min_spill_moves_less_data(self):
        # Footnote 5: "Moving the minimum element requires less total
        # data movement than moving the maximum element."
        ops = make_ops(4000, seed=17)
        costs = {}
        for spill in ("min", "max"):
            tree = TTreeIndex(node_size=8, min_slack=1, spill=spill)
            with counters_scope() as counters:
                run_mix(tree, ops)
            costs[spill] = counters.moves
        assert costs["min"] < costs["max"]


class TestRotationCounting:
    def test_ttree_rotates_much_less_than_avl(self):
        # "Rebalancing ... is done much less often than in an AVL tree
        # due to the possibility of intra-node data movement."
        ops = make_ops(3000, seed=4)
        ttree = TTreeIndex(node_size=10)
        avl = AVLTreeIndex()
        run_mix(ttree, ops)
        run_mix(avl, ops)
        assert ttree.rotation_count * 3 < avl.rotation_count

    def test_slack_reduces_rotations(self):
        # "This little bit of extra room reduces the amount of data
        # passed down to leaves ... and the amount borrowed from leaves"
        # — with zero slack every overflow/underflow touches the GLB leaf
        # and rebalances more often.
        ops = make_ops(4000, seed=23)
        rotations = {}
        for slack in (0, 2):
            tree = TTreeIndex(node_size=8, min_slack=slack)
            run_mix(tree, ops)
            rotations[slack] = tree.rotation_count
        assert rotations[2] <= rotations[0]

    def test_rotation_counter_zero_for_balanced_insert_order(self):
        tree = TTreeIndex(node_size=4)
        # A single node never rotates.
        for key in (2, 1, 3):
            tree.insert(key)
        assert tree.rotation_count == 0
