"""Tests for foreign-key-aware predicate rewriting.

A foreign-key column physically stores a tuple pointer (Section 2.1), so
naive literal comparisons against it would never match; the engine
rewrites them to pointer equality (preserving index lookups) or to
follow-the-pointer value comparisons.
"""

import pytest

from repro import eq, ge, gt, le, lt, ne
from repro.storage.tuples import TupleRef
from tests.conftest import EMPLOYEES


class TestEqualityRewriting:
    def test_eq_on_fk_column_matches_value(self, figure1_db):
        result = figure1_db.select("Employee", eq("Dept_Id", 459))
        names = {d["Name"] for d in result.to_dicts()}
        assert names == {"Dave", "Suzan"}

    def test_eq_on_missing_fk_value_matches_nothing(self, figure1_db):
        result = figure1_db.select("Employee", eq("Dept_Id", 99999))
        assert len(result) == 0

    def test_eq_with_explicit_pointer_still_works(self, figure1_db):
        dept_ref = figure1_db.relation("Department").index(
            "Department_pk"
        ).search(459)
        result = figure1_db.select("Employee", eq("Dept_Id", dept_ref))
        assert len(result) == 2

    def test_conjunction_with_fk_part(self, figure1_db):
        result = figure1_db.select(
            "Employee", eq("Dept_Id", 459) & gt("Age", 25)
        )
        assert [d["Name"] for d in result.to_dicts()] == ["Suzan"]

    def test_fk_index_lookup_used_when_available(self, figure1_db):
        # A hash index on the FK pointer column serves the rewritten
        # pointer-equality predicate.
        figure1_db.create_index(
            "Employee", "by_dept", "Dept_Id", kind="chained_hash"
        )
        plan = figure1_db.optimizer.plan_selection(
            "Employee",
            figure1_db._rewrite_fk_predicate("Employee", eq("Dept_Id", 459)),
        )
        assert "IndexLookup" in plan.explain()
        result = figure1_db.select("Employee", eq("Dept_Id", 459))
        assert len(result) == 2


class TestOrderedRewriting:
    def test_range_on_fk_follows_pointer(self, figure1_db):
        # Departments with Id >= 411: Toy(459), Linen(411) -> 4 employees.
        result = figure1_db.select("Employee", ge("Dept_Id", 411))
        names = {d["Name"] for d in result.to_dicts()}
        assert names == {"Dave", "Suzan", "Yaman", "Jane"}

    def test_lt_on_fk(self, figure1_db):
        result = figure1_db.select("Employee", lt("Dept_Id", 411))
        assert {d["Name"] for d in result.to_dicts()} == {"Cindy"}

    def test_ne_on_fk(self, figure1_db):
        result = figure1_db.select("Employee", ne("Dept_Id", 459))
        assert len(result) == len(EMPLOYEES) - 2

    def test_null_fk_never_matches(self, figure1_db):
        figure1_db.insert("Employee", ["NoDept", 99, 30, None])
        for predicate in (le("Dept_Id", 10**9), ne("Dept_Id", 459)):
            names = {
                d["Name"]
                for d in figure1_db.select("Employee", predicate).to_dicts()
            }
            assert "NoDept" not in names


class TestThroughSQL:
    def test_sql_where_on_fk(self, figure1_db):
        count = figure1_db.sql(
            "SELECT COUNT(*) FROM Employee WHERE Dept_Id = 459"
        ).to_dicts()[0]["count(*)"]
        assert count == 2

    def test_sql_delete_on_fk(self, figure1_db):
        removed = figure1_db.sql(
            "DELETE FROM Employee WHERE Dept_Id = 411"
        )
        assert removed == 2
        assert len(figure1_db.select("Employee")) == len(EMPLOYEES) - 2

    def test_sql_join_predicate_on_fk(self, figure1_db):
        rows = figure1_db.sql(
            "SELECT Employee.Name FROM Employee JOIN Department "
            "ON Dept_Id = Id WHERE Dept_Id = 409"
        ).materialize()
        assert rows == [("Cindy",)]
