"""Unit tests for the catalog."""

import pytest

from repro.errors import CatalogError
from repro.storage.catalog import Catalog
from repro.storage.schema import Field, FieldType, ForeignKey, Schema


def int_schema() -> Schema:
    return Schema([Field("k", FieldType.INT)])


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = Catalog()
        rel = catalog.create_relation("R", int_schema())
        assert catalog.relation("R") is rel
        assert "R" in catalog
        assert len(catalog) == 1

    def test_duplicate_name_rejected(self):
        catalog = Catalog()
        catalog.create_relation("R", int_schema())
        with pytest.raises(CatalogError):
            catalog.create_relation("R", int_schema())

    def test_unknown_lookup_raises(self):
        with pytest.raises(CatalogError):
            Catalog().relation("missing")

    def test_fk_target_must_exist(self):
        catalog = Catalog()
        schema = Schema(
            [Field("d", FieldType.INT, references=ForeignKey("Dept", "Id"))]
        )
        with pytest.raises(CatalogError):
            catalog.create_relation("Emp", schema)

    def test_self_reference_allowed(self):
        catalog = Catalog()
        schema = Schema(
            [
                Field("Id", FieldType.INT),
                Field(
                    "Manager",
                    FieldType.INT,
                    references=ForeignKey("Emp", "Id"),
                ),
            ]
        )
        catalog.create_relation("Emp", schema)  # must not raise

    def test_drop_relation(self):
        catalog = Catalog()
        catalog.create_relation("R", int_schema())
        catalog.drop_relation("R")
        assert "R" not in catalog

    def test_drop_referenced_relation_blocked(self):
        catalog = Catalog()
        catalog.create_relation(
            "Dept", Schema([Field("Id", FieldType.INT)])
        )
        catalog.create_relation(
            "Emp",
            Schema(
                [
                    Field("Id", FieldType.INT),
                    Field(
                        "d", FieldType.INT, references=ForeignKey("Dept", "Id")
                    ),
                ]
            ),
        )
        with pytest.raises(CatalogError):
            catalog.drop_relation("Dept")
        catalog.drop_relation("Emp")
        catalog.drop_relation("Dept")  # now allowed

    def test_iteration_and_names(self):
        catalog = Catalog()
        catalog.create_relation("A", int_schema())
        catalog.create_relation("B", int_schema())
        assert catalog.names == ["A", "B"]
        assert [r.name for r in catalog] == ["A", "B"]

    def test_all_partitions_lists_recovery_units(self):
        catalog = Catalog()
        rel = catalog.create_relation("R", int_schema())
        rel.create_index("pk", "k", unique=True)
        for i in range(3):
            rel.insert([i])
        pairs = catalog.all_partitions()
        assert pairs
        assert all(name == "R" for name, __ in pairs)
