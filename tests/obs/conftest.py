"""Observability test fixtures.

The active observability instance is process-wide (module slot in
:mod:`repro.obs.runtime`); every test here deactivates it on exit so no
tracer leaks into unrelated tests.
"""

from __future__ import annotations

import pytest

from repro import MainMemoryDatabase
from repro.obs import runtime as obs_runtime


@pytest.fixture(autouse=True)
def clean_runtime():
    """Guarantee no observability instance survives a test."""
    yield
    obs_runtime.deactivate()


@pytest.fixture
def chain_db() -> MainMemoryDatabase:
    """Three relations for 2-join chains: Proj -> Emp -> Dept."""
    db = MainMemoryDatabase()
    db.sql("CREATE TABLE Dept (Name TEXT, Id INT, PRIMARY KEY (Id))")
    db.sql(
        "CREATE TABLE Emp (Name TEXT, Id INT, Age INT, "
        "Dept INT REFERENCES Dept (Id), PRIMARY KEY (Id))"
    )
    db.sql(
        "CREATE TABLE Proj (Title TEXT, Id INT, "
        "Owner INT REFERENCES Emp (Id), PRIMARY KEY (Id))"
    )
    db.sql("INSERT INTO Dept VALUES ('Toy', 459), ('Linen', 411)")
    db.sql(
        "INSERT INTO Emp VALUES ('Dave', 23, 24, 459), "
        "('Jane', 31, 47, 411), ('Zoe', 44, 30, 459), "
        "('Omar', 57, 36, 411)"
    )
    db.sql(
        "INSERT INTO Proj VALUES ('X', 1, 23), ('Y', 2, 31), "
        "('Z', 3, 23), ('W', 4, 57)"
    )
    return db
