"""Dereference-cache statistics in the metrics registry.

The batch engine's memoizing extractors tally cache hits (saved
physical dereferences) and misses; with observability metrics active,
``flush()`` publishes them as ``deref_saved_traversals_total`` and the
per-outcome ``deref_cache_requests_total`` family, visible through the
Prometheus-text exporter.
"""

import pytest

from repro import Field, FieldType, MainMemoryDatabase
from repro.obs import ObservabilityConfig
from repro.obs import runtime as obs_runtime
from repro.query.plan import ScanNode
from repro.query.predicates import gt, lt
from repro.query.vectorized import BatchExecutor


@pytest.fixture
def db():
    database = MainMemoryDatabase()
    database.create_relation(
        "R",
        [Field("Id", FieldType.INT), Field("A", FieldType.INT)],
        primary_key="Id",
    )
    for i in range(200):
        database.insert("R", [i, i % 17])
    return database


def _counter_value(metrics, name, **labels):
    return metrics.counter(name, **labels).value


def test_deref_hits_and_misses_exported(db):
    db.configure_observability(ObservabilityConfig())
    act = obs_runtime.active()
    # A conjunction re-reading the same field makes the memo hit.
    plan = ScanNode("R", gt("A", 2) & lt("A", 15))
    BatchExecutor(db.catalog).execute(plan)
    hits = _counter_value(
        act.metrics, "deref_cache_requests_total", outcome="hit"
    )
    misses = _counter_value(
        act.metrics, "deref_cache_requests_total", outcome="miss"
    )
    saved = _counter_value(act.metrics, "deref_saved_traversals_total")
    assert hits > 0
    assert misses > 0
    assert saved == hits


def test_deref_metrics_in_prometheus_export(db):
    db.configure_observability(ObservabilityConfig())
    plan = ScanNode("R", gt("A", 2) & lt("A", 15))
    BatchExecutor(db.catalog).execute(plan)
    text = obs_runtime.active().export_prometheus()
    assert "deref_saved_traversals_total" in text
    assert 'deref_cache_requests_total{outcome="hit"}' in text
    assert 'deref_cache_requests_total{outcome="miss"}' in text


def test_no_metrics_when_observability_off(db):
    # No active observability: flush must be a no-op beyond the
    # counter-extra tally (and must not raise).
    plan = ScanNode("R", gt("A", 2) & lt("A", 15))
    BatchExecutor(db.catalog).execute(plan)
    assert obs_runtime.active() is None


def test_metrics_disabled_config_skips_export(db):
    db.configure_observability(ObservabilityConfig(metrics=False))
    plan = ScanNode("R", gt("A", 2) & lt("A", 15))
    BatchExecutor(db.catalog).execute(plan)
    assert obs_runtime.active().export_prometheus() == ""
