"""Metrics registry and slow-query log tests.

Covers the primitive semantics (counter monotonicity, gauge movement,
fixed-bucket histograms with cumulative ``le`` export), the family layer
(label children, kind conflicts), both exporters, and the engine-facing
behaviour: query metrics, cache-layer counters, index-probe counters,
and the ops-threshold slow-query log.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import ObservabilityConfig
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestPrimitives:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == 11.5

    def test_histogram_bucketing(self):
        hist = Histogram([1.0, 5.0, 10.0])
        for value in (0.5, 1.0, 3.0, 7.0, 99.0):
            hist.observe(value)
        # le semantics: an observation equal to a bound belongs to it.
        assert hist.cumulative() == [
            (1.0, 2),
            (5.0, 3),
            (10.0, 4),
            (float("inf"), 5),
        ]
        assert hist.count == 5
        assert hist.sum == pytest.approx(110.5)

    def test_histogram_requires_bounds(self):
        with pytest.raises(ValueError):
            Histogram([])


class TestRegistry:
    def test_labelled_children_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("hits", layer="plan").inc(3)
        registry.counter("hits", layer="ast").inc()
        assert registry.counter("hits", layer="plan").value == 3
        assert registry.counter("hits", layer="ast").value == 1

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("c", a="1", b="2").inc()
        assert registry.counter("c", b="2", a="1").value == 1

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("requests_total").inc()
        with pytest.raises(ValueError):
            registry.gauge("requests_total")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("n", kind="x").inc(2)
        registry.histogram("lat", [1.0]).observe(0.5)
        snap = registry.snapshot()
        assert snap["n"]["kind=x"] == 2
        assert snap["lat"][""]["count"] == 1

    def test_clear(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        registry.clear()
        assert registry.families() == []


class TestExporters:
    def _registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter(
            "cache_requests_total", "Cache lookups", layer="plan",
            outcome="hit",
        ).inc(7)
        registry.gauge("relation_rows", table="Emp").set(42)
        registry.histogram(
            "query_latency_seconds", [0.001, 0.01], "Latency"
        ).observe(0.005)
        return registry

    def test_prometheus_text_format(self):
        text = self._registry().export_prometheus()
        assert "# HELP cache_requests_total Cache lookups" in text
        assert "# TYPE cache_requests_total counter" in text
        assert (
            'cache_requests_total{layer="plan",outcome="hit"} 7' in text
        )
        assert 'relation_rows{table="Emp"} 42' in text
        assert 'query_latency_seconds_bucket{le="0.001"} 0' in text
        assert 'query_latency_seconds_bucket{le="0.01"} 1' in text
        assert 'query_latency_seconds_bucket{le="+Inf"} 1' in text
        assert "query_latency_seconds_sum 0.005" in text
        assert "query_latency_seconds_count 1" in text

    def test_jsonl_round_trips(self):
        lines = self._registry().export_jsonl().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == 3
        by_name = {record["name"]: record for record in records}
        cache = by_name["cache_requests_total"]
        assert cache["type"] == "counter"
        assert cache["labels"] == {"layer": "plan", "outcome": "hit"}
        assert cache["value"] == 7
        hist = by_name["query_latency_seconds"]
        assert hist["count"] == 1
        assert hist["buckets"][-1]["count"] == 1


class TestEngineMetrics:
    def test_query_metrics_recorded(self, chain_db):
        obs = chain_db.configure_observability(
            ObservabilityConfig(tracing=False)
        )
        for __ in range(3):
            chain_db.sql("SELECT * FROM Emp WHERE Id = 23")
        snap = obs.metrics.snapshot()
        assert snap["queries_total"][""] == 3
        assert snap["query_latency_seconds"][""]["count"] == 3
        assert snap["query_ops"][""]["count"] == 3

    def test_cache_and_index_counters(self, chain_db):
        chain_db.configure_cache()  # the reuse caches are opt-in
        obs = chain_db.configure_observability(ObservabilityConfig())
        sql = "SELECT Name FROM Emp WHERE Id = 31"
        chain_db.sql(sql)
        chain_db.sql(sql)  # second run hits the AST/plan caches
        snap = obs.metrics.snapshot()
        cache = snap["cache_requests_total"]
        assert cache.get("layer=ast,outcome=miss", 0) == 1
        assert cache.get("layer=ast,outcome=hit", 0) == 1
        # The repeat run is served by the result cache, which sits in
        # front of the plan cache.
        assert cache.get("layer=result,outcome=hit", 0) == 1
        probes = snap["index_probes_total"]
        assert sum(probes.values()) >= 1

    def test_slow_query_log_threshold(self, chain_db):
        obs = chain_db.configure_observability(
            ObservabilityConfig(tracing=False, slow_query_ops=1)
        )
        sql = "SELECT * FROM Emp WHERE Age > 0"
        chain_db.sql(sql)
        assert len(obs.slow_queries) == 1
        entry = obs.slow_queries[0]
        assert entry.sql == sql
        assert entry.total_ops >= 1
        assert entry.trigger == "ops"
        assert (
            obs.metrics.snapshot()["slow_queries_total"]["trigger=ops"] == 1
        )

    def test_slow_query_log_disabled_by_none(self, chain_db):
        obs = chain_db.configure_observability(
            ObservabilityConfig(tracing=False, slow_query_ops=None)
        )
        chain_db.sql("SELECT * FROM Emp WHERE Age > 0")
        assert len(obs.slow_queries) == 0

    def test_facade_exporters_when_metrics_off(self, chain_db):
        obs = chain_db.configure_observability(
            ObservabilityConfig(metrics=False)
        )
        chain_db.sql("SELECT * FROM Emp WHERE Id = 23")
        assert obs.export_prometheus() == ""
        assert obs.export_jsonl() == ""
