"""Cross-process trace harvest: worker span trees grafted under the
dispatching ``<op>.morsel`` spans.

The contract under test, in three parts:

* **zero overhead / exactness** — the five Section 3.1 counter totals
  of a statement are bit-identical off/on/off (observability disabled,
  enabled, disabled again) at every worker count, and identical to the
  scalar batch engine (``workers=1``);
* **grafting** — with tracing active, every parallelised morsel's span
  carries exactly one grafted ``worker`` child whose counters equal the
  morsel's merged packed counts; and
* **fault round-trip** — a chaos-seeded run annotates the retried
  morsel's span with the injected fault events, proving the annotations
  survive the worker→coordinator hop.
"""

from __future__ import annotations

import pytest

from repro import MainMemoryDatabase
from repro.instrument import counters_scope
from repro.obs import ObservabilityConfig

QUERIES = (
    "SELECT id FROM t WHERE v = 3",
    "SELECT id FROM t WHERE v > 2 AND v < 9",
    "SELECT DISTINCT v FROM t",
    "SELECT t.id, u.tag FROM t JOIN u ON v = k USING hash",
)


def _build_db(workers: int) -> MainMemoryDatabase:
    db = MainMemoryDatabase()
    db.sql("CREATE TABLE t (id INT, v INT)")
    db.sql("CREATE TABLE u (k INT, tag INT)")
    for start in range(0, 3000, 500):
        values = ", ".join(
            f"({i}, {i % 17})" for i in range(start, start + 500)
        )
        db.sql(f"INSERT INTO t VALUES {values}")
    values = ", ".join(f"({i}, {i * 10})" for i in range(17))
    db.sql(f"INSERT INTO u VALUES {values}")
    db.configure_execution(
        engine="batch", workers=workers, pool="inline", morsel_size=256
    )
    return db


def _totals(db) -> list:
    out = []
    for sql in QUERIES:
        with counters_scope() as counters:
            db.sql(sql)
        out.append(
            (
                counters.comparisons,
                counters.moves,
                counters.hashes,
                counters.traversals,
                counters.allocations,
            )
        )
    return out


class TestOffOnOffEquality:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_totals_identical_off_on_off(self, workers):
        db = _build_db(workers)
        off_before = _totals(db)
        db.configure_observability(ObservabilityConfig())
        on = _totals(db)
        db.configure_observability(
            ObservabilityConfig(tracing=False, metrics=False)
        )
        off_after = _totals(db)
        assert off_before == on == off_after

    def test_totals_identical_across_worker_counts(self):
        baseline = _totals(_build_db(1))
        for workers in (2, 4):
            db = _build_db(workers)
            assert _totals(db) == baseline
            db.configure_observability(ObservabilityConfig())
            assert _totals(db) == baseline


class TestWorkerSpanGraft:
    def test_worker_spans_grafted_under_morsel_spans(self):
        db = _build_db(2)
        obs = db.configure_observability(ObservabilityConfig())
        db.sql("SELECT id FROM t WHERE v = 3")
        root = obs.last_query_span()
        morsels = root.find_all("morsel")
        workers = root.find_all("worker")
        assert morsels and len(workers) == len(morsels)
        for morsel in morsels:
            grafted = [c for c in morsel.children if c.kind == "worker"]
            assert len(grafted) == 1
            # The graft is structural: the morsel's counters come from
            # the packed-count merge, the worker child reports the same
            # work, so the totals agree exactly.
            assert (
                grafted[0].counters.as_dict() == morsel.counters.as_dict()
            )
            assert "worker_pid" in morsel.attrs
            assert morsel.attrs["queue_wait"] >= 0.0

    def test_morsel_rollup_matches_operator_span(self):
        db = _build_db(2)
        obs = db.configure_observability(ObservabilityConfig())
        db.sql("SELECT id FROM t WHERE v = 3")
        root = obs.last_query_span()
        scan = root.find("Scan")
        morsels = [c for c in scan.children if c.kind == "morsel"]
        assert morsels
        summed = sum(m.counters.comparisons for m in morsels)
        assert summed == scan.counters.comparisons

    def test_worker_breakdown_in_explain_analyze(self):
        db = _build_db(2)
        text = db.sql("EXPLAIN ANALYZE SELECT id FROM t WHERE v = 3")
        assert "worker.scan_filter" in text
        assert "Per-worker morsel breakdown:" in text

    def test_telemetry_mode_without_tracer_grafts_nothing(self):
        db = _build_db(2)
        obs = db.configure_observability(
            ObservabilityConfig(tracing=False)
        )
        db.sql("SELECT id FROM t WHERE v = 3")
        assert obs.last_query_span() is None
        # Telemetry still flowed: the scheduler saw every morsel.
        assert db.scheduler_stats()["workers"]


class TestFaultAnnotationRoundTrip:
    def test_injected_fault_annotates_morsel_span(self):
        db = _build_db(2)
        obs = db.configure_observability(ObservabilityConfig())
        db.configure_faults(spec="seed=7;pool.worker:action=error,once=1")
        with counters_scope() as counters:
            rows = db.sql("SELECT id FROM t WHERE v = 3")
        root = obs.last_query_span()
        annotated = [
            span
            for span in root.find_all("morsel")
            if "fault_events" in span.attrs
        ]
        assert len(annotated) == 1
        assert annotated[0].attrs["fault_events"] == ["error"]
        assert annotated[0].attrs["retries"] == 1
        # The retried morsel contributed its counts exactly once.
        clean = _build_db(2)
        with counters_scope() as expected:
            assert len(clean.sql("SELECT id FROM t WHERE v = 3")) == len(rows)
        assert (
            counters.comparisons,
            counters.moves,
            counters.hashes,
            counters.traversals,
            counters.allocations,
        ) == (
            expected.comparisons,
            expected.moves,
            expected.hashes,
            expected.traversals,
            expected.allocations,
        )
