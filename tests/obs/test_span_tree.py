"""Span-tree tests: hierarchy, counter roll-up, and the zero-overhead
contract at the unit level.

The marquee scenario is a two-join chain (Proj -> Emp -> Dept, hash
joins forced with USING so the precomputed-pointer path cannot swallow
them) with an index-backed point restriction: the resulting span tree
must show the root query span, the parse/plan phases, nested join
operator spans with their build/probe join phases, and an index-probe
child span — and every parent's counters must be the inclusive sum of
its own work plus its children's.
"""

from __future__ import annotations

from repro.instrument import counters_scope
from repro.obs import Observability, ObservabilityConfig
from repro.obs import runtime as obs_runtime

TWO_JOIN_SQL = (
    "SELECT Proj.Title, Emp.Name, Dept.Name FROM Proj "
    "JOIN Emp ON Owner = Emp.Id USING hash "
    "JOIN Dept ON Dept = Dept.Id USING hash"
)
POINT_SQL = "SELECT * FROM Emp WHERE Id = 23"


def _traced(db, sql):
    """Run ``sql`` under tracing; return (result, root span)."""
    obs = db.configure_observability(ObservabilityConfig(metrics=False))
    result = db.sql(sql)
    return result, obs.last_query_span()


class TestSpanHierarchy:
    def test_root_span_shape(self, chain_db):
        rows, root = _traced(chain_db, POINT_SQL)
        assert root is not None and root.kind == "query"
        assert root.attrs["sql"] == POINT_SQL
        assert root.rows_out == len(rows) == 1
        phases = [child.name for child in root.children]
        assert "parse" in phases and "plan" in phases

    def test_point_lookup_has_index_probe_child(self, chain_db):
        _, root = _traced(chain_db, POINT_SQL)
        operators = root.find_all("operator")
        assert operators, root
        probes = root.find_all("index")
        assert probes, "expected an IndexProbe span under the lookup"
        probe = probes[0]
        assert probe.name.startswith("IndexProbe[")
        assert probe.rows_out == 1

    def test_two_join_query_span_hierarchy(self, chain_db):
        rows, root = _traced(chain_db, TWO_JOIN_SQL)
        assert len(rows) == 4  # every project resolves through the chain

        joins = [
            span
            for span in root.find_all("operator")
            if span.name.startswith("Join[")
        ]
        assert len(joins) == 2
        # Left-deep chain: the inner join is a child of the outer one.
        outer = next(j for j in joins if any(c in joins for c in j.children))
        inner = next(j for j in joins if j is not outer)
        assert inner in outer.children

        # Each hash join contributes a build and a probe phase.
        builds = [s for s in root.walk() if s.name == "hash_join.build"]
        probes = [s for s in root.walk() if s.name == "hash_join.probe"]
        assert len(builds) == 2 and len(probes) == 2
        for phase in builds + probes:
            assert phase.kind == "join_phase"
        # Building hash tables hashes keys; the root sees those ops too.
        assert builds[0].counters.hashes > 0
        assert root.counters.hashes >= sum(
            b.counters.hashes for b in builds
        )

    def test_join_operator_rows(self, chain_db):
        _, root = _traced(chain_db, TWO_JOIN_SQL)
        for join in root.find_all("operator"):
            if join.name.startswith("Join["):
                assert join.rows_out == 4


class TestCounterRollup:
    def test_children_sum_into_every_parent(self, chain_db):
        _, root = _traced(chain_db, TWO_JOIN_SQL)
        for span in root.walk():
            exclusive = span.self_counters()
            # diff() never goes negative only if the parent really holds
            # at least the children's counts — the roll-up invariant.
            for field, value in exclusive.as_dict().items():
                assert value >= 0, (span.name, field, value)
            child_total = sum(c.counters.total() for c in span.children)
            assert span.counters.total() == (
                exclusive.total() + child_total
            )

    def test_root_includes_deep_descendant_ops(self, chain_db):
        _, root = _traced(chain_db, TWO_JOIN_SQL)
        deep = root.find("hash_join.probe")
        # Probing charges hashes under every engine (the tuple engine
        # additionally charges chain comparisons; the batch kernels do
        # not, see DESIGN.md section 3.8), so the roll-up invariant is
        # checked on the engine-neutral counter.
        assert deep is not None and deep.counters.hashes > 0
        assert root.counters.hashes >= deep.counters.hashes

    def test_tracing_is_transparent_to_enclosing_scopes(self, chain_db):
        """Zero-overhead contract: ops recorded under spans still land in
        the caller's own counter scope, in full."""
        chain_db.sql(TWO_JOIN_SQL)  # warm caches so both runs match
        chain_db.configure_observability(ObservabilityConfig(metrics=False))
        with counters_scope() as outer:
            chain_db.sql(TWO_JOIN_SQL)
        obs = obs_runtime.active()
        root = obs.last_query_span()
        assert outer.total() == root.counters.total() > 0


class TestSpanHelpers:
    def test_to_dict_drops_private_attrs(self, chain_db):
        _, root = _traced(chain_db, TWO_JOIN_SQL)
        for payload in [root.to_dict()] + [
            s.to_dict() for s in root.walk()
        ]:
            assert "_node" not in payload["attrs"]
        doc = root.to_dict()
        assert doc["kind"] == "query"
        assert doc["counters"]["comparisons"] == root.counters.comparisons
        assert len(doc["children"]) == len(root.children)

    def test_find_and_walk(self, chain_db):
        _, root = _traced(chain_db, POINT_SQL)
        assert root.find("parse").name == "parse"
        assert root.find("no-such-span") is None
        assert sum(1 for _ in root.walk()) >= 4  # query/parse/plan/op...

    def test_recent_spans_bounded(self, chain_db):
        obs = chain_db.configure_observability(
            ObservabilityConfig(metrics=False, max_recent_spans=2)
        )
        for __ in range(5):
            chain_db.sql(POINT_SQL)
        assert len(obs.recent_spans()) == 2


class TestLifecycle:
    def test_off_by_default(self, chain_db):
        assert obs_runtime.active() is None
        chain_db.sql(POINT_SQL)
        assert obs_runtime.active() is None

    def test_disable_deactivates(self, chain_db):
        obs = chain_db.configure_observability(ObservabilityConfig())
        assert obs_runtime.active() is obs
        assert chain_db.configure_observability(
            ObservabilityConfig(tracing=False, metrics=False)
        ) is None
        assert obs_runtime.active() is None

    def test_activate_returns_previous(self):
        first = Observability(ObservabilityConfig(metrics=False))
        second = Observability(ObservabilityConfig(metrics=False))
        assert obs_runtime.activate(first) is None
        assert obs_runtime.activate(second) is first
        assert obs_runtime.active() is second
