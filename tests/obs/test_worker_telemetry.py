"""Per-worker telemetry: scheduler worker stats and labelled metrics.

Telemetry only flows when observability is active (the request tuple
stays two-element otherwise — the zero-overhead contract), and lands in
two places: ``scheduler.worker_stats`` (surfaced by
``db.scheduler_stats()``) and ``worker``-labelled series in the metrics
registry, visible through the standard exporters.
"""

from __future__ import annotations

import pytest

from repro import MainMemoryDatabase
from repro.obs import ObservabilityConfig

#: The scheduler's run-counter keys, a stable public surface.
SCHEDULER_STAT_KEYS = {
    "pool_forks",
    "pool_reforks",
    "process_runs",
    "inline_runs",
    "morsels",
    "morsel_retries",
    "quarantined_morsels",
    "verified_retries",
    "dispatch_bytes",
    "result_bytes",
}


@pytest.fixture
def db():
    database = MainMemoryDatabase()
    database.sql("CREATE TABLE t (id INT, v INT)")
    for start in range(0, 2000, 500):
        values = ", ".join(
            f"({i}, {i % 17})" for i in range(start, start + 500)
        )
        database.sql(f"INSERT INTO t VALUES {values}")
    database.configure_execution(
        engine="batch", workers=2, pool="inline", morsel_size=256
    )
    return database


class TestWorkerStats:
    def test_no_telemetry_without_observability(self, db):
        db.sql("SELECT id FROM t WHERE v = 3")
        stats = db.scheduler_stats()
        assert stats["workers"] == {}
        assert stats["morsels"] > 0

    def test_scheduler_stats_keys_are_stable(self, db):
        db.sql("SELECT id FROM t WHERE v = 3")
        scheduler = db.executor.scheduler
        assert set(scheduler.stats) == SCHEDULER_STAT_KEYS

    def test_worker_stats_populated_when_active(self, db):
        db.configure_observability(ObservabilityConfig())
        db.sql("SELECT id FROM t WHERE v = 3")
        workers = db.scheduler_stats()["workers"]
        assert workers
        total_morsels = sum(w["morsels"] for w in workers.values())
        assert total_morsels == db.scheduler_stats()["morsels"]
        for per in workers.values():
            assert per["busy_seconds"] > 0.0
            assert per["queue_wait_seconds"] >= 0.0
            assert per["retried_morsels"] == 0
            assert per["quarantined_morsels"] == 0

    def test_per_worker_deref_hit_rate(self, db):
        db.configure_observability(ObservabilityConfig())
        # A conjunction re-reads the same field, so the worker-side
        # deref memo serves the second read: hits and misses both > 0.
        db.sql("SELECT id FROM t WHERE v > 2 AND v < 9")
        workers = db.scheduler_stats()["workers"]
        assert any(w["deref_hits"] > 0 for w in workers.values())
        assert any(w["deref_misses"] > 0 for w in workers.values())
        for per in workers.values():
            if per["deref_hits"] or per["deref_misses"]:
                expected = per["deref_hits"] / (
                    per["deref_hits"] + per["deref_misses"]
                )
                assert per["deref_hit_rate"] == pytest.approx(expected)

    def test_retry_attribution(self, db):
        db.configure_observability(ObservabilityConfig())
        db.configure_faults(spec="seed=7;pool.worker:action=error,once=1")
        db.sql("SELECT id FROM t WHERE v = 3")
        workers = db.scheduler_stats()["workers"]
        assert sum(w["retried_morsels"] for w in workers.values()) == 1


class TestWorkerMetrics:
    def test_worker_labelled_series_exported(self, db):
        obs = db.configure_observability(ObservabilityConfig())
        db.sql("SELECT id FROM t WHERE v = 3")
        snap = obs.metrics.snapshot()
        morsel_series = snap["worker_morsels_total"]
        assert morsel_series
        assert all("worker=" in label for label in morsel_series)
        assert "worker_morsel_seconds" in snap
        assert "worker_queue_wait_seconds_total" in snap
        text = obs.export_prometheus()
        assert "worker_morsels_total{" in text
        assert "worker_morsel_seconds_bucket{" in text

    def test_global_deref_counters_survive_worker_redirect(self, db):
        # Traced tasks flush deref tallies into the worker-local
        # registry; the scheduler re-publishes them globally so the
        # coordinator's exporters keep reporting them.
        obs = db.configure_observability(ObservabilityConfig())
        db.sql("SELECT id FROM t WHERE v > 2 AND v < 9")
        hits = obs.metrics.counter(
            "deref_cache_requests_total", outcome="hit"
        ).value
        saved = obs.metrics.counter("deref_saved_traversals_total").value
        assert hits > 0
        assert saved == hits
        worker_hits = sum(
            per["deref_hits"]
            for per in db.scheduler_stats()["workers"].values()
        )
        assert hits >= worker_hits > 0

    def test_worker_morsel_seconds_percentiles(self, db):
        obs = db.configure_observability(ObservabilityConfig())
        db.sql("SELECT id FROM t WHERE v = 3")
        workers = db.scheduler_stats()["workers"]
        pid = next(iter(workers))
        hist = obs.metrics.histogram(
            "worker_morsel_seconds",
            obs.config.worker_morsel_buckets,
            worker=pid,
        )
        assert hist.count == workers[pid]["morsels"]
        assert hist.quantile(0.5) is not None

    def test_report_includes_worker_section(self, db):
        db.configure_observability(ObservabilityConfig())
        db.sql("SELECT id FROM t WHERE v = 3")
        text = db.observability_report()
        assert "Per-worker telemetry:" in text
        assert "deref_hit_rate" in text


class TestProcessPoolTelemetry:
    def test_fork_pool_ships_telemetry_home(self, db):
        import os

        from repro.query.parallel.scheduler import fork_available

        if not fork_available():
            pytest.skip("no fork start method on this platform")
        db.configure_execution(
            engine="batch", workers=2, pool="auto", morsel_size=256
        )
        db.configure_observability(ObservabilityConfig())
        db.sql("SELECT id FROM t WHERE v = 3")
        stats = db.scheduler_stats()
        if stats["process_runs"] == 0:
            pytest.skip("pool degraded to inline in this sandbox")
        workers = stats["workers"]
        assert workers
        # Real child processes: no worker pid is the coordinator's.
        assert os.getpid() not in workers
