"""The flight recorder, histogram quantiles, and the hotspot report."""

from __future__ import annotations

import pytest

from repro import MainMemoryDatabase
from repro.errors import ConfigError
from repro.obs import FlightRecorder, ObservabilityConfig
from repro.obs.metrics import Histogram
from repro.obs.recorder import cache_outcome, fingerprint_sql


class TestHistogramQuantiles:
    def test_empty_histogram_has_no_quantile(self):
        assert Histogram((1.0, 2.0)).quantile(0.5) is None

    def test_quantile_interpolates_within_bucket(self):
        hist = Histogram((1.0, 2.0, 4.0))
        for _ in range(10):
            hist.observe(1.5)  # all land in the (1, 2] bucket
        # Target rank q*count falls inside the bucket; linear
        # interpolation from the lower bound.
        assert hist.quantile(0.5) == pytest.approx(1.5)
        assert hist.quantile(1.0) == pytest.approx(2.0)

    def test_quantile_spans_buckets(self):
        hist = Histogram((1.0, 2.0, 4.0))
        for _ in range(50):
            hist.observe(0.5)
        for _ in range(50):
            hist.observe(3.0)
        p25 = hist.quantile(0.25)
        p75 = hist.quantile(0.75)
        assert 0.0 < p25 <= 1.0
        assert 2.0 < p75 <= 4.0

    def test_overflow_clamps_to_last_bound(self):
        hist = Histogram((1.0, 2.0))
        hist.observe(100.0)
        assert hist.quantile(0.99) == 2.0

    def test_percentile_labels(self):
        hist = Histogram((1.0,))
        hist.observe(0.5)
        assert set(hist.percentiles()) == {"p50", "p95", "p99"}

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram((1.0,)).quantile(1.5)


class TestFingerprinting:
    def test_fingerprint_collapses_whitespace(self):
        a = fingerprint_sql("SELECT  *   FROM Emp")
        b = fingerprint_sql("SELECT * FROM Emp")
        assert a == b
        assert len(a) == 8

    def test_distinct_statements_distinct_fingerprints(self):
        assert fingerprint_sql("SELECT * FROM A") != fingerprint_sql(
            "SELECT * FROM B"
        )


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        from repro.instrument import OpCounters

        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record(f"SELECT {i}", 0.001, OpCounters())
        assert len(recorder.recent()) == 4
        assert recorder.recent()[-1].sql == "SELECT 9"

    def test_profiles_aggregate_by_fingerprint(self):
        from repro.instrument import OpCounters

        recorder = FlightRecorder()
        counters = OpCounters(comparisons=10)
        recorder.record("SELECT 1", 0.002, counters)
        recorder.record("SELECT  1", 0.004, counters)  # same fingerprint
        recorder.record("SELECT 2", 0.001, counters)
        profiles = recorder.profiles()
        assert len(profiles) == 2
        hottest = profiles[0]
        assert hottest.calls == 2
        assert hottest.total_seconds == pytest.approx(0.006)
        assert hottest.total_ops == 20
        assert recorder.tail_percentiles()["p50"] is not None

    def test_cache_outcome_priority(self):
        from repro.instrument import OpCounters

        counters = OpCounters()
        assert cache_outcome(counters) == "none"
        counters.extra["plan_ast_hits"] = 1
        assert cache_outcome(counters) == "ast"
        counters.extra["plan_hits"] = 1
        assert cache_outcome(counters) == "plan"
        counters.extra["result_hits"] = 1
        assert cache_outcome(counters) == "result"


@pytest.fixture
def db():
    database = MainMemoryDatabase()
    database.sql("CREATE TABLE Emp (Id INT, Age INT, PRIMARY KEY (Id))")
    for i in range(100):
        database.sql(f"INSERT INTO Emp VALUES ({i}, {20 + i % 40})")
    return database


class TestDatabaseIntegration:
    def test_statements_are_recorded_with_context(self, db):
        db.configure_execution(engine="batch", workers=2, pool="inline")
        db.configure_observability(ObservabilityConfig())
        db.sql("SELECT Id FROM Emp WHERE Age > 30")
        records = db.flight_records()
        assert len(records) == 1
        record = records[0]
        assert record.engine == "batch"
        assert record.workers == 2
        assert record.total_ops > 0
        assert record.cache == "none"

    def test_context_follows_reconfiguration(self, db):
        # Pin the starting point: REPRO_EXEC_* env defaults (the CI
        # 2-worker lane sets them) must not leak into the assertion.
        db.configure_execution(engine="batch", workers=1, pool="inline")
        db.configure_observability(ObservabilityConfig())
        db.sql("SELECT Id FROM Emp WHERE Age > 30")
        db.configure_execution(engine="batch", workers=4, pool="inline")
        db.sql("SELECT Id FROM Emp WHERE Age > 35")
        records = db.flight_records()
        assert [r.workers for r in records] == [1, 4]

    def test_result_cache_hit_recorded(self, db):
        db.configure_cache()
        db.configure_observability(ObservabilityConfig())
        sql = "SELECT Id FROM Emp WHERE Age > 30"
        db.sql(sql)
        db.sql(sql)
        records = db.flight_records()
        assert [r.cache for r in records] == ["none", "result"]

    def test_recorder_disabled_by_config(self, db):
        obs = db.configure_observability(
            ObservabilityConfig(flight_recorder=False)
        )
        db.sql("SELECT Id FROM Emp WHERE Age > 30")
        assert obs.recorder is None
        assert db.flight_records() == []

    def test_report_renders_hotspots(self, db):
        db.configure_observability(ObservabilityConfig())
        db.sql("SELECT Id FROM Emp WHERE Age > 30")
        text = db.observability_report()
        assert "Statement hotspots" in text
        assert "Tail latency" in text

    def test_report_without_observability(self, db):
        assert "not configured" in db.observability_report()


class TestSlowQueryTriggers:
    def test_wall_clock_threshold_fires(self, db):
        obs = db.configure_observability(
            ObservabilityConfig(
                tracing=False, slow_query_ops=None, slow_query_seconds=0.0
            )
        )
        db.sql("SELECT Id FROM Emp WHERE Age > 30")
        assert len(obs.slow_queries) == 1
        assert obs.slow_queries[0].trigger == "time"
        snap = obs.metrics.snapshot()
        assert snap["slow_queries_total"]["trigger=time"] == 1

    def test_both_thresholds_label_combined_trigger(self, db):
        obs = db.configure_observability(
            ObservabilityConfig(
                tracing=False, slow_query_ops=1, slow_query_seconds=0.0
            )
        )
        db.sql("SELECT Id FROM Emp WHERE Age > 30")
        assert obs.slow_queries[0].trigger == "ops+time"

    def test_ops_only_keeps_ops_trigger(self, db):
        obs = db.configure_observability(
            ObservabilityConfig(tracing=False, slow_query_ops=1)
        )
        db.sql("SELECT Id FROM Emp WHERE Age > 30")
        assert obs.slow_queries[0].trigger == "ops"

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ObservabilityConfig(slow_query_seconds=-1.0)
        with pytest.raises(ConfigError):
            ObservabilityConfig(slow_query_ops=-5)
        with pytest.raises(ConfigError):
            ObservabilityConfig(max_flight_records=0)
        with pytest.raises(ConfigError):
            ObservabilityConfig(latency_buckets=())
