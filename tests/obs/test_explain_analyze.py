"""EXPLAIN and EXPLAIN ANALYZE surface tests.

EXPLAIN renders the optimizer's plan with estimated rows and never
executes; EXPLAIN ANALYZE executes under a temporary tracer and renders
the span tree with estimated vs. actual rows plus the Section 3.1
operation counters per operator — including the differential contract
that the reported actual rows equal what running the statement returns.
"""

from __future__ import annotations

import re

from repro.obs import ObservabilityConfig
from repro.obs import runtime as obs_runtime
from repro.sql import parser as ast

JOIN_SQL = (
    "SELECT Emp.Name, Dept.Name FROM Emp "
    "JOIN Dept ON Dept = Dept.Id USING hash WHERE Age > 25"
)

ANALYZE_KEYS = (
    "est_rows=",
    "actual_rows=",
    "comparisons=",
    "moves=",
    "hashes=",
    "traversals=",
)


def _root_actual_rows(rendered: str) -> int:
    first_line = rendered.splitlines()[0]
    match = re.search(r"actual_rows=(\d+)", first_line)
    assert match, first_line
    return int(match.group(1))


class TestParser:
    def test_explain_flag_defaults_off(self):
        stmt = ast.parse_statement("EXPLAIN SELECT * FROM Emp")
        assert isinstance(stmt, ast.Explain)
        assert stmt.analyze is False

    def test_explain_analyze_flag(self):
        stmt = ast.parse_statement("EXPLAIN ANALYZE SELECT * FROM Emp")
        assert isinstance(stmt, ast.Explain)
        assert stmt.analyze is True


class TestExplain:
    def test_plan_lines_carry_estimates(self, chain_db):
        rendered = chain_db.sql("EXPLAIN " + JOIN_SQL)
        for line in rendered.splitlines():
            assert "est_rows=" in line, rendered
        assert "actual_rows=" not in rendered

    def test_point_lookup_estimates_one_row(self, chain_db):
        chain_db.sql("SELECT * FROM Emp WHERE Id = 23")  # warm stats
        rendered = chain_db.sql("EXPLAIN SELECT * FROM Emp WHERE Id = 23")
        assert "IndexLookup" in rendered
        assert "(est_rows=1)" in rendered

    def test_explain_does_not_execute(self, chain_db):
        before = len(chain_db.sql("SELECT * FROM Emp"))
        chain_db.sql("EXPLAIN SELECT * FROM Emp")
        assert obs_runtime.active() is None
        assert len(chain_db.sql("SELECT * FROM Emp")) == before


class TestExplainAnalyze:
    def test_join_output_carries_all_counters(self, chain_db):
        rendered = chain_db.sql("EXPLAIN ANALYZE " + JOIN_SQL)
        assert rendered.startswith("Query")
        for key in ANALYZE_KEYS:
            assert key in rendered, rendered
        # The hash join's phases surface as indented children.
        assert "hash_join.build" in rendered
        assert "hash_join.probe" in rendered
        assert "Join[hash]" in rendered

    def test_actual_rows_match_direct_execution(self, chain_db):
        direct = chain_db.sql(JOIN_SQL)
        rendered = chain_db.sql("EXPLAIN ANALYZE " + JOIN_SQL)
        assert _root_actual_rows(rendered) == len(direct) == 3

    def test_estimated_vs_actual_differential(self, chain_db):
        """A range predicate uses the default 1/3 selectivity, so the
        estimate and the actual count legitimately diverge — both must be
        reported on the scan/filter lines for the misestimate to show."""
        sql = "SELECT Name FROM Emp WHERE Age > 25"
        chain_db.sql(sql)  # warm column stats
        rendered = chain_db.sql("EXPLAIN ANALYZE " + sql)
        assert _root_actual_rows(rendered) == 3
        operator_lines = [
            line
            for line in rendered.splitlines()
            if "est_rows=" in line and "actual_rows=" in line
        ]
        assert operator_lines, rendered

    def test_self_activation_leaves_runtime_off(self, chain_db):
        assert obs_runtime.active() is None
        chain_db.sql("EXPLAIN ANALYZE SELECT * FROM Emp")
        assert obs_runtime.active() is None

    def test_restores_configured_observability(self, chain_db):
        obs = chain_db.configure_observability(ObservabilityConfig())
        chain_db.sql("EXPLAIN ANALYZE " + JOIN_SQL)
        assert obs_runtime.active() is obs
        # The outer EXPLAIN ANALYZE statement is recorded by the
        # configured registry as exactly one query; the inner SELECT ran
        # against the private tracer/registry only.
        snapshot = obs.metrics.snapshot()
        assert snapshot["queries_total"][""] == 1
