"""Unit tests for the stopwatch / timing helpers."""

import time

import pytest

from repro.instrument import Stopwatch, time_call


class TestStopwatch:
    def test_initially_stopped_and_zero(self):
        sw = Stopwatch()
        assert not sw.running
        assert sw.elapsed_ns == 0
        assert sw.elapsed_seconds == 0.0

    def test_measures_elapsed_time(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        assert sw.elapsed_seconds >= 0.009

    def test_accumulates_across_runs(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.005)
        first = sw.elapsed_ns
        with sw:
            time.sleep(0.005)
        assert sw.elapsed_ns > first

    def test_double_start_raises(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()
        sw.stop()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset_zeroes_elapsed(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.002)
        sw.reset()
        assert sw.elapsed_ns == 0

    def test_reset_while_running_raises(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.reset()
        sw.stop()

    def test_running_property(self):
        sw = Stopwatch()
        sw.start()
        assert sw.running
        sw.stop()
        assert not sw.running


class TestTimeCall:
    def test_returns_result_and_duration(self):
        result, elapsed = time_call(lambda x: x * 2, 21)
        assert result == 42
        assert elapsed >= 0.0

    def test_passes_kwargs(self):
        result, __ = time_call(divmod, 7, 3)
        assert result == (2, 1)
