"""Kill-primary chaos: failover to the warm replica changes nothing.

The baseline pass runs a 60/20/20 query mix split across two windows,
with a crash-recover cycle between them and no replication.  The chaos
pass runs the identical workload on an identically-built database with
a warm replica attached and a fixed-seed fault plan that kills a
worker, injects transient worker errors, corrupts disk reads, corrupts
shipped batches on the wire, and errors an apply hop — and instead of
recovering from the second crash, it *fails over*: ``demote()``
promotes the replica, whose images replace the catalog.

The promotion must be invisible: both passes yield identical rows and
identical Section 3.1 counter totals in both windows, because the
replica's images are the same checkpoint-plus-replayed-log state a
restart merge would rebuild from disk.

``REPRO_CHAOS_SEED`` selects the fault seed (the CI chaos lane sweeps
several); the data and plan mix are pinned separately so every pass
runs the same workload.
"""

import os
import random

import pytest

from repro import Field, FieldType, MainMemoryDatabase
from repro.fault import FaultPolicy
from repro.fault import runtime as fault_runtime
from repro.instrument import counters_scope
from repro.obs import runtime as obs_runtime
from repro.query.parallel import fork_available
from repro.query.plan import FilterNode, JoinNode, ProjectNode, ScanNode
from repro.query.predicates import between, ge, gt, le, lt
from repro.query.vectorized import DEREF_SAVED_COUNTER

#: Seed for the fault plan only — CI sweeps this via the chaos lane.
SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1012"))
#: Seed for data and plans, pinned so every pass runs the same workload.
DATA_SEED = 990131

N_R = 1000
N_S = 200
VALUE_SPACE = 50
MORSEL = 128
POOL = "process" if fork_available() else "inline"


@pytest.fixture(autouse=True)
def clean_runtime():
    yield
    fault_runtime.deactivate()
    obs_runtime.deactivate()


def _build_db() -> MainMemoryDatabase:
    rng = random.Random(DATA_SEED)
    db = MainMemoryDatabase(durable=True)
    db.create_relation(
        "R",
        [
            Field("Id", FieldType.INT),
            Field("A", FieldType.INT),
            Field("B", FieldType.INT),
        ],
        primary_key="Id",
    )
    db.create_relation(
        "S",
        [Field("Id", FieldType.INT), Field("A", FieldType.INT)],
        primary_key="Id",
    )
    for i in range(N_R):
        db.insert(
            "R", [i, rng.randrange(VALUE_SPACE), rng.randrange(1_000)]
        )
    for i in range(N_S):
        db.insert("S", [i, rng.randrange(VALUE_SPACE)])
    return db


def _plan_mix():
    """60/20/20 selections/joins/projections, ten plans."""
    rng = random.Random(DATA_SEED + 1)
    plans = []
    for i in range(6):
        low = rng.randrange(VALUE_SPACE // 2)
        high = low + rng.randrange(5, VALUE_SPACE // 2)
        if i % 2:
            plans.append(ScanNode("R", gt("A", low) & lt("A", high)))
        else:
            plans.append(
                FilterNode(
                    ScanNode("R"),
                    between("A", low, high) | ge("B", 900) | le("B", 50),
                )
            )
    for __ in range(2):
        low = rng.randrange(VALUE_SPACE // 2)
        plans.append(
            JoinNode(
                ScanNode("R", gt("A", low)), ScanNode("S"), "A", "A", "hash"
            )
        )
    plans.extend(
        [
            ProjectNode(
                ScanNode("R"), ("A",), deduplicate=True, dedup_method="hash"
            ),
            ProjectNode(
                ScanNode("R"),
                ("A", "B"),
                deduplicate=True,
                dedup_method="hash",
            ),
        ]
    )
    return plans


def _chaos_policies():
    return [
        FaultPolicy("pool.worker", action="kill", one_shot=True),
        FaultPolicy("pool.worker", action="error", probability=0.05),
        FaultPolicy("disk.read", action="corrupt", every_nth=3),
        FaultPolicy("repl.ship", action="corrupt", every_nth=2),
        FaultPolicy("repl.apply", action="error", one_shot=True),
    ]


def _run_pass(chaos: bool):
    """One workload pass; ``chaos=True`` replicates, faults, fails over."""
    db = _build_db()
    db.checkpoint()
    if chaos:
        # Replication comes up before the fault plan so the bootstrap
        # image reads stay fault-free; every later hop is fair game.
        db.configure_replication(channel="inline", retry_attempts=5)
    # Post-checkpoint commits exercise log merge (baseline) and log
    # shipping (chaos) — both passes must end with the same 20 rows.
    rng = random.Random(DATA_SEED + 2)
    for i in range(20):
        db.insert(
            "R",
            [N_R + i, rng.randrange(VALUE_SPACE), rng.randrange(1_000)],
        )
    db.crash()
    injector = None
    promotion = None
    try:
        if chaos:
            injector = db.configure_faults(
                seed=SEED, policies=_chaos_policies()
            )
        db.recover()
        db.configure_execution(
            engine="batch",
            workers=2,
            morsel_size=MORSEL,
            pool=POOL,
            retry_attempts=3,
        )
        plans = _plan_mix()
        results = []
        with counters_scope() as counters:
            for plan in plans[:5]:
                results.append(db.executor.execute(plan).rows())
        first = counters.snapshot().as_dict()
        first.pop(DEREF_SAVED_COUNTER, None)
        # The primary dies mid-workload.  The baseline restarts from
        # the disk copy; the chaos pass fails over to the replica.
        db.crash()
        if chaos:
            promotion = db.demote(reason="chaos kill-primary")
        else:
            db.recover()
        with counters_scope() as counters:
            for plan in plans[5:]:
                results.append(db.executor.execute(plan).rows())
        second = counters.snapshot().as_dict()
        second.pop(DEREF_SAVED_COUNTER, None)
        report = injector.report() if injector is not None else None
    finally:
        db.configure_execution()
        db.configure_faults()
        db.stop_replication()
    return results, (first, second), report, promotion


def test_failover_is_bit_identical_to_recovery():
    base_results, base_counts, __, __ = _run_pass(chaos=False)
    chaos_results, chaos_counts, report, promotion = _run_pass(chaos=True)
    # The failover really happened and really replayed the log suffix...
    assert promotion is not None
    assert promotion.records_replayed == 20
    assert promotion.partitions_restored > 0
    assert promotion.epoch == 2
    # ...the fault plan genuinely hit the replication hops...
    assert report is not None
    assert sum(report["fires"].values()) > 0
    assert (
        report["fires"].get("repl.ship", 0)
        + report["fires"].get("repl.apply", 0)
    ) > 0
    # ...and none of it is visible: same rows, same operation totals,
    # in both windows — before and after the promotion.
    assert chaos_results == base_results
    assert chaos_counts[0] == base_counts[0]
    assert chaos_counts[1] == base_counts[1]


def test_failover_chaos_replay_is_deterministic():
    first_results, first_counts, first_report, first_promo = _run_pass(
        chaos=True
    )
    second_results, second_counts, second_report, second_promo = _run_pass(
        chaos=True
    )
    assert first_results == second_results
    assert first_counts == second_counts
    # Same seed, same fault plan: the fire totals replay exactly.
    assert first_report["fires"] == second_report["fires"]
    assert first_promo.records_replayed == second_promo.records_replayed
    assert first_promo.partitions_restored == second_promo.partitions_restored


def test_worker_kill_detection_promotes():
    """``check_failover`` reads the injector's kill events as primary
    death — the chaos lane's kill-primary signal — and promotes."""
    db = _build_db()
    db.checkpoint()
    db.configure_replication(channel="inline")
    try:
        db.configure_faults(
            seed=SEED,
            policies=[FaultPolicy("pool.worker", action="kill", one_shot=True)],
        )
        db.configure_execution(
            engine="batch",
            workers=2,
            morsel_size=MORSEL,
            pool=POOL,
            retry_attempts=3,
        )
        plan = ScanNode("R", gt("A", VALUE_SPACE // 2))
        expected = db.executor.execute(plan).rows()
        assert db.check_failover() is True
        state = db.replication_state()
        assert state["state"] == "promoted"
        assert state["failovers"] == 1
        # The promoted catalog answers the same query identically.
        assert db.executor.execute(plan).rows() == expected
        # A second check is a no-op: the failover already happened.
        assert db.check_failover() is False
    finally:
        db.configure_execution()
        db.configure_faults()
        db.stop_replication()
