"""Unit coverage for the shipping layer: batches, channels, the shipper.

Everything here drives :class:`ReplicaApplier` /
:class:`LogShipper` directly with hand-built log records — no full
database — except the zero-overhead contract, which compares two real
databases (replication on vs off) byte-for-byte on the recovery wire
and count-for-count on the Section 3.1 totals.
"""

import os
import random

import pytest

from repro import Field, FieldType, MainMemoryDatabase
from repro.errors import (
    CorruptBatchError,
    InjectedFaultError,
    ReplicationEpochError,
    ReplicationError,
)
from repro.fault import FaultInjector, FaultPolicy
from repro.fault import runtime as fault_runtime
from repro.instrument import counters_scope
from repro.obs import runtime as obs_runtime
from repro.query.parallel import shm
from repro.query.plan import ScanNode
from repro.query.predicates import gt
from repro.recovery.log import LogRecord
from repro.replication import (
    InlineChannel,
    LogShipper,
    ProcessChannel,
    ReplicaApplier,
    ReplicationConfig,
    ShippedBatch,
    corrupt_bytes,
    decode_batch,
    encode_batch,
    process_channel_available,
)

#: Sizing for the hand-built replica relation.
CONFIGS = {"R": (64, 65536)}


@pytest.fixture(autouse=True)
def clean_runtime():
    yield
    fault_runtime.deactivate()
    obs_runtime.deactivate()


def _records(first_lsn: int, count: int):
    """``count`` sealed insert records for R[0], LSNs from first_lsn."""
    return [
        LogRecord(
            lsn=first_lsn + i,
            txn_id=1,
            relation="R",
            partition_id=0,
            kind="insert",
            payload={
                "slot": first_lsn + i - 1,
                "values": [first_lsn + i, 7],
            },
        ).sealed()
        for i in range(count)
    ]


def _shipper(**config_kwargs):
    applier = ReplicaApplier(configs=CONFIGS)
    channel = InlineChannel(applier)
    shipper = LogShipper(channel, ReplicationConfig(**config_kwargs))
    return applier, shipper


class TestBatchCodec:
    def test_round_trip(self):
        batch = ShippedBatch(epoch=3, seq=9, records=tuple(_records(1, 4)))
        decoded = decode_batch(encode_batch(batch))
        assert decoded.epoch == 3
        assert decoded.seq == 9
        assert decoded.records == batch.records
        assert decoded.last_lsn == 4

    def test_corrupt_wire_is_rejected_whole(self):
        data = encode_batch(
            ShippedBatch(epoch=1, seq=1, records=tuple(_records(1, 2)))
        )
        with pytest.raises(CorruptBatchError):
            decode_batch(corrupt_bytes(data))

    def test_corruption_never_half_applies(self):
        applier = ReplicaApplier(configs=CONFIGS)
        data = encode_batch(
            ShippedBatch(epoch=1, seq=1, records=tuple(_records(1, 5)))
        )
        with pytest.raises(CorruptBatchError):
            applier.apply_batch(corrupt_bytes(data))
        assert applier.records_applied == 0
        assert applier.batches_rejected == 1
        # The good bytes still apply afterwards.
        ack = applier.apply_batch(data)
        assert ack["applied"] == 5


class TestExactlyOnce:
    def test_watermark_deduplicates_reshipped_records(self):
        applier = ReplicaApplier(configs=CONFIGS)
        first = encode_batch(
            ShippedBatch(epoch=1, seq=1, records=tuple(_records(1, 5)))
        )
        applier.apply_batch(first)
        # A re-ship overlapping the acknowledged prefix: LSNs 3..8.
        overlap = encode_batch(
            ShippedBatch(epoch=1, seq=2, records=tuple(_records(3, 6)))
        )
        ack = applier.apply_batch(overlap)
        assert ack["applied"] == 3
        assert ack["skipped"] == 3
        assert ack["watermark"] == 8
        assert applier.partitions[("R", 0)].live_tuples == 8

    def test_identical_reship_is_a_pure_skip(self):
        applier = ReplicaApplier(configs=CONFIGS)
        data = encode_batch(
            ShippedBatch(epoch=1, seq=1, records=tuple(_records(1, 4)))
        )
        applier.apply_batch(data)
        ack = applier.apply_batch(data)
        assert ack["applied"] == 0
        assert ack["skipped"] == 4


class TestEpochFencing:
    def test_stale_epoch_batch_is_fenced(self):
        applier = ReplicaApplier(configs=CONFIGS)
        applier.handle("set_epoch", 3)
        stale = encode_batch(
            ShippedBatch(epoch=2, seq=1, records=tuple(_records(1, 2)))
        )
        with pytest.raises(ReplicationEpochError):
            applier.apply_batch(stale)
        assert applier.records_applied == 0

    def test_newer_epoch_is_adopted(self):
        applier = ReplicaApplier(configs=CONFIGS)
        ack = applier.apply_batch(
            encode_batch(
                ShippedBatch(epoch=5, seq=1, records=tuple(_records(1, 1)))
            )
        )
        assert ack["epoch"] == 5
        assert applier.epoch == 5

    def test_straggler_from_demoted_primary_cannot_ship(self):
        """After promotion bumps the epoch, the old shipper is fenced."""
        applier, shipper = _shipper(retry_attempts=2)
        shipper.enqueue(_records(1, 3))
        assert shipper.flush() == 3
        # Promotion elsewhere fences the replica to a newer epoch.
        applier.handle("set_epoch", shipper.epoch + 1)
        shipper.enqueue(_records(4, 2))
        with pytest.raises(ReplicationEpochError):
            shipper.flush()
        assert applier.records_applied == 3


class TestLogShipper:
    def test_ship_drains_outbox_and_advances_ack(self):
        applier, shipper = _shipper(batch_records=4)
        shipper.enqueue(_records(1, 10))
        assert shipper.lag_records == 10
        assert shipper.flush() == 10
        assert shipper.lag_records == 0
        assert shipper.acked_lsn == 10
        assert shipper.batches_shipped == 3  # 4 + 4 + 2
        assert applier.records_applied == 10

    def test_lag_bound_auto_ships(self):
        applier, shipper = _shipper(max_lag_records=4)
        shipper.enqueue(_records(1, 5))
        # The enqueue crossed the bound and shipped on the commit path.
        assert shipper.lag_records == 0
        assert applier.records_applied == 5

    def test_injected_ship_fault_is_retried(self):
        applier, shipper = _shipper(retry_attempts=3)
        fault_runtime.activate(
            FaultInjector(
                seed=3,
                policies=[
                    FaultPolicy("repl.ship", action="error", one_shot=True)
                ],
            )
        )
        shipper.enqueue(_records(1, 4))
        assert shipper.flush() == 4
        assert shipper.ship_retries == 1
        assert shipper.ship_errors == 1
        assert applier.records_applied == 4

    def test_wire_corruption_is_rejected_then_reshipped(self):
        applier, shipper = _shipper(retry_attempts=3)
        fault_runtime.activate(
            FaultInjector(
                seed=3,
                policies=[
                    FaultPolicy("repl.ship", action="corrupt", one_shot=True)
                ],
            )
        )
        shipper.enqueue(_records(1, 4))
        assert shipper.flush() == 4
        assert shipper.rejected_batches == 1
        assert applier.batches_rejected == 1
        assert applier.records_applied == 4

    def test_exhausted_retries_raise_on_flush_not_enqueue(self):
        applier, shipper = _shipper(retry_attempts=2, max_lag_records=2)
        fault_runtime.activate(
            FaultInjector(
                seed=3,
                policies=[FaultPolicy("repl.ship", action="error")],
            )
        )
        # The commit-path auto-ship is best effort: the replica being
        # down must never surface on the primary's insert path.
        shipper.enqueue(_records(1, 5))
        assert shipper.lag_records == 5
        # The strict flush surfaces the last hop error instead.
        with pytest.raises((ReplicationError, InjectedFaultError)):
            shipper.flush()
        # Once the fault clears, the queued suffix ships.
        fault_runtime.deactivate()
        assert shipper.flush() == 5
        assert applier.records_applied == 5


class TestProcessChannel:
    @pytest.mark.skipif(
        not process_channel_available(), reason="fork start method required"
    )
    def test_forked_replica_round_trip(self):
        bootstrap = {"configs": CONFIGS, "epoch": 1, "images": {}}
        channel = ProcessChannel(bootstrap)
        try:
            assert channel.request("ping") == "pong"
            shipper = LogShipper(channel, ReplicationConfig())
            shipper.enqueue(_records(1, 6))
            assert shipper.flush() == 6
            state = channel.request("state")
            assert state["records_applied"] == 6
            assert state["watermark"] == 6
        finally:
            channel.close()

    @pytest.mark.skipif(
        not process_channel_available(), reason="fork start method required"
    )
    def test_closed_channel_raises_typed_error(self):
        from repro.errors import ReplicaUnavailableError

        channel = ProcessChannel(
            {"configs": CONFIGS, "epoch": 1, "images": {}}
        )
        channel.close()
        with pytest.raises(ReplicaUnavailableError):
            channel.request("ping")


class TestShmTransport:
    @pytest.mark.skipif(
        not shm.available(), reason="POSIX shared memory required"
    )
    def test_large_batches_ride_shared_memory(self):
        rng = random.Random(77)
        db = MainMemoryDatabase(durable=True)
        db.create_relation(
            "R",
            [Field("Id", FieldType.INT), Field("A", FieldType.INT)],
            primary_key="Id",
        )
        for i in range(50):
            db.insert("R", [i, rng.randrange(40)])
        db.checkpoint()
        db.configure_replication(channel="inline", transport="shm")
        try:
            # A wide post-checkpoint suffix: the encoded batch clears
            # MIN_BLOB_BYTES and ships as a descriptor, not a pickle.
            for i in range(200):
                db.insert("R", [50 + i, rng.randrange(40)])
            stats = db.demote(reason="shm transport")
            assert stats.records_replayed == 200
            assert db.replication.channel.stats.get("shipped_via_shm", 0) >= 1
            assert (
                sorted(row[0] for row in db.select("R").materialize())
                == list(range(250))
            )
        finally:
            db.stop_replication()


def _workload_db(replicate: bool):
    rng = random.Random(202)
    db = MainMemoryDatabase(durable=True)
    db.create_relation(
        "R",
        [Field("Id", FieldType.INT), Field("A", FieldType.INT)],
        primary_key="Id",
    )
    for i in range(400):
        db.insert("R", [i, rng.randrange(40)])
    db.checkpoint()
    if replicate:
        db.configure_replication(channel="inline")
    for i in range(30):
        db.insert("R", [400 + i, rng.randrange(40)])
    db.propagate_log()
    return db


#: The env hook lane (REPRO_REPLICATION) forces replication on for
#: every durable database, so "off is free" cannot be asserted there.
ENV_REPLICATION = os.environ.get("REPRO_REPLICATION", "") not in (
    "", "0", "false", "off",
)


@pytest.mark.skipif(
    ENV_REPLICATION, reason="REPRO_REPLICATION forces replication on"
)
class TestZeroOverheadWhenOff:
    def test_recovery_wire_and_counters_unchanged(self):
        """Replication off is *free*: the disk copy stays byte-identical
        and query windows charge exactly the same operation totals."""
        plain = _workload_db(replicate=False)
        replicated = _workload_db(replicate=True)
        try:
            # Same workload, same propagation: the primary's recovery
            # wire must not know replication exists.
            plain_images = dict(plain.recovery.disk._images)
            repl_images = dict(replicated.recovery.disk._images)
            assert plain_images == repl_images
            plan = ScanNode("R", gt("A", 10))
            with counters_scope() as counters:
                plain_rows = plain.executor.execute(plan).rows()
            plain_counts = counters.snapshot().as_dict()
            with counters_scope() as counters:
                repl_rows = replicated.executor.execute(plan).rows()
            repl_counts = counters.snapshot().as_dict()
            assert repl_rows == plain_rows
            assert repl_counts == plain_counts
        finally:
            replicated.stop_replication()

    def test_no_sinks_without_replication(self):
        db = _workload_db(replicate=False)
        assert db.recovery.log_device._sinks == []

    def test_stop_replication_detaches_the_sink(self):
        db = _workload_db(replicate=True)
        assert len(db.recovery.log_device._sinks) == 1
        db.stop_replication()
        assert db.recovery.log_device._sinks == []
        assert db.replication is None
