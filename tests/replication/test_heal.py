"""Online partition repair: a quarantined partition heals from the replica.

A stored partition image is damaged on the simulated disk, the database
crashes, and ``recover(partial=True)`` quarantines the partition
instead of failing the restart.  With a warm replica attached the
quarantine is survivable *online*: ``heal_partitions()`` fetches the
replica's image — which already reflects the full shipped log — swaps
it into the catalog, repairs the disk copy, and drains
``quarantine_report()`` to empty with no full restart.
"""

import random

import pytest

from repro import Field, FieldType, MainMemoryDatabase
from repro.errors import ReproError, ShardUnavailableError
from repro.fault import runtime as fault_runtime
from repro.obs import runtime as obs_runtime
from repro.storage.partition import PartitionConfig

ROWS = 300
EXTRA = 20


@pytest.fixture(autouse=True)
def clean_runtime():
    yield
    fault_runtime.deactivate()
    obs_runtime.deactivate()


def _build_db() -> MainMemoryDatabase:
    rng = random.Random(41)
    db = MainMemoryDatabase(durable=True)
    db.create_relation(
        "R",
        [Field("Id", FieldType.INT), Field("A", FieldType.INT)],
        primary_key="Id",
        partition_config=PartitionConfig(slot_capacity=128),
    )
    for i in range(ROWS):
        db.insert("R", [i, rng.randrange(50)])
    db.checkpoint()
    db.configure_replication(channel="inline")
    # Post-checkpoint commits: the replica stays current via shipping
    # while the damaged *stored* image stays checkpoint-era.
    for i in range(EXTRA):
        db.insert("R", [ROWS + i, rng.randrange(50)])
    return db


def _damage(db, relation="R", partition_id=0):
    """Flip one stored payload byte: the image fails its CRC at read."""
    disk = db.recovery.disk
    framed = bytearray(disk._images[(relation, partition_id)])
    framed[-1] ^= 0xFF
    disk._images[(relation, partition_id)] = bytes(framed)


def _ids(db):
    return sorted(row[0] for row in db.select("R").materialize())


def _quarantined_db():
    db = _build_db()
    _damage(db)
    db.crash()
    stats = db.recover(partial=True)
    return db, stats


class TestQuarantineTyping:
    def test_partial_restart_quarantines_with_typed_access_error(self):
        db, stats = _quarantined_db()
        try:
            assert not stats.fully_recovered
            report = db.quarantine_report()
            assert list(report) == ["R"]
            [(partition_id, reason)] = report["R"]
            assert partition_id == 0
            # Routing a statement at the quarantined partition raises
            # the typed shard error, not a bare KeyError.
            relation = db.catalog.relation("R")
            with pytest.raises(ShardUnavailableError) as excinfo:
                relation.partition(0)
            assert excinfo.value.relation == "R"
            assert excinfo.value.partition_id == 0
            assert excinfo.value.reason == reason
            assert isinstance(excinfo.value, ReproError)
        finally:
            db.stop_replication()

    def test_healthy_partition_misses_stay_storage_errors(self):
        from repro.errors import StorageError

        db = _build_db()
        try:
            # A plain bad partition id is not a shard outage.
            with pytest.raises(StorageError) as excinfo:
                db.catalog.relation("R").partition(999)
            assert not isinstance(excinfo.value, ShardUnavailableError)
        finally:
            db.stop_replication()


class TestOnlineHeal:
    def test_heal_drains_quarantine_and_restores_rows(self):
        db, __ = _quarantined_db()
        try:
            heal = db.heal_partitions()
            assert heal.partitions_healed == 1
            assert heal.healed == [("R", 0)]
            assert db.quarantine_report() == {}
            # The partition is reachable again and every committed row
            # — including the post-checkpoint suffix — is back.
            db.catalog.relation("R").partition(0)
            assert _ids(db) == list(range(ROWS + EXTRA))
        finally:
            db.stop_replication()

    def test_heal_repairs_the_stored_image(self):
        db, __ = _quarantined_db()
        try:
            disk = db.recovery.disk
            from repro.errors import CorruptImageError

            with pytest.raises(CorruptImageError):
                disk.read_partition("R", 0)
            db.heal_partitions()
            # The damaged stored image was rewritten from the healed
            # partition: a later full restart reads it cleanly.
            assert disk.read_partition("R", 0)
            db.crash()
            stats = db.recover()
            assert stats.fully_recovered
            assert _ids(db) == list(range(ROWS + EXTRA))
        finally:
            db.stop_replication()

    def test_heal_with_nothing_quarantined_is_a_noop(self):
        db = _build_db()
        try:
            heal = db.heal_partitions()
            assert heal.partitions_healed == 0
            assert heal.healed == []
        finally:
            db.stop_replication()

    def test_replication_state_counts_heals(self):
        db, __ = _quarantined_db()
        try:
            db.heal_partitions()
            state = db.replication_state()
            assert state["state"] == "active"
            assert state["partition_heals"] == 1
            assert state["shipper"]["lag_records"] == 0
        finally:
            db.stop_replication()


class TestDegradedStateReport:
    def test_quarantine_and_replication_surface_in_the_report(self):
        db, __ = _quarantined_db()
        try:
            db.configure_observability()
            report = db.observability_report()
            assert "Degraded state:" in report
            assert "quarantined R[0]:" in report
            assert "replication: state=active" in report
            db.heal_partitions()
            report = db.observability_report()
            assert "quarantined R[0]:" not in report
            assert "heals=1" in report
        finally:
            db.stop_replication()
