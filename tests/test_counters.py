"""Unit tests for the operation-counter instrumentation."""

import pytest

from repro.instrument import (
    OpCounters,
    count_alloc,
    count_compare,
    count_hash,
    count_move,
    count_traverse,
    counters_scope,
    current_counters,
    set_counters_enabled,
)


class TestOpCounters:
    def test_fresh_counters_are_zero(self):
        counters = OpCounters()
        assert counters.total() == 0
        assert counters.as_dict() == {
            "comparisons": 0,
            "moves": 0,
            "hashes": 0,
            "traversals": 0,
            "allocations": 0,
        }

    def test_total_sums_all_fields(self):
        counters = OpCounters(
            comparisons=1, moves=2, hashes=3, traversals=4, allocations=5
        )
        assert counters.total() == 15

    def test_bump_extra_counter(self):
        counters = OpCounters()
        counters.bump("rotations")
        counters.bump("rotations", 4)
        assert counters.extra["rotations"] == 5
        assert counters.total() == 5

    def test_reset_clears_everything(self):
        counters = OpCounters(comparisons=7)
        counters.bump("x", 3)
        counters.reset()
        assert counters.total() == 0
        assert counters.extra == {}

    def test_snapshot_is_independent(self):
        counters = OpCounters(comparisons=1)
        snap = counters.snapshot()
        counters.comparisons += 10
        assert snap.comparisons == 1

    def test_diff_subtracts_earlier(self):
        earlier = OpCounters(comparisons=5, moves=2)
        later = OpCounters(comparisons=9, moves=2)
        delta = later.diff(earlier)
        assert delta.comparisons == 4
        assert delta.moves == 0

    def test_diff_handles_extra_keys(self):
        earlier = OpCounters()
        earlier.bump("a", 2)
        later = OpCounters()
        later.bump("a", 5)
        later.bump("b", 1)
        delta = later.diff(earlier)
        assert delta.extra == {"a": 3, "b": 1}

    def test_merge_accumulates(self):
        a = OpCounters(comparisons=1)
        b = OpCounters(comparisons=2, moves=3)
        b.bump("z")
        a.merge(b)
        assert a.comparisons == 3
        assert a.moves == 3
        assert a.extra == {"z": 1}

    def test_weighted_cost_defaults(self):
        counters = OpCounters(comparisons=10, hashes=1)
        # hash weighted 4x by default (the paper's fixed lookup cost k).
        assert counters.weighted_cost() == 14.0

    def test_weighted_cost_custom_weights(self):
        counters = OpCounters(moves=5)
        assert counters.weighted_cost(move_weight=2.0) == 10.0


class TestCounterScopes:
    def test_scope_captures_operations(self):
        with counters_scope() as scope:
            count_compare(3)
            count_move(2)
            count_hash()
            count_traverse(4)
            count_alloc()
        assert scope.comparisons == 3
        assert scope.moves == 2
        assert scope.hashes == 1
        assert scope.traversals == 4
        assert scope.allocations == 1

    def test_nested_scope_shadows_outer(self):
        with counters_scope() as outer:
            count_compare()
            with counters_scope() as inner:
                count_compare(5)
            count_compare()
        assert outer.comparisons == 2
        assert inner.comparisons == 5

    def test_current_counters_tracks_innermost(self):
        base = current_counters()
        with counters_scope() as scope:
            assert current_counters() is scope
        assert current_counters() is base

    def test_scope_accepts_existing_instance(self):
        mine = OpCounters()
        with counters_scope(mine) as scope:
            assert scope is mine
            count_compare()
        assert mine.comparisons == 1

    def test_counting_without_scope_does_not_crash(self):
        count_compare()
        count_move()

    def test_disable_makes_helpers_noops(self):
        try:
            with counters_scope() as scope:
                set_counters_enabled(False)
                count_compare(100)
            assert scope.comparisons == 0
        finally:
            set_counters_enabled(True)

    def test_reenable_restores_counting(self):
        set_counters_enabled(False)
        set_counters_enabled(True)
        with counters_scope() as scope:
            count_compare()
        assert scope.comparisons == 1

    def test_scope_pops_on_exception(self):
        base = current_counters()
        with pytest.raises(RuntimeError):
            with counters_scope():
                raise RuntimeError("boom")
        assert current_counters() is base


class TestRollupScopes:
    def test_rollup_merges_into_parent(self):
        with counters_scope() as outer:
            count_compare()
            with counters_scope(rollup=True) as inner:
                count_compare(5)
                count_move(2)
            count_compare()
        assert inner.comparisons == 5
        assert inner.moves == 2
        # The parent sees its own ops AND the rolled-up child's.
        assert outer.comparisons == 7
        assert outer.moves == 2

    def test_rollup_includes_extra_events(self):
        with counters_scope() as outer:
            with counters_scope(rollup=True) as inner:
                inner.bump("probes", 3)
        assert outer.extra == {"probes": 3}

    def test_rollup_merges_even_on_exception(self):
        with counters_scope() as outer:
            with pytest.raises(RuntimeError):
                with counters_scope(rollup=True):
                    count_compare(4)
                    raise RuntimeError("boom")
        assert outer.comparisons == 4

    def test_nested_rollups_chain_to_the_root(self):
        with counters_scope() as root:
            with counters_scope(rollup=True) as mid:
                count_compare()
                with counters_scope(rollup=True):
                    count_compare(10)
        assert mid.comparisons == 11
        assert root.comparisons == 11

    def test_default_remains_non_rollup(self):
        with counters_scope() as outer:
            with counters_scope():
                count_compare(9)
        assert outer.comparisons == 0
