"""End-to-end tests of the SQL interface against the engine."""

import pytest

from repro import MainMemoryDatabase, QueryError
from repro.errors import CatalogError, DuplicateKeyError


@pytest.fixture
def db():
    database = MainMemoryDatabase()
    database.sql("CREATE TABLE Dept (Name TEXT, Id INT, PRIMARY KEY (Id))")
    database.sql(
        "CREATE TABLE Emp (Name TEXT, Id INT, Age INT, "
        "Dept INT REFERENCES Dept(Id), PRIMARY KEY (Id))"
    )
    database.sql(
        "INSERT INTO Dept VALUES ('Toy', 459), ('Shoe', 409), ('Linen', 411)"
    )
    database.sql(
        "INSERT INTO Emp VALUES ('Dave', 23, 24, 459), "
        "('Suzan', 12, 27, 459), ('Yaman', 44, 54, 411), "
        "('Jane', 43, 47, 411), ('Cindy', 22, 22, 409)"
    )
    return database


class TestDDL:
    def test_create_table_makes_primary_index(self, db):
        relation = db.relation("Emp")
        assert "Emp_pk" in relation.indexes
        assert relation.indexes["Emp_pk"].unique

    def test_create_table_default_pk_is_first_column(self):
        database = MainMemoryDatabase()
        database.sql("CREATE TABLE T (a INT, b INT)")
        assert database.relation("T").indexes["T_pk"].field_name == "a"

    def test_create_index_and_use_it(self, db):
        db.sql("CREATE INDEX by_age ON Emp (Age) USING ttree")
        plan = db.sql("EXPLAIN SELECT * FROM Emp WHERE Age >= 30")
        assert "IndexRange" in plan

    def test_create_multi_column_index(self, db):
        db.sql("CREATE UNIQUE INDEX na ON Emp (Name, Age)")
        index = db.relation("Emp").index("na")
        assert index.search(("Dave", 24)) is not None

    def test_drop_table(self, db):
        db.sql("DROP TABLE Emp")
        with pytest.raises(CatalogError):
            db.relation("Emp")

    def test_drop_referenced_table_blocked(self, db):
        with pytest.raises(CatalogError):
            db.sql("DROP TABLE Dept")


class TestInsert:
    def test_insert_returns_refs(self, db):
        refs = db.sql("INSERT INTO Emp VALUES ('Zoe', 99, 31, 409)")
        assert len(refs) == 1
        assert db.fetch("Emp", refs[0])["Name"] == "Zoe"

    def test_fk_resolution_through_sql(self, db):
        refs = db.sql("INSERT INTO Emp VALUES ('Zoe', 99, 31, 409)")
        assert db.fetch("Emp", refs[0])["Dept"] == 409

    def test_fk_violation_through_sql(self, db):
        with pytest.raises(QueryError):
            db.sql("INSERT INTO Emp VALUES ('Bad', 100, 30, 999)")

    def test_duplicate_pk_rejected(self, db):
        with pytest.raises(DuplicateKeyError):
            db.sql("INSERT INTO Emp VALUES ('Dup', 23, 30, 459)")


class TestSelect:
    def test_star(self, db):
        assert len(db.sql("SELECT * FROM Emp")) == 5

    def test_where_pk_lookup(self, db):
        rows = db.sql("SELECT Name FROM Emp WHERE Id = 44").materialize()
        assert rows == [("Yaman",)]

    def test_where_conjunction(self, db):
        rows = db.sql(
            "SELECT Name FROM Emp WHERE Age > 22 AND Age < 50"
        ).materialize()
        assert sorted(rows) == [("Dave",), ("Jane",), ("Suzan",)]

    def test_between(self, db):
        rows = db.sql(
            "SELECT Name FROM Emp WHERE Age BETWEEN 22 AND 27"
        ).materialize()
        assert sorted(rows) == [("Cindy",), ("Dave",), ("Suzan",)]

    def test_string_predicate(self, db):
        rows = db.sql("SELECT Id FROM Emp WHERE Name = 'Cindy'").materialize()
        assert rows == [(22,)]

    def test_order_by_asc_desc(self, db):
        asc = db.sql("SELECT Age FROM Emp ORDER BY Age").materialize()
        desc = db.sql("SELECT Age FROM Emp ORDER BY Age DESC").materialize()
        assert asc == sorted(asc)
        assert desc == asc[::-1]

    def test_limit(self, db):
        assert len(db.sql("SELECT * FROM Emp LIMIT 2")) == 2

    def test_distinct(self, db):
        assert len(db.sql("SELECT DISTINCT Dept FROM Emp")) == 3

    def test_join_auto_uses_precomputed(self, db):
        plan = db.sql("EXPLAIN SELECT Emp.Name FROM Emp JOIN Dept ON Dept = Id")
        assert "precomputed" in plan
        rows = db.sql(
            "SELECT Emp.Name, Dept.Name FROM Emp JOIN Dept ON Dept = Id "
            "WHERE Age > 40"
        ).materialize()
        assert sorted(rows) == [("Jane", "Linen"), ("Yaman", "Linen")]

    def test_join_forced_method(self, db):
        rows = db.sql(
            "SELECT Emp.Name FROM Emp JOIN Dept ON Dept = Id USING hash"
        )
        # Forcing hash joins on the Id *value* extracted through pointers.
        assert len(rows) == 5

    def test_nonequi_join(self, db):
        rows = db.sql(
            "SELECT * FROM Emp JOIN Emp ON Age < Age USING nested_loops"
        )
        ages = [24, 27, 54, 47, 22]
        expected = sum(1 for a in ages for b in ages if a < b)
        assert len(rows) == expected

    def test_where_column_must_belong_to_a_table(self, db):
        with pytest.raises(QueryError):
            db.sql(
                "SELECT * FROM Emp JOIN Dept ON Dept = Id WHERE Bogus = 1"
            )


class TestUpdateDelete:
    def test_update_returns_count(self, db):
        count = db.sql("UPDATE Emp SET Age = 25 WHERE Id = 23")
        assert count == 1
        assert db.sql("SELECT Age FROM Emp WHERE Id = 23").materialize() == [
            (25,)
        ]

    def test_update_many(self, db):
        count = db.sql("UPDATE Emp SET Age = 30 WHERE Age < 30")
        assert count == 3
        ages = [a for (a,) in db.sql("SELECT Age FROM Emp").materialize()]
        assert all(a >= 30 for a in ages)

    def test_update_fk_field_rebinds_pointer(self, db):
        db.sql("UPDATE Emp SET Dept = 411 WHERE Id = 23")
        rows = db.sql(
            "SELECT Dept.Name FROM Emp JOIN Dept ON Dept = Id "
            "WHERE Emp.Id = 23"
        ).materialize()
        assert rows == [("Linen",)]

    def test_delete_with_predicate(self, db):
        count = db.sql("DELETE FROM Emp WHERE Age > 40")
        assert count == 2
        assert len(db.sql("SELECT * FROM Emp")) == 3

    def test_delete_all(self, db):
        assert db.sql("DELETE FROM Emp") == 5
        assert len(db.sql("SELECT * FROM Emp")) == 0


class TestExplain:
    def test_pk_lookup_uses_tree(self, db):
        plan = db.sql("EXPLAIN SELECT * FROM Emp WHERE Id = 23")
        assert "IndexLookup" in plan

    def test_hash_preferred_when_available(self, db):
        db.sql("CREATE INDEX h ON Emp (Id) USING modified_linear_hash")
        plan = db.sql("EXPLAIN SELECT * FROM Emp WHERE Id = 23")
        assert "via hash" in plan

    def test_unindexed_scan(self, db):
        plan = db.sql("EXPLAIN SELECT * FROM Emp WHERE Age = 24")
        assert "Scan" in plan
