"""Tests for the SQL lexer and parser."""

import pytest

from repro.sql.lexer import SQLSyntaxError, TokenType, tokenize
from repro.sql.parser import (
    Condition,
    CreateIndex,
    CreateTable,
    Delete,
    DropIndex,
    DropTable,
    Explain,
    Insert,
    Select,
    Update,
    parse_statement,
)


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select Select SELECT")
        assert all(t.is_keyword("SELECT") for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        tokens = tokenize("Employee")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "Employee"

    def test_qualified_identifier(self):
        tokens = tokenize("Emp.Name")
        assert tokens[0].value == "Emp.Name"

    def test_numeric_literals(self):
        tokens = tokenize("42 3.14")
        assert (tokens[0].type, tokens[0].value) == (TokenType.INT, "42")
        assert (tokens[1].type, tokens[1].value) == (TokenType.FLOAT, "3.14")

    def test_string_literal_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_operators(self):
        values = [t.value for t in tokenize("= != <> < <= > >=")[:-1]]
        assert values == ["=", "!=", "!=", "<", "<=", ">", ">="]

    def test_junk_rejected(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @ FROM x")


class TestParseDDL:
    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE Emp (Name TEXT, Id INT, Salary FLOAT, "
            "PRIMARY KEY (Id))"
        )
        assert isinstance(stmt, CreateTable)
        assert stmt.name == "Emp"
        assert [c.name for c in stmt.columns] == ["Name", "Id", "Salary"]
        assert [c.type_name for c in stmt.columns] == ["str", "int", "float"]
        assert stmt.primary_key == "Id"

    def test_create_table_with_references(self):
        stmt = parse_statement(
            "CREATE TABLE Emp (Id INT, Dept INT REFERENCES Dept(Id))"
        )
        assert stmt.columns[1].references == ("Dept", "Id")

    def test_create_table_needs_columns(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("CREATE TABLE Emp (PRIMARY KEY (Id))")

    def test_unknown_type_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("CREATE TABLE T (x BLOB)")

    def test_create_index(self):
        stmt = parse_statement(
            "CREATE UNIQUE INDEX by_name ON Emp (Name) USING chained_hash"
        )
        assert isinstance(stmt, CreateIndex)
        assert stmt.unique
        assert stmt.kind == "chained_hash"
        assert stmt.columns == ("Name",)

    def test_create_multi_column_index(self):
        stmt = parse_statement("CREATE INDEX na ON Emp (Name, Age)")
        assert stmt.columns == ("Name", "Age")
        assert not stmt.unique

    def test_drop_statements(self):
        assert isinstance(parse_statement("DROP TABLE Emp"), DropTable)
        stmt = parse_statement("DROP INDEX by_name ON Emp")
        assert isinstance(stmt, DropIndex)
        assert (stmt.name, stmt.table) == ("by_name", "Emp")


class TestParseDML:
    def test_insert_multiple_rows(self):
        stmt = parse_statement(
            "INSERT INTO Emp VALUES ('Dave', 23), ('Suzan', 12)"
        )
        assert isinstance(stmt, Insert)
        assert stmt.rows == (("Dave", 23), ("Suzan", 12))

    def test_insert_null(self):
        stmt = parse_statement("INSERT INTO Emp VALUES (NULL, 1)")
        assert stmt.rows[0] == (None, 1)

    def test_update(self):
        stmt = parse_statement(
            "UPDATE Emp SET Age = 25, Name = 'Dave' WHERE Id = 23"
        )
        assert isinstance(stmt, Update)
        assert stmt.assignments == (("Age", 25), ("Name", "Dave"))
        assert stmt.conditions[0] == Condition("Id", "=", 23)

    def test_delete(self):
        stmt = parse_statement("DELETE FROM Emp WHERE Age >= 65")
        assert isinstance(stmt, Delete)
        assert stmt.conditions == (Condition("Age", ">=", 65),)

    def test_delete_without_where(self):
        assert parse_statement("DELETE FROM Emp").conditions == ()


class TestParseSelect:
    def test_star(self):
        stmt = parse_statement("SELECT * FROM Emp")
        assert isinstance(stmt, Select)
        assert stmt.columns == ()

    def test_column_list_and_where(self):
        stmt = parse_statement(
            "SELECT Name, Age FROM Emp WHERE Age > 25 AND Age <= 60"
        )
        assert stmt.columns == ("Name", "Age")
        assert stmt.conditions == (
            Condition("Age", ">", 25),
            Condition("Age", "<=", 60),
        )

    def test_between(self):
        stmt = parse_statement("SELECT * FROM Emp WHERE Age BETWEEN 20 AND 30")
        assert stmt.conditions == (Condition("Age", "between", 20, 30),)

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT Dept FROM Emp").distinct

    def test_join_with_method(self):
        stmt = parse_statement(
            "SELECT * FROM Emp JOIN Dept ON Dept = Id USING tree_merge"
        )
        assert stmt.join_table == "Dept"
        assert (stmt.join_left, stmt.join_right) == ("Dept", "Id")
        assert stmt.join_method == "tree_merge"

    def test_nonequi_join(self):
        stmt = parse_statement("SELECT * FROM A JOIN B ON x < y")
        assert stmt.join_op == "<"

    def test_order_and_limit(self):
        stmt = parse_statement(
            "SELECT * FROM Emp ORDER BY Age DESC LIMIT 5"
        )
        assert stmt.order_by == "Age"
        assert stmt.order_desc
        assert stmt.limit == 5

    def test_explain(self):
        stmt = parse_statement("EXPLAIN SELECT * FROM Emp WHERE Id = 1")
        assert isinstance(stmt, Explain)
        assert stmt.select.table == "Emp"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT * FROM Emp banana")

    def test_semicolon_tolerated(self):
        parse_statement("SELECT * FROM Emp;")

    def test_limit_requires_integer(self):
        with pytest.raises(SQLSyntaxError):
            parse_statement("SELECT * FROM Emp LIMIT x")
