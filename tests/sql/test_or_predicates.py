"""Tests for OR predicates — the shape of the paper's Query 2."""

import pytest

from repro import MainMemoryDatabase, eq, gt, lt
from repro.query.predicates import Disjunction
from tests.conftest import EMPLOYEES


class TestPredicateAlgebra:
    def test_or_operator_builds_disjunction(self):
        pred = eq("a", 1) | eq("a", 2)
        assert isinstance(pred, Disjunction)
        assert pred.matches(lambda f: 1)
        assert pred.matches(lambda f: 2)
        assert not pred.matches(lambda f: 3)

    def test_mixed_and_or(self):
        pred = (gt("a", 10) & lt("a", 20)) | eq("a", 99)
        assert pred.matches(lambda f: 15)
        assert pred.matches(lambda f: 99)
        assert not pred.matches(lambda f: 30)

    def test_equality_keys_detection(self):
        assert (eq("x", 1) | eq("x", 2)).equality_keys() == ("x", (1, 2))
        assert (eq("x", 1) | eq("y", 2)).equality_keys() is None
        assert (eq("x", 1) | gt("x", 2)).equality_keys() is None

    def test_repr(self):
        assert "OR" in repr(eq("x", 1) | eq("x", 2))


class TestEngineSelection:
    def test_or_on_indexed_field_uses_multi_lookup(self, figure1_db):
        plan = figure1_db.optimizer.plan_selection(
            "Employee", eq("Id", 23) | eq("Id", 44)
        )
        assert "IndexMultiLookup" in plan.explain()
        result = figure1_db.execute(plan)
        assert {d["Name"] for d in result.to_dicts()} == {"Dave", "Yaman"}

    def test_or_deduplicates_refs(self, figure1_db):
        result = figure1_db.select(
            "Employee", eq("Id", 23) | eq("Id", 23)
        )
        assert len(result) == 1

    def test_or_on_unindexed_field_scans(self, figure1_db):
        plan = figure1_db.optimizer.plan_selection(
            "Employee", eq("Age", 24) | eq("Age", 47)
        )
        assert "Scan" in plan.explain()
        result = figure1_db.execute(plan)
        assert {d["Name"] for d in result.to_dicts()} == {"Dave", "Jane"}

    def test_heterogeneous_or_scans(self, figure1_db):
        result = figure1_db.select(
            "Employee", lt("Age", 23) | gt("Age", 50)
        )
        assert {d["Name"] for d in result.to_dicts()} == {"Cindy", "Yaman"}

    def test_or_on_fk_field_rewritten(self, figure1_db):
        result = figure1_db.select(
            "Employee", eq("Dept_Id", 459) | eq("Dept_Id", 409)
        )
        assert {d["Name"] for d in result.to_dicts()} == {
            "Dave", "Suzan", "Cindy",
        }


class TestSQLQuery2:
    def test_paper_query_2_verbatim_shape(self, figure1_db):
        """'Retrieve the names of all employees who work in the Toy or
        Shoe Departments' — one statement, two index lookups plus a
        pointer join."""
        rows = figure1_db.sql(
            "SELECT Employee.Name FROM Employee "
            "JOIN Department ON Dept_Id = Id "
            "WHERE Department.Name = 'Toy' OR Department.Name = 'Shoe'"
        ).materialize()
        assert sorted(rows) == [("Cindy",), ("Dave",), ("Suzan",)]

    def test_single_table_or(self, figure1_db):
        rows = figure1_db.sql(
            "SELECT Name FROM Employee WHERE Id = 23 OR Id = 44"
        ).materialize()
        assert sorted(rows) == [("Dave",), ("Yaman",)]

    def test_and_binds_tighter_than_or(self, figure1_db):
        rows = figure1_db.sql(
            "SELECT Name FROM Employee WHERE Age > 40 AND Id = 44 "
            "OR Age < 23"
        ).materialize()
        assert sorted(rows) == [("Cindy",), ("Yaman",)]

    def test_cross_table_or_over_join(self, figure1_db):
        rows = figure1_db.sql(
            "SELECT Employee.Name FROM Employee "
            "JOIN Department ON Dept_Id = Id "
            "WHERE Age > 50 OR Department.Name = 'Shoe'"
        ).materialize()
        assert sorted(rows) == [("Cindy",), ("Yaman",)]

    def test_or_with_aggregates(self, figure1_db):
        row = figure1_db.sql(
            "SELECT COUNT(*) AS n FROM Employee "
            "WHERE Age < 23 OR Age > 50"
        ).to_dicts()[0]
        assert row["n"] == 2

    def test_or_with_between(self, figure1_db):
        rows = figure1_db.sql(
            "SELECT Name FROM Employee "
            "WHERE Age BETWEEN 22 AND 24 OR Age BETWEEN 47 AND 54"
        ).materialize()
        assert sorted(rows) == [("Cindy",), ("Dave",), ("Jane",), ("Yaman",)]
