"""Tests for multi-way join chains through the SQL layer."""

import pytest

from repro import MainMemoryDatabase, QueryError


@pytest.fixture
def db():
    database = MainMemoryDatabase()
    database.sql("CREATE TABLE Region (Id INT, Name TEXT, PRIMARY KEY (Id))")
    database.sql(
        "CREATE TABLE Customer (Id INT, Name TEXT, "
        "Region INT REFERENCES Region(Id), PRIMARY KEY (Id))"
    )
    database.sql(
        "CREATE TABLE OrderLine (Id INT, "
        "Customer INT REFERENCES Customer(Id), Amount INT, "
        "PRIMARY KEY (Id))"
    )
    database.sql("INSERT INTO Region VALUES (1, 'north'), (2, 'south')")
    database.sql(
        "INSERT INTO Customer VALUES (10, 'alice', 1), (11, 'bob', 2), "
        "(12, 'carol', 1)"
    )
    database.sql(
        "INSERT INTO OrderLine VALUES (100, 10, 5), (101, 11, 7), "
        "(102, 12, 9), (103, 10, 3)"
    )
    return database


class TestThreeWayChains:
    def test_chain_follows_both_fk_pointers(self, db):
        rows = db.sql(
            "SELECT OrderLine.Id, Region.Name FROM OrderLine "
            "JOIN Customer ON Customer = Id "
            "JOIN Region ON Region = Region.Id"
        ).materialize()
        assert sorted(rows) == [
            (100, "north"), (101, "south"), (102, "north"), (103, "north"),
        ]

    def test_chain_with_aggregation(self, db):
        rows = db.sql(
            "SELECT Region.Name, SUM(Amount) AS total FROM OrderLine "
            "JOIN Customer ON Customer = Id "
            "JOIN Region ON Region = Region.Id "
            "GROUP BY Region.Name ORDER BY total DESC"
        ).to_dicts()
        assert rows == [
            {"Region.Name": "north", "total": 17},
            {"Region.Name": "south", "total": 7},
        ]

    def test_base_table_condition_pushed_down(self, db):
        rows = db.sql(
            "SELECT OrderLine.Id FROM OrderLine "
            "JOIN Customer ON Customer = Id "
            "JOIN Region ON Region = Region.Id "
            "WHERE Amount > 4"
        ).materialize()
        assert sorted(rows) == [(100,), (101,), (102,)]

    def test_mid_chain_condition_filters_after_join(self, db):
        rows = db.sql(
            "SELECT OrderLine.Id FROM OrderLine "
            "JOIN Customer ON Customer = Id "
            "JOIN Region ON Region = Region.Id "
            "WHERE Customer.Name = 'alice'"
        ).materialize()
        assert sorted(rows) == [(100,), (103,)]

    def test_fk_condition_on_mid_table(self, db):
        rows = db.sql(
            "SELECT OrderLine.Id FROM OrderLine "
            "JOIN Customer ON Customer = Id "
            "JOIN Region ON Region = Region.Id "
            "WHERE Customer.Region = 1"
        ).materialize()
        assert sorted(rows) == [(100,), (102,), (103,)]

    def test_forced_methods_per_clause(self, db):
        rows = db.sql(
            "SELECT OrderLine.Id FROM OrderLine "
            "JOIN Customer ON Customer = Id USING hash "
            "JOIN Region ON Region = Region.Id USING nested_loops"
        ).materialize()
        assert len(rows) == 4

    def test_ambiguous_bare_column_rejected(self, db):
        with pytest.raises(QueryError):
            db.sql(
                "SELECT OrderLine.Id FROM OrderLine "
                "JOIN Customer ON Customer = Id "
                "JOIN Region ON Region = Region.Id "
                "WHERE Name = 'alice'"  # Customer.Name or Region.Name?
            )

    def test_unknown_qualifier_rejected(self, db):
        with pytest.raises(QueryError):
            db.sql(
                "SELECT OrderLine.Id FROM OrderLine "
                "JOIN Customer ON Customer = Id "
                "JOIN Region ON Region = Region.Id "
                "WHERE Warehouse.Name = 'x'"
            )

    def test_nonequi_step_in_chain(self, db):
        # Orders joined to customers whose ids exceed the amount — a
        # nonsensical business question but a meaningful operator test.
        rows = db.sql(
            "SELECT OrderLine.Id FROM OrderLine "
            "JOIN Customer ON Customer = Id "
            "JOIN Region ON Amount < Region.Id"
        ).materialize()
        # Amount < region id (1 or 2): no amounts below 2 except none...
        # amounts are 5,7,9,3 -> none < 2; empty result.
        assert rows == []

    def test_chain_matches_pairwise_composition(self, db):
        chained = db.sql(
            "SELECT OrderLine.Id, Region.Id FROM OrderLine "
            "JOIN Customer ON Customer = Id "
            "JOIN Region ON Region = Region.Id"
        ).materialize()
        # Compose manually: orders->customers then customers->regions.
        first = db.sql(
            "SELECT OrderLine.Id, Customer.Region FROM OrderLine "
            "JOIN Customer ON Customer = Id"
        ).to_dicts(resolve_refs=True)
        manual = sorted(
            # "Region" does not collide in the two-way join, so its
            # output label stays unqualified.
            (d["OrderLine.Id"], d["Region"]) for d in first
        )
        assert sorted(chained) == manual
