"""Unit tests for schemas, field types, and foreign-key declarations."""

import pytest

from repro.errors import SchemaError
from repro.storage.schema import Field, FieldType, ForeignKey, Schema


class TestFieldType:
    def test_inline_bytes_follow_era_sizes(self):
        assert FieldType.INT.inline_bytes == 4
        assert FieldType.FLOAT.inline_bytes == 8
        assert FieldType.STR.inline_bytes == 6  # heap ptr + length
        assert FieldType.REF.inline_bytes == 4  # one tuple pointer

    def test_validate_accepts_matching_values(self):
        FieldType.INT.validate(42)
        FieldType.FLOAT.validate(3.14)
        FieldType.FLOAT.validate(3)  # ints satisfy float columns
        FieldType.STR.validate("hello")

    def test_validate_accepts_none_everywhere(self):
        for field_type in FieldType:
            field_type.validate(None)

    def test_validate_rejects_wrong_types(self):
        with pytest.raises(SchemaError):
            FieldType.INT.validate("nope")
        with pytest.raises(SchemaError):
            FieldType.STR.validate(7)
        with pytest.raises(SchemaError):
            FieldType.FLOAT.validate("1.5")


class TestField:
    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Field("", FieldType.INT)

    def test_foreign_key_on_ref_type_rejected(self):
        with pytest.raises(SchemaError):
            Field("d", FieldType.REF, references=ForeignKey("Dept", "Id"))

    def test_foreign_key_declaration(self):
        field = Field(
            "Dept_Id", FieldType.INT, references=ForeignKey("Department", "Id")
        )
        assert field.references.relation == "Department"
        assert field.references.field == "Id"


class TestSchema:
    def _schema(self) -> Schema:
        return Schema(
            [
                Field("Name", FieldType.STR),
                Field("Id", FieldType.INT),
                Field(
                    "Dept_Id",
                    FieldType.INT,
                    references=ForeignKey("Department", "Id"),
                ),
            ]
        )

    def test_requires_at_least_one_field(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Field("x", FieldType.INT), Field("x", FieldType.INT)])

    def test_names_in_order(self):
        assert self._schema().names == ["Name", "Id", "Dept_Id"]

    def test_position_lookup(self):
        schema = self._schema()
        assert schema.position("Name") == 0
        assert schema.position("Dept_Id") == 2

    def test_unknown_field_raises(self):
        with pytest.raises(SchemaError):
            self._schema().field("Nope")
        with pytest.raises(SchemaError):
            self._schema().position("Nope")

    def test_foreign_keys_listed(self):
        fks = self._schema().foreign_keys()
        assert [f.name for f in fks] == ["Dept_Id"]

    def test_physical_converts_fk_to_ref(self):
        physical = self._schema().physical()
        assert physical.field("Dept_Id").type is FieldType.REF
        assert physical.field("Name").type is FieldType.STR

    def test_fixed_slot_bytes(self):
        # STR(6) + INT(4) + REF(4) = 14 under the physical layout.
        assert self._schema().fixed_slot_bytes() == 14

    def test_validate_row_checks_arity(self):
        with pytest.raises(SchemaError):
            self._schema().validate_row(["x", 1])

    def test_validate_row_checks_types(self):
        with pytest.raises(SchemaError):
            self._schema().validate_row([1, 1, 1])

    def test_validate_row_accepts_good_row(self):
        self._schema().validate_row(["Dave", 23, 459])

    def test_equality_by_fields(self):
        assert self._schema() == self._schema()
        other = Schema([Field("Name", FieldType.STR)])
        assert self._schema() != other

    def test_len_and_iter(self):
        schema = self._schema()
        assert len(schema) == 3
        assert [f.name for f in schema] == schema.names
