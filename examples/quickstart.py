"""Quickstart: create a memory-resident database, query it, transact.

Run:  python examples/quickstart.py
"""

from repro import (
    Field,
    FieldType,
    ForeignKey,
    MainMemoryDatabase,
    between,
    eq,
    gt,
)


def main() -> None:
    db = MainMemoryDatabase()

    # --- schema ------------------------------------------------------- #
    # Every relation gets a unique T-Tree primary index automatically
    # (relations may only be accessed through an index).
    db.create_relation(
        "Department",
        [Field("Name", FieldType.STR), Field("Id", FieldType.INT)],
        primary_key="Id",
    )
    db.create_relation(
        "Employee",
        [
            Field("Name", FieldType.STR),
            Field("Id", FieldType.INT),
            Field("Age", FieldType.INT),
            # A Date-style foreign key: stored as a tuple pointer, which
            # is what makes the precomputed join possible.
            Field("Dept_Id", FieldType.INT,
                  references=ForeignKey("Department", "Id")),
        ],
        primary_key="Id",
    )

    # --- data --------------------------------------------------------- #
    for name, dept_id in [("Toy", 459), ("Shoe", 409), ("Linen", 411)]:
        db.insert("Department", [name, dept_id])
    for row in [
        ("Dave", 23, 24, 459),
        ("Suzan", 12, 27, 459),
        ("Yaman", 44, 54, 411),
        ("Jane", 43, 47, 411),
        ("Cindy", 22, 22, 409),
    ]:
        db.insert("Employee", list(row))

    # --- selection ----------------------------------------------------- #
    # The optimizer picks the access path: T-Tree exact lookup here.
    print("Employee with Id 44:")
    for row in db.select("Employee", eq("Id", 44)).to_dicts(resolve_refs=True):
        print("  ", row)

    # Range predicates use the ordered index.
    db.create_index("Employee", "by_age", "Age", kind="ttree")
    print("Employees aged 24-47:")
    for row in db.select(
        "Employee", between("Age", 24, 47)
    ).to_dicts(resolve_refs=True):
        print("  ", row)

    # --- join ----------------------------------------------------------- #
    # The foreign key makes this a precomputed (pointer-following) join.
    result = db.join(
        "Employee", "Department", on=("Dept_Id", "Id"),
        outer_predicate=gt("Age", 25),
    )
    report = db.project(result, ["Employee.Name", "Age", "Department.Name"])
    print("Employees over 25 with their departments:")
    for row in report.to_dicts():
        print("  ", row)

    # --- projection with duplicate elimination -------------------------- #
    departments_in_use = db.project(
        db.select("Employee"), ["Dept_Id"], deduplicate=True
    )
    print(f"Departments with employees: {len(departments_in_use)}")

    # --- transactions ---------------------------------------------------- #
    # Strict 2PL at partition granularity, deferred updates.
    with db.begin() as txn:
        db.insert("Employee", ["Zoe", 99, 31, 409], txn=txn)
        # Not visible until commit (deferred updates).
        assert len(db.select("Employee", eq("Id", 99))) == 0
    assert len(db.select("Employee", eq("Id", 99))) == 1
    print("Transaction committed; Zoe hired.")

    txn = db.begin()
    db.insert("Employee", ["Ghost", 100, 30, 409], txn=txn)
    txn.abort()
    assert len(db.select("Employee", eq("Id", 100))) == 0
    print("Transaction aborted; no trace of Ghost.")


if __name__ == "__main__":
    main()
