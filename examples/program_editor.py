"""A language-based editor backed by the MM-DBMS (the [HoT85] workload).

The paper's introduction motivates memory-resident relational storage with
emerging applications: "Horwitz and Teitelbaum have proposed using
relational storage for program information in language-based editors ...
Linton has also proposed the use of a database system as the basis for
constructing program development environments."

This example models a small program-development environment: relations
for source files, procedures, and cross-references (which procedure calls
which), kept incrementally up to date as the "editor" mutates the
program, and queried with the kinds of questions an IDE asks — all
through the paper's machinery (T-Tree indexes, hash indexes, pointer
joins, duplicate elimination).

Run:  python examples/program_editor.py
"""

import random

from repro import (
    Field,
    FieldType,
    ForeignKey,
    MainMemoryDatabase,
    eq,
    gt,
)

N_FILES = 12
N_PROCEDURES = 300
N_CALLS = 1500


def build_environment(rng: random.Random) -> MainMemoryDatabase:
    db = MainMemoryDatabase()
    db.create_relation(
        "SourceFile",
        [
            Field("Id", FieldType.INT),
            Field("Path", FieldType.STR),
            Field("Lines", FieldType.INT),
        ],
        primary_key="Id",
    )
    db.create_relation(
        "Procedure",
        [
            Field("Id", FieldType.INT),
            Field("Name", FieldType.STR),
            Field("File", FieldType.INT,
                  references=ForeignKey("SourceFile", "Id")),
            Field("FirstLine", FieldType.INT),
            Field("Complexity", FieldType.INT),
        ],
        primary_key="Id",
    )
    # Call graph: Caller and Callee are both foreign keys into Procedure,
    # materialised as tuple pointers — edge traversal is pointer chasing.
    db.create_relation(
        "Call",
        [
            Field("Id", FieldType.INT),
            Field("Caller", FieldType.INT,
                  references=ForeignKey("Procedure", "Id")),
            Field("Callee", FieldType.INT,
                  references=ForeignKey("Procedure", "Id")),
            Field("Line", FieldType.INT),
        ],
        primary_key="Id",
    )
    # Secondary indexes an editor needs: name lookup must be exact-match
    # fast (hash), line ranges need order (T-Tree).
    db.create_index("Procedure", "by_name", "Name",
                    kind="modified_linear_hash")
    db.create_index("Procedure", "by_line", "FirstLine", kind="ttree")
    db.create_index("Call", "by_caller", "Caller",
                    kind="modified_linear_hash")
    db.create_index("Call", "by_callee", "Callee",
                    kind="modified_linear_hash")

    for file_id in range(N_FILES):
        db.insert(
            "SourceFile", [file_id, f"src/module_{file_id}.c",
                           rng.randrange(200, 2000)]
        )
    for proc_id in range(N_PROCEDURES):
        db.insert(
            "Procedure",
            [
                proc_id,
                f"proc_{proc_id}",
                rng.randrange(N_FILES),
                rng.randrange(1, 1800),
                rng.randrange(1, 60),
            ],
        )
    for call_id in range(N_CALLS):
        db.insert(
            "Call",
            [
                call_id,
                rng.randrange(N_PROCEDURES),
                rng.randrange(N_PROCEDURES),
                rng.randrange(1, 1800),
            ],
        )
    return db


def who_calls(db: MainMemoryDatabase, name: str) -> list:
    """IDE query: find all callers of a procedure, by name.

    Hash lookup on the name, then a pointer join from Call.Callee
    (exact-match pointer comparison) back to Procedure.
    """
    target = db.select("Procedure", eq("Name", name))
    if not len(target):
        return []
    target_ref = target[0][0]
    call_index = db.relation("Call").index("by_callee")
    calls = call_index.search_all(target_ref)
    caller_names = []
    for call_ref in calls:
        caller_ptr = db.relation("Call").read_field(call_ref, "Caller")
        caller_names.append(
            db.relation("Procedure").read_field(caller_ptr, "Name")
        )
    return sorted(set(caller_names))


def procedures_in_range(db, low, high):
    """IDE query: which procedures start between two lines (T-Tree range)."""
    from repro import between

    result = db.select("Procedure", between("FirstLine", low, high))
    return [d["Name"] for d in result.to_dicts()]


def hotspots(db, threshold):
    """IDE query: files containing complex procedures (join + dedupe)."""
    complex_procs = db.join(
        "Procedure", "SourceFile", on=("File", "Id"),
        outer_predicate=gt("Complexity", threshold),
    )
    files = db.project(complex_procs, ["Path"], deduplicate=True)
    return sorted(d["Path"] for d in files.to_dicts())


def main() -> None:
    rng = random.Random(60)
    db = build_environment(rng)

    # The editor "renames" a procedure: a plain indexed update.
    victim = db.relation("Procedure").index("Procedure_pk").search(42)
    db.update("Procedure", victim, "Name", "renamed_proc")
    assert who_calls(db, "proc_42") == []  # old name gone from the index

    callers = who_calls(db, "renamed_proc")
    print(f"Callers of renamed_proc: {len(callers)} distinct procedures")
    print("  ", callers[:8], "...")

    nearby = procedures_in_range(db, 100, 160)
    print(f"Procedures starting on lines 100-160: {len(nearby)}")

    hot = hotspots(db, threshold=50)
    print(f"Files containing very complex procedures: {hot}")

    # Editing session: delete a procedure and its call edges, insert a
    # replacement — the cross-reference indexes stay consistent.
    dead = db.relation("Procedure").index("by_name").search("proc_99")
    for index_name in ("by_caller", "by_callee"):
        for call_ref in list(db.relation("Call").index(index_name).search_all(dead)):
            db.delete("Call", call_ref)
    db.delete("Procedure", dead)
    db.insert("Procedure", [999, "proc_99_v2", 0, 10, 5])
    assert who_calls(db, "proc_99") == []
    print("Refactor applied; cross-references consistent.")


if __name__ == "__main__":
    main()
