"""Figure 1 and the Section 2.1 queries, end to end.

Reconstructs the paper's Employee/Department example exactly — including
the result list of Figure 1 (pairs of tuple pointers plus a result
descriptor) — and runs Query 1 (precomputed join) and Query 2
(pointer-comparison join).

Run:  python examples/employee_department.py
"""

from repro import (
    Field,
    FieldType,
    ForeignKey,
    MainMemoryDatabase,
    eq,
    gt,
)
from repro.query.plan import REF_COLUMN, JoinNode, ScanNode


def build_figure1() -> MainMemoryDatabase:
    db = MainMemoryDatabase()
    db.create_relation(
        "Department",
        [Field("Name", FieldType.STR), Field("Id", FieldType.INT)],
        primary_key="Id",
    )
    db.create_relation(
        "Employee",
        [
            Field("Name", FieldType.STR),
            Field("Id", FieldType.INT),
            Field("Age", FieldType.INT),
            Field("Dept_Id", FieldType.INT,
                  references=ForeignKey("Department", "Id")),
        ],
        primary_key="Id",
    )
    # Figure 1's rows.
    for name, dept_id in [("Toy", 459), ("Shoe", 409), ("Linen", 411),
                          ("Paint", 455)]:
        db.insert("Department", [name, dept_id])
    for name, emp_id, age, dept_id in [
        ("Dave", 23, 24, 459),
        ("Suzan", 12, 27, 459),
        ("Yaman", 44, 54, 411),
        ("Jane", 43, 47, 411),
        ("Cindy", 22, 22, 409),
    ]:
        db.insert("Employee", [name, emp_id, age, dept_id])
    return db


def show_pointer_substitution(db: MainMemoryDatabase) -> None:
    """Foreign keys are stored as tuple pointers (Section 2.1)."""
    employee = db.relation("Employee")
    print("Stored Employee rows (note Dept_Id is a tuple pointer):")
    for ref in employee.index("Employee_pk").scan():
        physical = employee.fetch(ref)
        print(f"  {ref}: {physical}")
    print()


def query_1(db: MainMemoryDatabase) -> None:
    """Query 1: Employee name, age, and Department name for employees
    over age 65 (the paper's threshold; we use 25 so the tiny example has
    results).  The optimizer picks the precomputed join."""
    plan = db.optimizer.plan_join(
        "Employee", "Department", "Dept_Id", "Id",
        outer_predicate=gt("Age", 25),
    )
    print("Query 1 plan:")
    print(plan.explain())
    result = db.execute(plan)
    # The result is a temporary list: pointer pairs + a result descriptor.
    print("Result list rows (pairs of tuple pointers):")
    for row in result:
        print("  ", row)
    print("Result descriptor columns:", result.descriptor.column_names)
    report = db.project(result, ["Employee.Name", "Age", "Department.Name"])
    print("Materialised (the paper's Result Descriptor fields):")
    for row in report.materialize():
        print("  ", row)
    print()


def query_2(db: MainMemoryDatabase) -> None:
    """Query 2: names of employees in the Toy or Shoe departments.

    "Comparisons will be performed using the tuple pointers for the
    selection's result and the Department tuple pointers in the Employee
    relation" — the join key is the pointer itself, not a data value.
    """
    names = set()
    for dept_name in ("Toy", "Shoe"):
        plan = JoinNode(
            ScanNode("Employee"),
            ScanNode("Department", eq("Name", dept_name)),
            "Dept_Id",       # the stored pointer field
            REF_COLUMN,      # the department tuple's own pointer
            "hash",
        )
        result = db.execute(plan)
        names |= {d["Employee.Name"] for d in result.to_dicts()}
    print(f"Query 2 — employees in Toy or Shoe: {sorted(names)}")

    # The same query, stated the way the paper states it — through SQL.
    rows = db.sql(
        "SELECT Employee.Name FROM Employee "
        "JOIN Department ON Dept_Id = Id "
        "WHERE Department.Name = 'Toy' OR Department.Name = 'Shoe'"
    ).materialize()
    print(f"Query 2 via SQL:                    {sorted(n for (n,) in rows)}")
    print()


def main() -> None:
    db = build_figure1()
    show_pointer_substitution(db)
    query_1(db)
    query_2(db)


if __name__ == "__main__":
    main()
