"""Figure 2 recovery drill: checkpoint, log, crash, working-set restart.

Walks the paper's recovery design end to end:

1. build a durable database (stable log buffer + log device + disk copy);
2. checkpoint, then keep updating (updates go to the stable log buffer
   before being applied — IMS FASTPATH style);
3. let the log device accumulate changes and propagate some of them;
4. crash (main memory lost; disk copy, stable buffer, and the log
   device's change-accumulation log survive);
5. restart with only the hot partitions (the *working set*), resume
   queries immediately, then reload the rest in the background.

Run:  python examples/recovery_drill.py
"""

import random

from repro import Field, FieldType, MainMemoryDatabase, between, eq

N_ACCOUNTS = 2000


def build_bank() -> MainMemoryDatabase:
    db = MainMemoryDatabase(durable=True)
    db.create_relation(
        "Account",
        [
            Field("Id", FieldType.INT),
            Field("Owner", FieldType.STR),
            Field("Balance", FieldType.INT),
        ],
        primary_key="Id",
    )
    for account_id in range(N_ACCOUNTS):
        db.insert(
            "Account", [account_id, f"owner-{account_id}", 1000]
        )
    return db


def main() -> None:
    rng = random.Random(7)
    db = build_bank()
    manager = db.recovery

    # --- checkpoint ------------------------------------------------------ #
    written = db.checkpoint()
    print(f"Checkpoint: {written} partitions written to the disk copy "
          f"({manager.disk.total_bytes():,} bytes)")

    # --- post-checkpoint transactions ------------------------------------ #
    account_index = db.relation("Account").index("Account_pk")
    for __ in range(200):
        payer = account_index.search(rng.randrange(N_ACCOUNTS))
        payee = account_index.search(rng.randrange(N_ACCOUNTS))
        with db.begin() as txn:
            payer_balance = db.fetch("Account", payer, txn=txn)["Balance"]
            payee_balance = db.fetch("Account", payee, txn=txn)["Balance"]
            db.update("Account", payer, "Balance", payer_balance - 10, txn=txn)
            db.update("Account", payee, "Balance", payee_balance + 10, txn=txn)
    total_before = sum(
        d["Balance"] for d in db.select("Account").to_dicts()
    )
    print(f"Ran 200 transfer transactions; total balance {total_before:,}")
    print(f"Stable log buffer: {manager.stable_log.records_written} records "
          f"written, {manager.stable_log.commits} commits")

    # --- partial propagation --------------------------------------------- #
    moved = db.propagate_log(max_partitions=2)
    print(f"Log device propagated {moved} records to the disk copy; "
          f"{manager.log_device.pending_count()} still accumulated")

    # --- crash ------------------------------------------------------------ #
    db.crash()
    print("\nCRASH — main memory lost.\n")

    # --- working-set-first restart ---------------------------------------- #
    all_parts = manager.disk.partition_keys()
    working_set = all_parts[: max(1, len(all_parts) // 4)]
    stats = db.recover(working_set=working_set)
    print(f"Restart: {stats.working_set_partitions} working-set partitions "
          f"loaded, {stats.log_records_merged} log records merged on the "
          f"fly, {manager.background_remaining} partitions queued for "
          "background reload")

    # Queries against working-set data run immediately.
    hot = db.select("Account", between("Id", 0, 50))
    print(f"Hot query answered during background reload: "
          f"{len(hot)} accounts visible")

    # Background loader finishes the rest.
    loaded = db.finish_recovery()
    print(f"Background reload finished: {loaded} more partitions")

    total_after = sum(
        d["Balance"] for d in db.select("Account").to_dicts()
    )
    print(f"Total balance after recovery: {total_after:,} "
          f"({'consistent' if total_after == total_before else 'LOST MONEY'})")
    assert total_after == total_before


if __name__ == "__main__":
    main()
