"""An analytics session through the SQL front-end.

Builds a small order-processing schema, loads data, and answers the kind
of questions a reporting workload asks — every query routed through the
paper's machinery (check the EXPLAIN outputs: precomputed joins, hash
lookups, T-Tree ranges).

Run:  python examples/sql_analytics.py
"""

import random

from repro import MainMemoryDatabase

N_CUSTOMERS = 200
N_PRODUCTS = 50
N_ORDERS = 2000


def load(db: MainMemoryDatabase) -> None:
    db.sql(
        "CREATE TABLE Customer (Id INT, Name TEXT, Region TEXT, "
        "PRIMARY KEY (Id))"
    )
    db.sql(
        "CREATE TABLE Product (Id INT, Name TEXT, Price INT, "
        "PRIMARY KEY (Id))"
    )
    db.sql(
        "CREATE TABLE OrderLine (Id INT, "
        "Customer INT REFERENCES Customer(Id), "
        "Product INT REFERENCES Product(Id), "
        "Quantity INT, PRIMARY KEY (Id))"
    )
    # Secondary access paths: region reports need ordering on quantity,
    # product lookups want exact-match hashing.
    db.sql("CREATE INDEX ol_qty ON OrderLine (Quantity) USING ttree")
    db.sql("CREATE INDEX prod_name ON Product (Name) "
           "USING modified_linear_hash")

    rng = random.Random(1986)
    regions = ["north", "south", "east", "west"]
    for cid in range(N_CUSTOMERS):
        db.sql(
            f"INSERT INTO Customer VALUES ({cid}, 'cust-{cid}', "
            f"'{regions[cid % len(regions)]}')"
        )
    for pid in range(N_PRODUCTS):
        db.sql(
            f"INSERT INTO Product VALUES ({pid}, 'widget-{pid}', "
            f"{rng.randrange(5, 500)})"
        )
    for oid in range(N_ORDERS):
        db.sql(
            f"INSERT INTO OrderLine VALUES ({oid}, "
            f"{rng.randrange(N_CUSTOMERS)}, {rng.randrange(N_PRODUCTS)}, "
            f"{rng.randrange(1, 20)})"
        )


def main() -> None:
    db = MainMemoryDatabase()
    load(db)

    print("How many order lines?")
    print("  ", db.sql("SELECT COUNT(*) FROM OrderLine").to_dicts())

    print("\nBiggest single-line quantities (T-Tree range + ORDER BY):")
    for row in db.sql(
        "SELECT Id, Quantity FROM OrderLine WHERE Quantity >= 18 "
        "ORDER BY Quantity DESC LIMIT 5"
    ).to_dicts():
        print("  ", row)
    print("  plan:", db.sql(
        "EXPLAIN SELECT Id FROM OrderLine WHERE Quantity >= 18"
    ).strip())

    print("\nOrder volume by region (precomputed join + GROUP BY):")
    for row in db.sql(
        "SELECT Region, COUNT(*) AS orders, SUM(Quantity) AS units "
        "FROM OrderLine JOIN Customer ON Customer = Id "
        "GROUP BY Region ORDER BY units DESC"
    ).to_dicts():
        print("  ", row)
    print("  plan:", db.sql(
        "EXPLAIN SELECT Region FROM OrderLine JOIN Customer ON Customer = Id"
    ).split("\n")[0].strip())

    print("\nExact-match product lookup (hash index):")
    print("  ", db.sql(
        "SELECT Id, Price FROM Product WHERE Name = 'widget-7'"
    ).to_dicts())
    print("  plan:", db.sql(
        "EXPLAIN SELECT Id FROM Product WHERE Name = 'widget-7'"
    ).strip())

    print("\nAverage order size per product, top 3:")
    for row in db.sql(
        "SELECT Product.Name, AVG(Quantity) AS avg_qty "
        "FROM OrderLine JOIN Product ON Product = Id "
        "GROUP BY Product.Name ORDER BY avg_qty DESC LIMIT 3"
    ).to_dicts():
        print("  ", row)

    print("\nRetire a product line (cascade by hand):")
    target = db.sql("SELECT Id FROM Product WHERE Name = 'widget-0'")
    product_id = target.materialize()[0][0]
    removed = db.sql(f"DELETE FROM OrderLine WHERE Product = {product_id}")
    print(f"   (cannot delete the product while {removed} lines pointed "
          "at it — lines removed first)")
    db.sql(f"DELETE FROM Product WHERE Id = {product_id}")
    print("   remaining products:",
          db.sql("SELECT COUNT(*) FROM Product").to_dicts())


if __name__ == "__main__":
    main()
