"""Transactions: strict 2PL with deferred updates (paper Section 2.4).

The paper adopts the IMS FASTPATH discipline: "The MM-DBMS writes all log
information directly into a stable log buffer before the actual update is
done to the database ...  If the transaction aborts, then the log entry is
removed and no undo is needed.  If the transaction commits, then the
updates are propagated to the database."

A :class:`Transaction` therefore buffers *intentions* (closures that
perform the actual relation updates).  Nothing touches the database until
commit; abort simply discards the intentions and the buffered log records
— no undo.  Reads inside a transaction see the pre-transaction state (the
deferred-update model's documented semantics).

Locks follow strict two-phase locking at partition granularity and are
released only at commit/abort.
"""

from __future__ import annotations

import enum
import threading
from typing import Any, Callable, List, Optional

from repro.errors import TransactionAborted, TransactionError
from repro.txn.locks import LockManager, LockMode, LockResource


class TxnState(enum.Enum):
    """Transaction lifecycle states."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """One unit of work: locks + deferred update intentions."""

    def __init__(self, txn_id: int, manager: "TransactionManager") -> None:
        self.id = txn_id
        self._manager = manager
        self.state = TxnState.ACTIVE
        self._intentions: List[Callable[[], None]] = []
        # Engine hooks: invoked after the intentions are applied (commit)
        # or discarded (abort), while locks are still held.  The durable
        # engine uses them to seal / drop this transaction's log records.
        self.on_commit: Optional[Callable[["Transaction"], None]] = None
        self.on_abort: Optional[Callable[["Transaction"], None]] = None

    # ------------------------------------------------------------------ #
    # state guards
    # ------------------------------------------------------------------ #

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionAborted(
                f"txn {self.id} is {self.state.value}, not active"
            )

    @property
    def active(self) -> bool:
        """Whether the transaction can still do work."""
        return self.state is TxnState.ACTIVE

    # ------------------------------------------------------------------ #
    # locking
    # ------------------------------------------------------------------ #

    def lock(self, resource: LockResource, mode: LockMode) -> None:
        """Acquire a partition or relation lock (2PL growing phase)."""
        self._require_active()
        try:
            self._manager.lock_manager.acquire(self.id, resource, mode)
        except TransactionError:
            # Deadlock victims must abort; make that state visible.
            self.state = TxnState.ABORTED
            if self.on_abort is not None:
                self.on_abort(self)
            self._manager.lock_manager.release_all(self.id)
            self._manager._finish(self)
            raise

    def lock_shared(self, relation: str, partition_id: Optional[int]) -> None:
        """Shared lock on one partition (or the relation resource)."""
        self.lock((relation, partition_id), LockMode.SHARED)

    def lock_exclusive(self, relation: str, partition_id: Optional[int]) -> None:
        """Exclusive lock on one partition (or the relation resource)."""
        self.lock((relation, partition_id), LockMode.EXCLUSIVE)

    # ------------------------------------------------------------------ #
    # deferred updates
    # ------------------------------------------------------------------ #

    def add_intention(self, apply: Callable[[], None]) -> None:
        """Queue a deferred update to run at commit."""
        self._require_active()
        self._intentions.append(apply)

    @property
    def intention_count(self) -> int:
        """Number of queued deferred updates."""
        return len(self._intentions)

    # ------------------------------------------------------------------ #
    # outcome
    # ------------------------------------------------------------------ #

    def commit(self) -> None:
        """Apply the intentions and release locks.

        The engine's change listener turns each applied intention into
        log records in the stable log buffer; the commit record follows
        the last update record, after which the log device may propagate.
        """
        self._require_active()
        undos: List[Callable[[], None]] = []
        try:
            for apply in self._intentions:
                undo = apply()
                if callable(undo):
                    undos.append(undo)
        except Exception:
            # A failed intention aborts the transaction.  Intentions that
            # already applied are compensated in reverse order, then the
            # abort hook drops every buffered log record (including the
            # compensations), leaving both memory and durable state at
            # the pre-transaction point.
            for undo in reversed(undos):
                undo()
            self.state = TxnState.ABORTED
            if self.on_abort is not None:
                self.on_abort(self)
            self._manager.lock_manager.release_all(self.id)
            self._manager._finish(self)
            raise
        self.state = TxnState.COMMITTED
        if self.on_commit is not None:
            self.on_commit(self)
        self._manager.lock_manager.release_all(self.id)
        self._manager._finish(self)

    def abort(self) -> None:
        """Discard the intentions; "no undo is needed"."""
        self._require_active()
        self._intentions.clear()
        self.state = TxnState.ABORTED
        if self.on_abort is not None:
            self.on_abort(self)
        self._manager.lock_manager.release_all(self.id)
        self._manager._finish(self)

    # Context-manager sugar: commit on clean exit, abort on exception.
    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self.state is TxnState.ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()
        return False


class TransactionManager:
    """Hands out transaction ids and tracks the active set."""

    def __init__(self, lock_manager: LockManager = None) -> None:
        self.lock_manager = (
            lock_manager if lock_manager is not None else LockManager()
        )
        self._mutex = threading.Lock()
        self._next_id = 1
        self._active: dict = {}

    def begin(self) -> Transaction:
        """Start a new transaction."""
        with self._mutex:
            txn = Transaction(self._next_id, self)
            self._next_id += 1
            self._active[txn.id] = txn
            return txn

    def _finish(self, txn: Transaction) -> None:
        with self._mutex:
            self._active.pop(txn.id, None)

    @property
    def active_count(self) -> int:
        """Number of in-flight transactions."""
        with self._mutex:
            return len(self._active)
