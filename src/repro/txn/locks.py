"""Partition-granularity lock manager with deadlock detection.

Locks are taken on ``(relation, partition_id)`` pairs — the paper's chosen
granularity — plus a per-relation resource (``partition_id=None``) that
guards partition creation and catalog changes.  "A lock table is basically
a hashed relation": the manager is a dict keyed by resource, each entry a
grant list plus a FIFO wait queue.

Shared (S) and exclusive (X) modes with S→X upgrade are supported.  The
manager is thread-safe; a request that must wait blocks on a condition
variable, and a waits-for cycle check runs before blocking so deadlocks
raise :class:`~repro.errors.DeadlockError` in the newcomer instead of
hanging (the victim is the requester, the cheapest policy for the paper's
"transactions will be much shorter" environment).
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import DeadlockError, LockTimeoutError, TransactionError


class LockMode(enum.Enum):
    """Lock modes; partitions are coarse, so two modes suffice."""

    SHARED = "S"
    EXCLUSIVE = "X"

    def compatible(self, other: "LockMode") -> bool:
        """S/S is the only compatible combination."""
        return self is LockMode.SHARED and other is LockMode.SHARED


#: A lockable resource: (relation name, partition id or None for the
#: relation-level resource).
LockResource = Tuple[str, Optional[int]]


@dataclass
class _Grant:
    txn_id: int
    mode: LockMode


@dataclass
class _Waiter:
    txn_id: int
    mode: LockMode
    granted: bool = False
    event: threading.Event = field(default_factory=threading.Event)


class _LockEntry:
    __slots__ = ("grants", "waiters")

    def __init__(self) -> None:
        self.grants: List[_Grant] = []
        self.waiters: List[_Waiter] = []


class LockManager:
    """A strict two-phase-locking lock table."""

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._table: Dict[LockResource, _LockEntry] = {}
        # holdings[txn_id][resource] = mode
        self._holdings: Dict[int, Dict[LockResource, LockMode]] = {}

    # ------------------------------------------------------------------ #
    # acquisition
    # ------------------------------------------------------------------ #

    def acquire(
        self,
        txn_id: int,
        resource: LockResource,
        mode: LockMode,
        timeout: Optional[float] = None,
    ) -> None:
        """Take (or upgrade to) ``mode`` on ``resource`` for ``txn_id``.

        Raises :class:`DeadlockError` when waiting would close a cycle in
        the waits-for graph, or :class:`LockTimeoutError` when ``timeout``
        elapses.  Re-acquiring an already-held equal-or-stronger lock is a
        no-op.
        """
        with self._mutex:
            held = self._holdings.setdefault(txn_id, {})
            current = held.get(resource)
            if current is not None:
                if current is LockMode.EXCLUSIVE or current is mode:
                    return
                # S -> X upgrade request.
            entry = self._table.setdefault(resource, _LockEntry())
            if self._grantable(entry, txn_id, mode):
                self._grant(entry, txn_id, resource, mode)
                return
            blockers = self._blockers(entry, txn_id, mode)
            if self._would_deadlock(txn_id, blockers):
                raise DeadlockError(
                    f"txn {txn_id} waiting on {resource} would deadlock "
                    f"with {sorted(blockers)}"
                )
            waiter = _Waiter(txn_id, mode)
            entry.waiters.append(waiter)
        if not waiter.event.wait(timeout):
            with self._mutex:
                if waiter in entry.waiters:
                    entry.waiters.remove(waiter)
                if not waiter.granted:
                    raise LockTimeoutError(
                        f"txn {txn_id} timed out waiting for {resource}"
                    )
        with self._mutex:
            if not waiter.granted:  # spurious wake after removal
                raise LockTimeoutError(
                    f"txn {txn_id} timed out waiting for {resource}"
                )

    def _grantable(
        self, entry: _LockEntry, txn_id: int, mode: LockMode
    ) -> bool:
        others = [g for g in entry.grants if g.txn_id != txn_id]
        if mode is LockMode.SHARED:
            incompatible = any(
                g.mode is LockMode.EXCLUSIVE for g in others
            )
            # Fairness: do not overtake queued exclusive waiters.
            waiting_x = any(
                w.mode is LockMode.EXCLUSIVE and w.txn_id != txn_id
                for w in entry.waiters
            )
            return not incompatible and not waiting_x
        return not others

    def _grant(
        self,
        entry: _LockEntry,
        txn_id: int,
        resource: LockResource,
        mode: LockMode,
    ) -> None:
        for grant in entry.grants:
            if grant.txn_id == txn_id:
                grant.mode = mode if mode is LockMode.EXCLUSIVE else grant.mode
                break
        else:
            entry.grants.append(_Grant(txn_id, mode))
        self._holdings.setdefault(txn_id, {})[resource] = (
            LockMode.EXCLUSIVE
            if mode is LockMode.EXCLUSIVE
            else self._holdings[txn_id].get(resource, LockMode.SHARED)
        )

    def _blockers(
        self, entry: _LockEntry, txn_id: int, mode: LockMode
    ) -> Set[int]:
        blockers = {
            g.txn_id
            for g in entry.grants
            if g.txn_id != txn_id and not mode.compatible(g.mode)
        }
        if mode is LockMode.SHARED:
            blockers |= {
                w.txn_id
                for w in entry.waiters
                if w.mode is LockMode.EXCLUSIVE and w.txn_id != txn_id
            }
        return blockers

    # ------------------------------------------------------------------ #
    # deadlock detection (waits-for cycle search)
    # ------------------------------------------------------------------ #

    def _waits_for(self) -> Dict[int, Set[int]]:
        graph: Dict[int, Set[int]] = {}
        for entry in self._table.values():
            for waiter in entry.waiters:
                graph.setdefault(waiter.txn_id, set()).update(
                    self._blockers(entry, waiter.txn_id, waiter.mode)
                )
        return graph

    def _would_deadlock(self, txn_id: int, blockers: Set[int]) -> bool:
        graph = self._waits_for()
        graph.setdefault(txn_id, set()).update(blockers)
        # DFS from txn_id looking for a path back to txn_id.
        stack = list(graph.get(txn_id, ()))
        visited: Set[int] = set()
        while stack:
            node = stack.pop()
            if node == txn_id:
                return True
            if node in visited:
                continue
            visited.add(node)
            stack.extend(graph.get(node, ()))
        return False

    # ------------------------------------------------------------------ #
    # release
    # ------------------------------------------------------------------ #

    def release_all(self, txn_id: int) -> None:
        """Release every lock held by ``txn_id`` (end of 2PL)."""
        with self._mutex:
            held = self._holdings.pop(txn_id, {})
            for resource in held:
                entry = self._table.get(resource)
                if entry is None:
                    continue
                entry.grants = [
                    g for g in entry.grants if g.txn_id != txn_id
                ]
                self._wake_waiters(entry, resource)
                if not entry.grants and not entry.waiters:
                    del self._table[resource]

    def _wake_waiters(self, entry: _LockEntry, resource: LockResource) -> None:
        """Grant as many queued waiters as compatibility allows (FIFO)."""
        progressed = True
        while progressed and entry.waiters:
            progressed = False
            waiter = entry.waiters[0]
            if self._grantable_ignoring_queue(entry, waiter):
                entry.waiters.pop(0)
                self._grant(entry, waiter.txn_id, resource, waiter.mode)
                waiter.granted = True
                waiter.event.set()
                progressed = True

    def _grantable_ignoring_queue(
        self, entry: _LockEntry, waiter: _Waiter
    ) -> bool:
        others = [g for g in entry.grants if g.txn_id != waiter.txn_id]
        if waiter.mode is LockMode.SHARED:
            return all(g.mode is LockMode.SHARED for g in others)
        return not others

    # ------------------------------------------------------------------ #
    # introspection (tests / monitoring)
    # ------------------------------------------------------------------ #

    def holdings(self, txn_id: int) -> Dict[LockResource, LockMode]:
        """The locks currently held by ``txn_id`` (a copy)."""
        with self._mutex:
            return dict(self._holdings.get(txn_id, {}))

    def holders(self, resource: LockResource) -> List[Tuple[int, LockMode]]:
        """Current grant list for ``resource``."""
        with self._mutex:
            entry = self._table.get(resource)
            if entry is None:
                return []
            return [(g.txn_id, g.mode) for g in entry.grants]

    def waiting(self, resource: LockResource) -> List[int]:
        """Transaction ids queued on ``resource``."""
        with self._mutex:
            entry = self._table.get(resource)
            if entry is None:
                return []
            return [w.txn_id for w in entry.waiters]
