"""Concurrency control (paper Section 2.4).

"We expect to set locks at the partition level, a fairly coarse level of
granularity, as tuple-level locking would be prohibitively expensive here
(a lock table is basically a hashed relation, so the cost of locking a
tuple would be comparable to the cost of accessing it — thus doubling the
cost of tuple accesses)."
"""

from repro.txn.locks import LockManager, LockMode, LockResource
from repro.txn.transaction import Transaction, TransactionManager, TxnState

__all__ = [
    "LockManager",
    "LockMode",
    "LockResource",
    "Transaction",
    "TransactionManager",
    "TxnState",
]
