"""The Observability facade: tracer + metrics registry + slow-query log.

One instance per ``db.configure_observability()`` call; the instance is
activated process-wide through :mod:`repro.obs.runtime` so that the
engine's instrumentation hooks (which have no database handle) can reach
it.  The facade owns:

* a :class:`~repro.obs.span.SpanTracer` (when ``config.tracing``),
* a :class:`~repro.obs.metrics.MetricsRegistry` (when ``config.metrics``)
  pre-wired with the standard query metrics,
* a bounded slow-query log with two independent triggers: the total-ops
  threshold (the machine-independent analogue of a latency-based slow
  log, in the same spirit as the paper's Section 3.1 operation-count
  validation) and an optional wall-clock threshold for slowness the op
  counts cannot see (pool round-trips, injected latency), and
* a :class:`~repro.obs.recorder.FlightRecorder` (when
  ``config.flight_recorder`` with metrics on) retaining per-statement
  records and per-fingerprint p50/p95/p99 latency profiles.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

from repro.instrument import OpCounters, counters_scope
from repro.obs.config import ObservabilityConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.runtime import NULL_SPAN
from repro.obs.span import Span, SpanTracer


@dataclass(frozen=True)
class SlowQueryEntry:
    """One statement that crossed a slow-query threshold.

    ``trigger`` names which threshold fired: ``"ops"`` (total-ops),
    ``"time"`` (wall-clock), or ``"ops+time"`` (both).
    """

    sql: str
    total_ops: int
    elapsed: float
    unix_time: float
    trigger: str = "ops"


class Observability:
    """Tracing, metrics, and the slow-query log behind one handle."""

    def __init__(self, config: Optional[ObservabilityConfig] = None) -> None:
        self.config = config if config is not None else ObservabilityConfig()
        self.tracer: Optional[SpanTracer] = (
            SpanTracer(self.config.max_recent_spans)
            if self.config.tracing
            else None
        )
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if self.config.metrics else None
        )
        self.slow_queries: deque = deque(maxlen=self.config.max_slow_queries)
        from repro.obs.recorder import FlightRecorder

        self.recorder: Optional[FlightRecorder] = (
            FlightRecorder(
                self.config.max_flight_records,
                self.config.latency_buckets,
                self.config.ops_buckets,
            )
            if self.config.flight_recorder and self.config.metrics
            else None
        )
        #: The engine/worker configuration statements run under, kept
        #: current by the owning database (``configure_execution``); the
        #: flight recorder stamps it into every record.
        self.context: dict = {"engine": "tuple", "workers": 1}

    # ------------------------------------------------------------------ #
    # span plumbing
    # ------------------------------------------------------------------ #

    def span(self, name: str, kind: str = "phase", **attrs: Any):
        """A tracer span context, or the shared no-op when tracing is off."""
        if self.tracer is None:
            return NULL_SPAN
        return self.tracer.span(name, kind, **attrs)

    @contextmanager
    def measure_query(self, sql: str) -> Iterator[Optional[Span]]:
        """Measure one statement end-to-end.

        With tracing on, the body runs inside the root ``query`` span and
        yields it; with tracing off (metrics only), a plain roll-up
        counter scope measures total ops and the body sees ``None``.
        Either way the statement is recorded into the metrics registry
        and, past the ops threshold, the slow-query log.
        """
        if self.tracer is not None:
            root: Optional[Span] = None
            try:
                with self.tracer.span("query", kind="query", sql=sql) as root:
                    yield root
            finally:
                if root is not None:
                    self.record_query(sql, root.elapsed, root.counters)
        else:
            counters = OpCounters()
            start = time.perf_counter()
            try:
                with counters_scope(counters, rollup=True):
                    yield None
            finally:
                self.record_query(
                    sql, time.perf_counter() - start, counters
                )

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #

    def record_query(
        self, sql: str, elapsed: float, counters: OpCounters
    ) -> None:
        """Fold one finished statement into metrics and the slow log."""
        total_ops = counters.total()
        if self.metrics is not None:
            self.metrics.counter(
                "queries_total", "Statements executed through the SQL layer"
            ).inc()
            self.metrics.histogram(
                "query_latency_seconds",
                self.config.latency_buckets,
                "Wall-clock statement latency",
            ).observe(elapsed)
            self.metrics.histogram(
                "query_ops",
                self.config.ops_buckets,
                "Machine-independent operations per statement",
            ).observe(total_ops)
        if self.recorder is not None:
            self.recorder.record(
                sql,
                elapsed,
                counters,
                engine=self.context.get("engine", "tuple"),
                workers=self.context.get("workers", 1),
            )
        ops_threshold = self.config.slow_query_ops
        time_threshold = self.config.slow_query_seconds
        slow_ops = ops_threshold is not None and total_ops >= ops_threshold
        slow_time = time_threshold is not None and elapsed >= time_threshold
        if slow_ops or slow_time:
            trigger = (
                "ops+time" if slow_ops and slow_time
                else ("ops" if slow_ops else "time")
            )
            self.slow_queries.append(
                SlowQueryEntry(
                    sql, total_ops, elapsed, time.time(), trigger
                )
            )
            if self.metrics is not None:
                self.metrics.counter(
                    "slow_queries_total",
                    "Statements at or above a slow-query threshold",
                    trigger=trigger,
                ).inc()

    def metric_inc(self, name: str, amount: int = 1, **labels: Any) -> None:
        """Bump a named counter, silently skipped when metrics are off."""
        if self.metrics is not None:
            self.metrics.counter(name, **labels).inc(amount)

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def last_query_span(self) -> Optional[Span]:
        """Root span of the most recent traced query, or None."""
        return self.tracer.last() if self.tracer is not None else None

    def recent_spans(self) -> List[Span]:
        """Retained root spans, oldest first."""
        if self.tracer is None:
            return []
        return list(self.tracer.recent)

    def export_prometheus(self) -> str:
        """Prometheus text exposition of the registry ('' when off)."""
        return "" if self.metrics is None else self.metrics.export_prometheus()

    def export_jsonl(self) -> str:
        """JSON-lines exposition of the registry ('' when off)."""
        return "" if self.metrics is None else self.metrics.export_jsonl()
