"""Hotspot summary rendering over the flight recorder and telemetry.

``render_report`` turns one :class:`~repro.obs.core.Observability` (and,
when the parallel engine is configured, the scheduler's per-worker
telemetry) into an aligned plain-text report:

* **statement hotspots** — the flight recorder's per-fingerprint
  profiles ranked by total wall-clock, with calls, mean ops, estimated
  p50/p95/p99 latency, and the reuse-layer outcome mix;
* **tail latency** — workload-wide p50/p95/p99 over every recorded
  statement;
* **slow queries** — the most recent slow-log entries with which
  threshold (ops, time, or both) fired;
* **per-worker telemetry** — morsels, busy/queue-wait seconds, and
  deref-cache hit rates per worker pid.

The report is inspection-only: rendering reads retained state and
charges nothing, so it can run mid-benchmark without perturbing counts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


def _fmt_ms(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    return f"{seconds * 1000.0:.3f}ms"


def _fmt_rate(hits: int, misses: int) -> str:
    total = hits + misses
    if total == 0:
        return "-"
    return f"{hits / total * 100.0:.1f}%"


def _clip(text: str, width: int = 48) -> str:
    text = " ".join(text.split())
    return text if len(text) <= width else text[: width - 3] + "..."


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return lines


def render_report(
    obs: Any,
    scheduler_stats: Optional[Dict[str, Any]] = None,
    top: int = 10,
    quarantine: Optional[Dict[str, Any]] = None,
    replication: Optional[Dict[str, Any]] = None,
) -> str:
    """The hotspot summary for one observability instance.

    ``scheduler_stats`` is the shape ``db.scheduler_stats()`` returns —
    the scheduler's run counters plus ``workers`` (per-pid telemetry);
    None (or a stats dict without workers) omits that section.
    ``quarantine`` (the shape of ``db.quarantine_report()``) and
    ``replication`` (``db.replication_state()``) add a degraded-state
    section when either is non-empty.
    """
    lines: List[str] = ["Observability report", "====================", ""]

    recorder = getattr(obs, "recorder", None)
    if recorder is not None and recorder.profiles():
        lines.append(f"Statement hotspots (top {top} by total wall-clock):")
        rows = []
        for profile in recorder.profiles()[:top]:
            pct = profile.latency_percentiles()
            rows.append([
                profile.fingerprint,
                str(profile.calls),
                f"{profile.total_seconds * 1000.0:.1f}ms",
                f"{profile.total_ops / profile.calls:,.0f}",
                _fmt_ms(pct.get("p50")),
                _fmt_ms(pct.get("p95")),
                _fmt_ms(pct.get("p99")),
                ",".join(
                    f"{name}={count}"
                    for name, count in sorted(
                        profile.cache_outcomes.items()
                    )
                ),
                _clip(profile.sql),
            ])
        lines.extend(_table(
            ["fingerprint", "calls", "total", "mean_ops",
             "p50", "p95", "p99", "cache", "sql"],
            rows,
        ))
        lines.append("")
        tail = recorder.tail_percentiles()
        lines.append(
            f"Tail latency (all {recorder.overall_latency.count} recorded "
            f"statements): p50={_fmt_ms(tail.get('p50'))} "
            f"p95={_fmt_ms(tail.get('p95'))} p99={_fmt_ms(tail.get('p99'))}"
        )
        lines.append("")
    else:
        lines.append("No flight records (recorder off or no statements).")
        lines.append("")

    slow = list(getattr(obs, "slow_queries", ()) or ())
    if slow:
        lines.append(f"Slow queries (most recent {min(len(slow), top)}):")
        rows = [
            [
                entry.trigger,
                f"{entry.total_ops:,}",
                _fmt_ms(entry.elapsed),
                _clip(entry.sql),
            ]
            for entry in slow[-top:]
        ]
        lines.extend(_table(["trigger", "ops", "time", "sql"], rows))
        lines.append("")

    workers = (scheduler_stats or {}).get("workers") or {}
    if workers:
        lines.append("Per-worker telemetry:")
        rows = []
        for pid in sorted(workers):
            stats = workers[pid]
            rows.append([
                str(pid),
                str(stats.get("morsels", 0)),
                _fmt_ms(stats.get("busy_seconds", 0.0)),
                _fmt_ms(stats.get("queue_wait_seconds", 0.0)),
                _fmt_rate(
                    stats.get("deref_hits", 0), stats.get("deref_misses", 0)
                ),
                str(stats.get("retried_morsels", 0)),
                str(stats.get("quarantined_morsels", 0)),
            ])
        lines.extend(_table(
            ["worker", "morsels", "busy", "queue_wait",
             "deref_hit_rate", "retried", "quarantined"],
            rows,
        ))
        lines.append("")

    if quarantine or replication:
        lines.append("Degraded state:")
        for relation in sorted(quarantine or {}):
            for partition_id, reason in quarantine[relation]:
                lines.append(
                    f"  quarantined {relation}[{partition_id}]: "
                    f"{_clip(reason, 64)}"
                )
        if replication:
            shipper = replication.get("shipper") or {}
            lines.append(
                f"  replication: state={replication.get('state', '-')} "
                f"channel={replication.get('channel', '-')} "
                f"lag_records={shipper.get('lag_records', 0)} "
                f"epoch={shipper.get('epoch', '-')} "
                f"failovers={replication.get('failovers', 0)} "
                f"heals={replication.get('partition_heals', 0)}"
            )
        lines.append("")

    return "\n".join(lines).rstrip() + "\n"
