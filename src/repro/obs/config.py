"""Configuration knobs for the observability subsystem.

Observability is **off by default**, preserving the paper's discipline of
compiling the counters out for the timed runs: a
:class:`~repro.engine.database.MainMemoryDatabase` that never calls
``configure_observability`` executes queries with zero tracing overhead
and identical operation counts.  Everything below is opt-in via
``db.configure_observability(ObservabilityConfig(...))``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Wall-clock histogram buckets for query latency, in seconds.  Python
#: constant factors put even point lookups in the 10us-1ms range, so the
#: buckets sweep 100us .. 10s.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Machine-independent histogram buckets for total operations per query
#: (comparisons + moves + hashes + traversals + allocations + events).
DEFAULT_OPS_BUCKETS: Tuple[float, ...] = (
    10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000,
    10_000, 25_000, 50_000, 100_000, 500_000, 1_000_000,
)


@dataclass
class ObservabilityConfig:
    """Enable flags and sizing for tracing, metrics, and the slow log."""

    #: Build a span tree (parse -> plan -> per-operator execute) per query.
    tracing: bool = True
    #: Maintain the process-wide metrics registry.
    metrics: bool = True
    #: Total-ops threshold above which a statement lands in the slow-query
    #: log; ``None`` disables the slow log entirely.
    slow_query_ops: Optional[int] = 10_000
    #: How many completed root spans (recent queries) the tracer retains.
    max_recent_spans: int = 32
    #: How many slow-query entries are retained (oldest evicted first).
    max_slow_queries: int = 128
    #: Query latency histogram buckets (seconds).
    latency_buckets: Tuple[float, ...] = field(
        default=DEFAULT_LATENCY_BUCKETS
    )
    #: Ops-per-query histogram buckets (operation counts).
    ops_buckets: Tuple[float, ...] = field(default=DEFAULT_OPS_BUCKETS)

    @property
    def enabled(self) -> bool:
        """Whether any layer is on."""
        return self.tracing or self.metrics
