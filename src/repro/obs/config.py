"""Configuration knobs for the observability subsystem.

Observability is **off by default**, preserving the paper's discipline of
compiling the counters out for the timed runs: a
:class:`~repro.engine.database.MainMemoryDatabase` that never calls
``configure_observability`` executes queries with zero tracing overhead
and identical operation counts.  Everything below is opt-in via
``db.configure_observability(ObservabilityConfig(...))``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigError

#: Wall-clock histogram buckets for query latency, in seconds.  Python
#: constant factors put even point lookups in the 10us-1ms range, so the
#: buckets sweep 100us .. 10s.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Machine-independent histogram buckets for total operations per query
#: (comparisons + moves + hashes + traversals + allocations + events).
DEFAULT_OPS_BUCKETS: Tuple[float, ...] = (
    10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000,
    10_000, 25_000, 50_000, 100_000, 500_000, 1_000_000,
)

#: Wall-clock buckets for one worker morsel, in seconds.  Morsels are
#: sized to roughly 10ms of predicate/probe work (see
#: ``DEFAULT_MORSEL_SIZE``), so the buckets sweep 250us .. 2.5s.
DEFAULT_WORKER_MORSEL_BUCKETS: Tuple[float, ...] = (
    0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)


@dataclass
class ObservabilityConfig:
    """Enable flags and sizing for tracing, metrics, and the slow log."""

    #: Build a span tree (parse -> plan -> per-operator execute) per query.
    tracing: bool = True
    #: Maintain the process-wide metrics registry.
    metrics: bool = True
    #: Total-ops threshold at or above which a statement lands in the
    #: slow-query log; ``None`` disables the ops trigger.
    slow_query_ops: Optional[int] = 10_000
    #: Wall-clock threshold (seconds) at or above which a statement lands
    #: in the slow-query log, independently of the ops trigger; ``None``
    #: (the default) disables the wall-clock trigger.  The ops threshold
    #: is the machine-independent trigger; this one catches statements
    #: that are slow for physical reasons the op counts cannot see
    #: (pool round-trips, injected latency faults, cold caches).
    slow_query_seconds: Optional[float] = None
    #: How many completed root spans (recent queries) the tracer retains.
    max_recent_spans: int = 32
    #: How many slow-query entries are retained (oldest evicted first).
    max_slow_queries: int = 128
    #: Keep a bounded ring of per-statement flight records plus
    #: per-fingerprint latency/ops histograms (requires ``metrics``).
    flight_recorder: bool = True
    #: How many flight records the ring retains (oldest evicted first).
    max_flight_records: int = 256
    #: Query latency histogram buckets (seconds).
    latency_buckets: Tuple[float, ...] = field(
        default=DEFAULT_LATENCY_BUCKETS
    )
    #: Ops-per-query histogram buckets (operation counts).
    ops_buckets: Tuple[float, ...] = field(default=DEFAULT_OPS_BUCKETS)
    #: Per-worker morsel wall-clock histogram buckets (seconds).
    worker_morsel_buckets: Tuple[float, ...] = field(
        default=DEFAULT_WORKER_MORSEL_BUCKETS
    )

    def __post_init__(self) -> None:
        if self.slow_query_ops is not None and (
            not isinstance(self.slow_query_ops, int)
            or isinstance(self.slow_query_ops, bool)
            or self.slow_query_ops < 0
        ):
            raise ConfigError(
                f"slow_query_ops must be a non-negative integer or None, "
                f"got {self.slow_query_ops!r}"
            )
        if self.slow_query_seconds is not None and (
            not isinstance(self.slow_query_seconds, (int, float))
            or isinstance(self.slow_query_seconds, bool)
            or self.slow_query_seconds < 0
        ):
            raise ConfigError(
                f"slow_query_seconds must be a non-negative number or "
                f"None, got {self.slow_query_seconds!r}"
            )
        for name in ("max_recent_spans", "max_slow_queries",
                     "max_flight_records"):
            value = getattr(self, name)
            if (
                not isinstance(value, int)
                or isinstance(value, bool)
                or value < 1
            ):
                raise ConfigError(
                    f"{name} must be a positive integer, got {value!r}"
                )
        for name in ("latency_buckets", "ops_buckets",
                     "worker_morsel_buckets"):
            buckets = getattr(self, name)
            if not buckets:
                raise ConfigError(f"{name} needs at least one bucket bound")

    @property
    def enabled(self) -> bool:
        """Whether any layer is on."""
        return self.tracing or self.metrics
