"""Observability: per-operator span tracing, EXPLAIN ANALYZE, and a
metrics registry with exporters.

The paper validated every reported timing "by recording and examining
the number of comparisons, the amount of data movement, the number of
hash function calls" (Section 3.1).  This package attributes those same
counters to individual operators, index probes, join phases, and cache
lookups — per query — instead of one flat scope per benchmark:

* :mod:`repro.obs.span` — span trees with roll-up ``OpCounters``;
* :mod:`repro.obs.metrics` — counters / gauges / fixed-bucket histograms
  with JSON-lines and Prometheus-text exporters;
* :mod:`repro.obs.explain` — EXPLAIN / EXPLAIN ANALYZE rendering with
  estimated vs. actual rows;
* :mod:`repro.obs.core` — the :class:`Observability` facade plus the
  slow-query log;
* :mod:`repro.obs.recorder` — the flight recorder: a bounded ring of
  per-statement records with per-fingerprint latency/ops profiles and
  p50/p95/p99 estimation;
* :mod:`repro.obs.report` — plain-text hotspot/tail-latency rendering
  over the recorder and the scheduler's per-worker telemetry;
* :mod:`repro.obs.runtime` — the process-wide active instance consulted
  by the engine's hooks (all of which are no-ops by default).

Everything is off until ``db.configure_observability(...)`` opts in,
preserving the paper's "compile the counters out for the timed runs"
discipline.
"""

from repro.obs.config import ObservabilityConfig
from repro.obs.core import Observability, SlowQueryEntry
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.recorder import FlightRecord, FlightRecorder, StatementProfile
from repro.obs.report import render_report
from repro.obs.span import Span, SpanTracer

__all__ = [
    "Counter",
    "FlightRecord",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Observability",
    "ObservabilityConfig",
    "SlowQueryEntry",
    "Span",
    "SpanTracer",
    "StatementProfile",
    "render_report",
]
