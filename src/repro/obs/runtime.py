"""The process-wide active observability instance.

Instrumentation hooks throughout the engine (executor, join algorithms,
index probes, cache lookups, the log device) cannot reach a particular
:class:`~repro.engine.database.MainMemoryDatabase`; like the counter
stack in :mod:`repro.instrument`, the active observability handle is a
module-level slot.  ``db.configure_observability()`` activates; passing a
fully-disabled config (or a different database activating) replaces it.

The fast path is the whole point: when nothing is active every hook is
``runtime.active()`` (one global load) returning ``None``, and
:func:`span` hands back a shared no-op context manager — no allocation,
no counter activity, preserving the paper's compile-the-counters-out
discipline for timed runs.
"""

from __future__ import annotations

from typing import Any, Optional


class _NullSpanContext:
    """Reentrant no-op stand-in for a span context manager."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


NULL_SPAN = _NullSpanContext()

#: The active Observability instance, or None (the default).
_active: Optional[Any] = None


def active() -> Optional[Any]:
    """The active :class:`~repro.obs.core.Observability`, or None."""
    return _active


def activate(observability: Any) -> Optional[Any]:
    """Install ``observability`` as the process-wide instance.

    Returns the previously active instance (or None) so callers that
    install a temporary instance — EXPLAIN ANALYZE with observability
    otherwise off — can restore it.
    """
    global _active
    previous = _active
    _active = observability
    return previous


def deactivate() -> None:
    """Clear the active instance (hooks return to no-ops)."""
    global _active
    _active = None


def span(name: str, kind: str = "phase", **attrs: Any):
    """A span context from the active tracer, or a shared no-op.

    Convenience for hooks that open one span and nothing else; hooks
    that also record metrics should call :func:`active` once and use the
    instance directly.
    """
    act = _active
    if act is None:
        return NULL_SPAN
    return act.span(name, kind, **attrs)
