"""Process-wide metrics registry: counters, gauges, fixed-bucket
histograms, with JSON-lines and Prometheus-text exporters.

Metric families are created on first use and keyed by name; a family
with labels keeps one child per label combination.  Histograms use fixed
bucket boundaries supplied at creation (cumulative ``le`` semantics,
matching the Prometheus exposition format), so observation is O(buckets)
with no dynamic allocation on the hot path.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with cumulative export.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]``
    (non-cumulative internally; export accumulates), with one overflow
    slot for observations beyond the last bound (the ``+Inf`` bucket).
    """

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        ordered = sorted(float(b) for b in bounds)
        if not ordered:
            raise ValueError("a histogram needs at least one bucket bound")
        self.bounds: Tuple[float, ...] = tuple(ordered)
        self.bucket_counts: List[int] = [0] * (len(ordered) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(le_bound, cumulative_count)`` pairs, ending with +Inf."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (0 <= q <= 1), or None when empty.

        Prometheus-style estimation: find the bucket holding the target
        rank and interpolate linearly between its bounds (observations
        are assumed uniform within a bucket).  Observations beyond the
        last finite bound clamp to that bound — the estimate can only
        understate a tail that escaped the bucket layout, never invent
        one.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return None
        target = q * self.count
        running = 0
        lower = 0.0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            if bucket:
                before = running
                running += bucket
                if running >= target:
                    inside = max(0.0, target - before)
                    return lower + (bound - lower) * (inside / bucket)
            lower = bound
        return self.bounds[-1]

    def percentiles(
        self, qs: Sequence[float] = (0.5, 0.95, 0.99)
    ) -> Dict[str, Optional[float]]:
        """``{"p50": ..., "p95": ..., "p99": ...}`` via :meth:`quantile`."""
        out: Dict[str, Optional[float]] = {}
        for q in qs:
            label = f"{q * 100:g}".replace(".", "_")
            out[f"p{label}"] = self.quantile(q)
        return out


class MetricFamily:
    """All children of one named metric, keyed by label values."""

    def __init__(
        self,
        name: str,
        kind: str,
        help_text: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.kind = kind  # "counter" | "gauge" | "histogram"
        self.help_text = help_text
        self.buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[LabelKey, Any] = {}

    def child(self, labels: Dict[str, Any]):
        key = _label_key(labels)
        existing = self._children.get(key)
        if existing is not None:
            return existing
        if self.kind == "counter":
            created: Any = Counter()
        elif self.kind == "gauge":
            created = Gauge()
        else:
            created = Histogram(self.buckets or (1.0,))
        self._children[key] = created
        return created

    def samples(self) -> Iterator[Tuple[LabelKey, Any]]:
        yield from self._children.items()


class MetricsRegistry:
    """Named metric families with get-or-create accessors.

    ``registry.counter("cache_requests_total", layer="plan",
    outcome="hit").inc()`` creates the family and the labelled child on
    first use.  Re-registering a name with a different metric kind is an
    error — names are process-wide contracts.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    # -- accessors ---------------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help_text, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} is a {family.kind}, not a {kind}"
            )
        return family

    def counter(self, name: str, help_text: str = "", **labels: Any) -> Counter:
        return self._family(name, "counter", help_text).child(labels)

    def gauge(self, name: str, help_text: str = "", **labels: Any) -> Gauge:
        return self._family(name, "gauge", help_text).child(labels)

    def histogram(
        self,
        name: str,
        buckets: Sequence[float],
        help_text: str = "",
        **labels: Any,
    ) -> Histogram:
        return self._family(name, "histogram", help_text, buckets).child(labels)

    def families(self) -> List[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def clear(self) -> None:
        self._families.clear()

    # -- exporters ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view: ``{name: {label_repr: value-or-hist-dict}}``."""
        out: Dict[str, Any] = {}
        for family in self.families():
            children: Dict[str, Any] = {}
            for key, metric in family.samples():
                label_repr = ",".join(f"{k}={v}" for k, v in key) or ""
                if isinstance(metric, Histogram):
                    children[label_repr] = {
                        "sum": metric.sum,
                        "count": metric.count,
                        "buckets": {
                            str(bound): count
                            for bound, count in metric.cumulative()
                        },
                    }
                else:
                    children[label_repr] = metric.value
            out[family.name] = children
        return out

    def export_jsonl(self) -> str:
        """One JSON object per metric child, newline-separated."""
        lines: List[str] = []
        for family in self.families():
            for key, metric in family.samples():
                record: Dict[str, Any] = {
                    "name": family.name,
                    "type": family.kind,
                    "labels": dict(key),
                }
                if isinstance(metric, Histogram):
                    record["sum"] = metric.sum
                    record["count"] = metric.count
                    record["buckets"] = [
                        {"le": bound, "count": count}
                        for bound, count in metric.cumulative()
                    ]
                else:
                    record["value"] = metric.value
                lines.append(json.dumps(record, default=str))
        return "\n".join(lines) + ("\n" if lines else "")

    def export_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        chunks: List[str] = []
        for family in self.families():
            if family.help_text:
                chunks.append(f"# HELP {family.name} {family.help_text}")
            chunks.append(f"# TYPE {family.name} {family.kind}")
            for key, metric in family.samples():
                base_labels = dict(key)
                if isinstance(metric, Histogram):
                    for bound, count in metric.cumulative():
                        le = "+Inf" if bound == float("inf") else _fmt(bound)
                        labels = _render_labels({**base_labels, "le": le})
                        chunks.append(
                            f"{family.name}_bucket{labels} {count}"
                        )
                    plain = _render_labels(base_labels)
                    chunks.append(f"{family.name}_sum{plain} {_fmt(metric.sum)}")
                    chunks.append(f"{family.name}_count{plain} {metric.count}")
                else:
                    labels = _render_labels(base_labels)
                    chunks.append(f"{family.name}{labels} {_fmt(metric.value)}")
        return "\n".join(chunks) + ("\n" if chunks else "")


def _fmt(value: float) -> str:
    """Render a number the way Prometheus expects (no trailing .0 for
    integral values keeps the text diff-friendly)."""
    if isinstance(value, int):
        return str(value)
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape(str(value))}"'
        for name, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
