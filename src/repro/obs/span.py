"""Span tracing: a per-query tree of measured execution regions.

Each executed query produces a tree of :class:`Span` objects — the root
``query`` span with ``parse``, ``plan``, and per-operator ``execute``
children, which in turn parent index probes, join phases, and cache
lookups.  Every span carries its own :class:`OpCounters` (activated as a
``counters_scope(..., rollup=True)``, so a parent's counters are the
*inclusive* sum of its own operations plus all of its children's — the
per-operator analogue of the paper's Section 3.1 validation counters),
wall-clock elapsed time, and an output cardinality.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.instrument import OpCounters, counters_scope


@dataclass
class Span:
    """One measured region of a query's execution."""

    name: str
    #: Coarse classification: "query" | "phase" | "operator" | "index"
    #: | "join_phase" | "cache" | "morsel" | "worker".
    kind: str = "phase"
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: Inclusive operation counts (this region plus all child spans).
    counters: OpCounters = field(default_factory=OpCounters)
    #: Wall-clock seconds (inclusive).
    elapsed: float = 0.0
    #: Output cardinality, when the region produces rows.
    rows_out: Optional[int] = None
    children: List["Span"] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #

    def rows_in(self) -> Optional[int]:
        """Summed output cardinality of child *operator* spans, or None
        when no child reports one (leaf operators read base relations)."""
        inputs = [
            child.rows_out
            for child in self.children
            if child.kind == "operator" and child.rows_out is not None
        ]
        if not inputs:
            return None
        return sum(inputs)

    def self_counters(self) -> OpCounters:
        """Exclusive counts: this span's work minus its children's."""
        merged = OpCounters()
        for child in self.children:
            merged.merge(child.counters)
        return self.counters.diff(merged)

    def total_ops(self) -> int:
        """Inclusive total operation count (crude single-number cost)."""
        return self.counters.total()

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First descendant (or self) whose name contains ``name``."""
        for span in self.walk():
            if name in span.name:
                return span
        return None

    def find_all(self, kind: str) -> List["Span"]:
        """Every descendant (or self) of the given ``kind``."""
        return [span for span in self.walk() if span.kind == kind]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (private ``_``-prefixed attrs, which may
        hold live plan-node references, are dropped)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "attrs": {
                key: value
                for key, value in self.attrs.items()
                if not key.startswith("_")
            },
            "counters": self.counters.as_dict(),
            "elapsed": self.elapsed,
            "rows_out": self.rows_out,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Rebuild a span tree from a :meth:`to_dict` serialisation.

        The inverse the worker→coordinator trace transport needs: a
        worker ships ``to_dict()`` output (plain picklable data, no live
        references) and the coordinator grafts ``from_dict()`` of it
        under the dispatching morsel span.
        """
        return cls(
            name=str(data.get("name", "")),
            kind=str(data.get("kind", "phase")),
            attrs=dict(data.get("attrs") or {}),
            counters=OpCounters.from_dict(data.get("counters") or {}),
            elapsed=float(data.get("elapsed") or 0.0),
            rows_out=data.get("rows_out"),
            children=[
                cls.from_dict(child) for child in data.get("children") or []
            ],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, kind={self.kind}, "
            f"rows_out={self.rows_out}, ops={self.total_ops()}, "
            f"children={len(self.children)})"
        )


class SpanTracer:
    """Builds span trees from nested :meth:`span` context managers.

    The tracer keeps a stack of open spans (mirroring the counter-scope
    stack) and a bounded deque of completed root spans — the most recent
    queries — for EXPLAIN ANALYZE rendering and benchmark span export.
    """

    def __init__(self, max_recent: int = 32) -> None:
        self._stack: List[Span] = []
        self.recent: deque = deque(maxlen=max_recent)

    @contextmanager
    def span(
        self, name: str, kind: str = "phase", **attrs: Any
    ) -> Iterator[Span]:
        """Open a span for the ``with`` body.

        The span's counters become the innermost counter scope with
        roll-up, so operations recorded inside propagate to every
        enclosing span *and* to whatever scope the caller had active —
        tracing never hides operations from benchmarks.
        """
        opened = Span(name=name, kind=kind, attrs=attrs)
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(opened)
        self._stack.append(opened)
        start = time.perf_counter()
        try:
            with counters_scope(opened.counters, rollup=True):
                yield opened
        finally:
            opened.elapsed = time.perf_counter() - start
            self._stack.pop()
            if parent is None:
                self.recent.append(opened)

    def current(self) -> Optional[Span]:
        """The innermost open span, or None outside any query."""
        return self._stack[-1] if self._stack else None

    def last(self) -> Optional[Span]:
        """The most recently completed root span, or None."""
        return self.recent[-1] if self.recent else None

    def clear(self) -> None:
        """Forget completed root spans (open spans are unaffected)."""
        self.recent.clear()
