"""The tail-latency flight recorder: a bounded ring of per-statement
records plus per-fingerprint latency/ops profiles.

The slow-query log keeps outliers; the flight recorder keeps *shape*.
Every statement executed under an active :class:`~repro.obs.core.
Observability` (with ``config.flight_recorder``) appends one
:class:`FlightRecord` — SQL fingerprint, the engine/worker configuration
it ran under, wall-clock, total Section-3.1 ops, and which reuse layer
(if any) served it — to a ring of the most recent
``max_flight_records`` statements, and folds the measurement into a
per-fingerprint :class:`StatementProfile` whose fixed-bucket histograms
answer p50/p95/p99 queries (the measurement side of the forecast-vs.-
observed loop the ROADMAP's serving tier needs).

Fingerprints are the plan cache's normalized SQL (so literal spacing
differences collapse) tagged with a short stable hash — compact enough
for hotspot tables, stable across processes and sessions.
"""

from __future__ import annotations

import hashlib
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.instrument import OpCounters
from repro.obs.config import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_OPS_BUCKETS,
)
from repro.obs.metrics import Histogram

#: ``extra``-counter prefixes of the reuse layers, checked in priority
#: order: a result-cache hit short-circuits the most work, a plan hit
#: skips optimization, an AST hit only the parse.
_CACHE_LAYERS: Tuple[Tuple[str, str], ...] = (
    ("result", "result_hits"),
    ("plan", "plan_hits"),
    ("ast", "plan_ast_hits"),
)


def fingerprint_sql(sql: str) -> str:
    """A short stable fingerprint for one normalized statement."""
    from repro.cache.plan_cache import normalize_sql

    normalized = normalize_sql(sql)
    digest = hashlib.sha1(normalized.encode("utf-8")).hexdigest()[:8]
    return digest


def cache_outcome(counters: OpCounters) -> str:
    """Which reuse layer served the statement: ``result`` | ``plan`` |
    ``ast`` | ``none`` (derived from the cache-hit extra counters the
    LRU layers charge organically, so detection costs nothing extra)."""
    extra = counters.extra
    for outcome, event in _CACHE_LAYERS:
        if extra.get(event, 0) > 0:
            return outcome
    return "none"


@dataclass(frozen=True)
class FlightRecord:
    """One statement execution, as retained by the ring."""

    fingerprint: str
    sql: str
    engine: str
    workers: int
    elapsed: float
    total_ops: int
    cache: str
    unix_time: float


class StatementProfile:
    """Aggregated measurements for one SQL fingerprint."""

    __slots__ = (
        "fingerprint", "sql", "calls", "total_seconds", "total_ops",
        "latency", "ops", "cache_outcomes",
    )

    def __init__(
        self,
        fingerprint: str,
        sql: str,
        latency_buckets: Sequence[float],
        ops_buckets: Sequence[float],
    ) -> None:
        self.fingerprint = fingerprint
        self.sql = sql
        self.calls = 0
        self.total_seconds = 0.0
        self.total_ops = 0
        self.latency = Histogram(latency_buckets)
        self.ops = Histogram(ops_buckets)
        self.cache_outcomes: Dict[str, int] = {}

    def observe(self, elapsed: float, total_ops: int, cache: str) -> None:
        self.calls += 1
        self.total_seconds += elapsed
        self.total_ops += total_ops
        self.latency.observe(elapsed)
        self.ops.observe(total_ops)
        self.cache_outcomes[cache] = self.cache_outcomes.get(cache, 0) + 1

    def latency_percentiles(self) -> Dict[str, Optional[float]]:
        """Estimated p50/p95/p99 statement latency (seconds)."""
        return self.latency.percentiles()

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (for reports and ``db`` inspection)."""
        return {
            "fingerprint": self.fingerprint,
            "sql": self.sql,
            "calls": self.calls,
            "total_seconds": self.total_seconds,
            "total_ops": self.total_ops,
            "mean_ops": self.total_ops / self.calls if self.calls else 0,
            "latency_percentiles": self.latency_percentiles(),
            "cache_outcomes": dict(self.cache_outcomes),
        }


class FlightRecorder:
    """Bounded statement ring + per-fingerprint profiles.

    One instance per :class:`~repro.obs.core.Observability`; fed by
    ``record_query`` with the engine/worker context the owning database
    keeps current.  All bookkeeping is O(buckets) per statement with no
    unbounded growth: the ring is a ``deque(maxlen=...)`` and profiles
    hold fixed-bucket histograms (profiles themselves are keyed by
    fingerprint, bounded by the workload's distinct-statement count).
    """

    def __init__(
        self,
        capacity: int = 256,
        latency_buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        ops_buckets: Sequence[float] = DEFAULT_OPS_BUCKETS,
    ) -> None:
        self.records: deque = deque(maxlen=capacity)
        self.latency_buckets = tuple(latency_buckets)
        self.ops_buckets = tuple(ops_buckets)
        self._profiles: Dict[str, StatementProfile] = {}
        #: Workload-wide latency histogram (every statement, all shapes).
        self.overall_latency = Histogram(latency_buckets)

    def record(
        self,
        sql: str,
        elapsed: float,
        counters: OpCounters,
        engine: str = "tuple",
        workers: int = 1,
    ) -> FlightRecord:
        """Fold one finished statement in; returns the retained record."""
        fingerprint = fingerprint_sql(sql)
        total_ops = counters.total()
        cache = cache_outcome(counters)
        record = FlightRecord(
            fingerprint=fingerprint,
            sql=sql,
            engine=engine,
            workers=workers,
            elapsed=elapsed,
            total_ops=total_ops,
            cache=cache,
            unix_time=time.time(),
        )
        self.records.append(record)
        profile = self._profiles.get(fingerprint)
        if profile is None:
            profile = StatementProfile(
                fingerprint, sql, self.latency_buckets, self.ops_buckets
            )
            self._profiles[fingerprint] = profile
        profile.observe(elapsed, total_ops, cache)
        self.overall_latency.observe(elapsed)
        return record

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def recent(self, n: Optional[int] = None) -> List[FlightRecord]:
        """The most recent ``n`` records (all when ``n`` is None),
        oldest first."""
        records = list(self.records)
        return records if n is None else records[-n:]

    def profile(self, sql: str) -> Optional[StatementProfile]:
        """The profile for one statement's fingerprint, or None."""
        return self._profiles.get(fingerprint_sql(sql))

    def profiles(self) -> List[StatementProfile]:
        """Every profile, hottest (most total wall-clock) first."""
        return sorted(
            self._profiles.values(),
            key=lambda p: (-p.total_seconds, p.fingerprint),
        )

    def tail_percentiles(self) -> Dict[str, Optional[float]]:
        """Workload-wide p50/p95/p99 statement latency (seconds)."""
        return self.overall_latency.percentiles()

    def clear(self) -> None:
        """Forget every record and profile."""
        self.records.clear()
        self._profiles.clear()
        self.overall_latency = Histogram(self.latency_buckets)
