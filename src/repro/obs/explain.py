"""Plan rendering with estimated and actual costs.

Two surfaces share the helpers here:

* ``EXPLAIN <select>`` — the optimizer's plan tree annotated with
  *estimated* rows per operator (no execution); and
* ``EXPLAIN ANALYZE <select>`` — the statement is executed under a span
  tracer and the resulting span tree is rendered with estimated vs.
  actual rows plus each span's operation counters (comparisons, moves,
  hashes, traversals, allocations) and wall-clock — making optimizer
  misestimates (the Section 3.3.1 workload's selectivity skew) directly
  visible per operator.

Estimation is deliberately crude, mirroring the paper's Section 4 stance
that main-memory cost formulas should stay simple: equality selects
``cardinality / distinct`` rows (exact column statistics are cheap to
keep in memory), range predicates default to one third, and equijoins
divide the cross product by the inner side's distinct count.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.query.plan import (
    REF_COLUMN,
    FilterNode,
    IndexLookupNode,
    IndexMultiLookupNode,
    IndexRangeNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
)
from repro.query.predicates import Comparison, Conjunction, Disjunction, Op

#: Default selectivity for predicates we cannot analyse (System R's
#: classic 1/3 for range-shaped conditions).
DEFAULT_SELECTIVITY = 1.0 / 3.0


def node_label(plan: PlanNode) -> str:
    """One-line description of a plan node (no children, no indent)."""
    if isinstance(plan, JoinNode):
        order = ""
        if plan.join_order is not None:
            order = f"  order={'->'.join(plan.join_order)}"
        return (
            f"Join[{plan.method}] {plan.left_col} {plan.op} "
            f"{plan.right_col}{order}"
        )
    if isinstance(plan, FilterNode):
        return f"Filter {plan.predicate!r}"
    if isinstance(plan, ProjectNode):
        dd = f" dedup({plan.dedup_method})" if plan.deduplicate else ""
        return f"Project{list(plan.columns)}{dd}"
    # Leaves render on a single line already.
    return plan.explain(0)


def node_children(plan: PlanNode) -> List[PlanNode]:
    """Child plan nodes in execution order."""
    if isinstance(plan, JoinNode):
        return [plan.left, plan.right]
    if isinstance(plan, (FilterNode, ProjectNode)):
        return [plan.child]
    return []


# --------------------------------------------------------------------- #
# row estimation
# --------------------------------------------------------------------- #

def _column_selectivity(catalog, optimizer, relation_name, field_name) -> float:
    """Fraction of rows matched by one equality on the column."""
    relation = catalog.relation(relation_name)
    if field_name not in relation.schema.names:
        return DEFAULT_SELECTIVITY
    stats = optimizer.column_stats(relation, field_name)
    if stats.cardinality == 0 or stats.distinct == 0:
        return 1.0
    return 1.0 / stats.distinct


def _predicate_selectivity(
    catalog, optimizer, relation_name: str, predicate
) -> float:
    """Estimated match fraction of a predicate on one relation."""
    if predicate is None:
        return 1.0
    if isinstance(predicate, Conjunction):
        out = 1.0
        for part in predicate.parts:
            out *= _predicate_selectivity(
                catalog, optimizer, relation_name, part
            )
        return out
    if isinstance(predicate, Disjunction):
        total = sum(
            _predicate_selectivity(catalog, optimizer, relation_name, part)
            for part in predicate.parts
        )
        return min(1.0, total)
    if isinstance(predicate, Comparison):
        field = predicate.field.rsplit(".", 1)[-1]
        if predicate.op is Op.EQ:
            return _column_selectivity(
                catalog, optimizer, relation_name, field
            )
        return DEFAULT_SELECTIVITY
    return DEFAULT_SELECTIVITY


def estimate_rows(plan: PlanNode, catalog, optimizer) -> Optional[int]:
    """Estimated output cardinality of a plan subtree (None when the
    catalog no longer has the relations to estimate against)."""
    try:
        return max(0, round(_estimate(plan, catalog, optimizer)))
    except Exception:
        return None


def _estimate(plan: PlanNode, catalog, optimizer) -> float:
    if isinstance(plan, ScanNode):
        relation = catalog.relation(plan.relation_name)
        return len(relation) * _predicate_selectivity(
            catalog, optimizer, plan.relation_name, plan.predicate
        )
    if isinstance(plan, IndexLookupNode):
        relation = catalog.relation(plan.relation_name)
        return len(relation) * _column_selectivity(
            catalog, optimizer, plan.relation_name, plan.field_name
        )
    if isinstance(plan, IndexMultiLookupNode):
        relation = catalog.relation(plan.relation_name)
        per_key = len(relation) * _column_selectivity(
            catalog, optimizer, plan.relation_name, plan.field_name
        )
        return per_key * len(plan.keys)
    if isinstance(plan, IndexRangeNode):
        relation = catalog.relation(plan.relation_name)
        return len(relation) * DEFAULT_SELECTIVITY
    if isinstance(plan, FilterNode):
        # Without binding columns to source relations post-join, apply
        # the default selectivity per comparison leaf.
        child = _estimate(plan.child, catalog, optimizer)
        return child * _leaf_selectivity(plan.predicate)
    if isinstance(plan, JoinNode):
        if plan.est_rows is not None:
            # The cost-based orderer already estimated this join with
            # predicate selectivities applied; its figure is stricter
            # than the structural recursion below.
            return plan.est_rows
        left = _estimate(plan.left, catalog, optimizer)
        right = _estimate(plan.right, catalog, optimizer)
        if plan.op != "=":
            return left * right * DEFAULT_SELECTIVITY
        if plan.method == "precomputed" or plan.right_col == REF_COLUMN:
            # Pointer equality: each outer pointer pairs with exactly one
            # target tuple (or a stored pointer list; still ~|outer|).
            return left
        distinct = _inner_distinct(plan.right, plan.right_col, catalog, optimizer)
        if distinct <= 0:
            return 0.0
        return left * right / distinct
    if isinstance(plan, ProjectNode):
        return _estimate(plan.child, catalog, optimizer)
    raise ValueError(f"unknown plan node {type(plan).__name__}")


def _leaf_selectivity(predicate) -> float:
    if isinstance(predicate, Conjunction):
        out = 1.0
        for part in predicate.parts:
            out *= _leaf_selectivity(part)
        return out
    if isinstance(predicate, Disjunction):
        return min(
            1.0, sum(_leaf_selectivity(part) for part in predicate.parts)
        )
    return DEFAULT_SELECTIVITY


def _inner_distinct(right: PlanNode, right_col: str, catalog, optimizer) -> float:
    """Distinct join-key count on the inner input (falls back to its
    estimated cardinality when the column cannot be resolved)."""
    if isinstance(right, ScanNode) and right.predicate is None:
        relation = catalog.relation(right.relation_name)
        field = right_col.rsplit(".", 1)[-1]
        if field in relation.schema.names:
            return float(optimizer.column_stats(relation, field).distinct)
    return max(1.0, _estimate(right, catalog, optimizer))


# --------------------------------------------------------------------- #
# rendering
# --------------------------------------------------------------------- #

def render_plan(plan: PlanNode, catalog, optimizer) -> str:
    """EXPLAIN output: the plan tree with estimated rows per operator."""
    lines: List[str] = []

    def emit(node: PlanNode, depth: int) -> None:
        est = estimate_rows(node, catalog, optimizer)
        suffix = "" if est is None else f"  (est_rows={est})"
        suffix += _forecast_suffix(node)
        lines.append("  " * depth + node_label(node) + suffix)
        for child in node_children(node):
            emit(child, depth + 1)

    emit(plan, 0)
    return "\n".join(lines)


def _forecast_suffix(node: PlanNode) -> str:
    """The cost-based orderer's forecast op counts for a join node."""
    ops = getattr(node, "est_ops", None)
    if not ops:
        return ""
    inner = ", ".join(
        f"{name}={ops[name]}"
        for name in (
            "comparisons", "moves", "hashes", "traversals", "allocations"
        )
        if name in ops
    )
    return f"  (forecast: {inner})"


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.3f}ms"


def _span_annotations(span, catalog, optimizer) -> str:
    parts: List[str] = []
    node = span.attrs.get("_node")
    if node is not None:
        est = estimate_rows(node, catalog, optimizer)
        parts.append(f"est_rows={'?' if est is None else est}")
    if span.rows_out is not None:
        parts.append(f"actual_rows={span.rows_out}")
    ops = getattr(node, "est_ops", None) if node is not None else None
    if ops:
        # Forecast counts sit next to the actual counters below, so a
        # bad cardinality estimate shows up as forecast/actual drift.
        inner = "/".join(
            str(ops[name])
            for name in (
                "comparisons", "moves", "hashes", "traversals",
                "allocations",
            )
            if name in ops
        )
        parts.append(f"forecast_ops={inner}")
    counts = span.counters
    parts.append(f"comparisons={counts.comparisons}")
    parts.append(f"moves={counts.moves}")
    parts.append(f"hashes={counts.hashes}")
    parts.append(f"traversals={counts.traversals}")
    parts.append(f"allocations={counts.allocations}")
    parts.append(f"time={_fmt_ms(span.elapsed)}")
    return "(" + ", ".join(parts) + ")"


def render_analyze(root_span, catalog, optimizer) -> str:
    """EXPLAIN ANALYZE output: the executed span tree, each line carrying
    estimated vs. actual rows and the span's inclusive counters.  When
    the parallel engine executed the statement, a per-worker morsel
    breakdown (aggregated from the grafted worker spans) follows the
    tree."""
    lines: List[str] = []

    def emit(span, depth: int) -> None:
        name = span.name
        if span.kind == "query":
            name = "Query"
        lines.append(
            "  " * depth
            + f"{name}  {_span_annotations(span, catalog, optimizer)}"
        )
        for child in span.children:
            emit(child, depth + 1)

    emit(root_span, 0)
    breakdown = _worker_breakdown(root_span)
    if breakdown:
        lines.append("")
        lines.extend(breakdown)
    return "\n".join(lines)


def _worker_breakdown(root_span) -> List[str]:
    """Per-worker morsel timing aggregated from grafted worker spans."""
    workers = root_span.find_all("worker")
    if not workers:
        return []
    per_pid: dict = {}
    for span in workers:
        pid = span.attrs.get("pid", "?")
        agg = per_pid.setdefault(
            pid, {"morsels": 0, "seconds": 0.0, "ops": 0, "queue_wait": 0.0}
        )
        agg["morsels"] += 1
        agg["seconds"] += span.elapsed
        agg["ops"] += span.total_ops()
        agg["queue_wait"] += float(span.attrs.get("queue_wait", 0.0))
    lines = ["Per-worker morsel breakdown:"]
    for pid in sorted(per_pid, key=str):
        agg = per_pid[pid]
        lines.append(
            f"  worker {pid}: morsels={agg['morsels']}, "
            f"ops={agg['ops']}, time={_fmt_ms(agg['seconds'])}, "
            f"queue_wait={_fmt_ms(agg['queue_wait'])}"
        )
    return lines
