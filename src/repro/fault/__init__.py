"""Deterministic fault injection (DESIGN.md section 3.10).

The subsystem has three parts:

* :mod:`~repro.fault.injector` — :class:`FaultInjector`, the seeded
  decision engine over the named fault points of :data:`FAULT_POINTS`,
  with per-point :class:`FaultPolicy` entries (probability, every-Nth,
  one-shot, bounded fires, latency);
* :mod:`~repro.fault.config` — :class:`FaultConfig` and the
  ``REPRO_FAULTS`` one-line spec parser;
* :mod:`~repro.fault.runtime` — the process-wide active-injector slot
  the engine's hooks consult.  When no injector is active every hook is
  a single global load returning None (the same zero-overhead contract
  as the observability hooks).

Activate via ``db.configure_faults(seed=..., policies=[...])`` or the
``REPRO_FAULTS`` environment variable; faults then surface as typed
errors (:class:`~repro.errors.InjectedFaultError`,
:class:`~repro.errors.CorruptImageError`,
:class:`~repro.errors.TornWriteError`) or as degraded-path behaviour
(morsel retries, pool reforks, quarantined partitions) that the
self-healing machinery must absorb.
"""

from repro.fault.backoff import NO_BACKOFF, BackoffPolicy
from repro.fault.config import FaultConfig, parse_fault_spec
from repro.fault.injector import (
    FAULT_POINTS,
    FaultEvent,
    FaultInjector,
    FaultPolicy,
)

__all__ = [
    "FAULT_POINTS",
    "BackoffPolicy",
    "FaultConfig",
    "FaultEvent",
    "FaultInjector",
    "FaultPolicy",
    "NO_BACKOFF",
    "parse_fault_spec",
]
