"""Shared exponential backoff with seeded jitter for every retry site.

Before this module each bounded-retry loop in the engine (restart's
transient-read retry, the morsel scheduler's per-morsel retry, the
replication shipper's per-hop retry) re-ran immediately at a fixed
cadence.  :class:`BackoffPolicy` gives them one shared delay schedule:
exponential growth from ``base`` by ``factor``, clamped at
``max_delay``, with a deterministic jitter fraction derived from the
policy seed and the attempt number — *not* from a shared RNG stream —
so the delay sequence is a pure function of ``(seed, attempt)``.  Chaos
replays under a fixed seed therefore sleep the exact same schedule no
matter how retries from different subsystems interleave, and the fault
injector's own RNG is never consumed.

The default policy (``base=0.0``) never sleeps: retries stay as fast as
before, tests stay fast, and the zero-overhead contract holds — a
retry loop that never fails never even computes a delay.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError

#: Cap on the exponential schedule; a retry loop should heal or give up
#: long before a single wait reaches this.
DEFAULT_MAX_DELAY = 1.0


@dataclass(frozen=True)
class BackoffPolicy:
    """Deterministic exponential backoff: ``base * factor**attempt``.

    ``attempt`` is 0-based (the wait *after* the first failure is
    ``delay(0)``).  ``jitter`` widens each delay by a deterministic
    fraction in ``[-jitter, +jitter]`` derived from ``(seed, attempt)``
    — no shared RNG stream, so concurrent retry sites cannot perturb
    each other's schedules and replays are exact.  ``base=0.0`` (the
    default) disables sleeping entirely while keeping the retry budget
    semantics of the call sites unchanged.
    """

    base: float = 0.0
    factor: float = 2.0
    max_delay: float = DEFAULT_MAX_DELAY
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.base, (int, float)) or isinstance(
            self.base, bool
        ) or self.base < 0:
            raise ConfigError(
                f"backoff base must be a non-negative number, "
                f"got {self.base!r}"
            )
        if not isinstance(self.factor, (int, float)) or isinstance(
            self.factor, bool
        ) or self.factor < 1.0:
            raise ConfigError(
                f"backoff factor must be >= 1, got {self.factor!r}"
            )
        if not isinstance(self.max_delay, (int, float)) or isinstance(
            self.max_delay, bool
        ) or self.max_delay < 0:
            raise ConfigError(
                f"backoff max_delay must be non-negative, "
                f"got {self.max_delay!r}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(
                f"backoff jitter must be within [0, 1], got {self.jitter!r}"
            )

    def _jitter_fraction(self, attempt: int) -> float:
        """A deterministic value in [-jitter, +jitter] for one attempt.

        CRC32 over the (seed, attempt) pair is stable across processes
        and Python versions (unlike ``hash``) and costs nothing
        measurable next to a sleep.
        """
        if not self.jitter:
            return 0.0
        digest = zlib.crc32(b"%d:%d" % (self.seed, attempt))
        unit = (digest % 10_000) / 10_000.0  # [0, 1)
        return (2.0 * unit - 1.0) * self.jitter

    def delay(self, attempt: int) -> float:
        """The wait (seconds) after failure number ``attempt`` (0-based)."""
        if self.base <= 0.0:
            return 0.0
        raw = self.base * (self.factor ** max(0, int(attempt)))
        raw = min(raw, self.max_delay)
        return max(0.0, raw * (1.0 + self._jitter_fraction(attempt)))

    def delays(self, attempts: int) -> List[float]:
        """The full schedule for ``attempts`` failures — test/debug aid."""
        return [self.delay(i) for i in range(max(0, attempts))]

    def sleep(self, attempt: int) -> float:
        """Sleep the computed delay; returns it (0.0 slept nothing)."""
        wait = self.delay(attempt)
        if wait > 0.0:
            time.sleep(wait)
        return wait


#: The do-nothing schedule call sites fall back to when unconfigured.
NO_BACKOFF = BackoffPolicy()
