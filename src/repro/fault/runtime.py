"""The process-wide active fault injector.

Fault hooks live on hot-ish paths (disk reads, log appends, morsel
dispatch), so they follow the same zero-overhead contract as the
observability hooks in :mod:`repro.obs.runtime`: when no injector is
active every hook is ``runtime.active()`` — one module-global load —
returning ``None``, and execution proceeds untouched.  No allocation,
no RNG draw, no counter activity.  ``db.configure_faults()`` (or the
``REPRO_FAULTS`` environment variable) activates an injector
process-wide; configuring with nothing deactivates it.
"""

from __future__ import annotations

from typing import Any, Optional

#: The active FaultInjector, or None (the default).
_active: Optional[Any] = None


def active() -> Optional[Any]:
    """The active :class:`~repro.fault.injector.FaultInjector`, or None."""
    return _active


def activate(injector: Any) -> Optional[Any]:
    """Install ``injector`` process-wide; returns the previous one."""
    global _active
    previous = _active
    _active = injector
    return previous


def deactivate() -> None:
    """Clear the active injector (hooks return to no-ops)."""
    global _active
    _active = None


def fire(point: str, **context: Any) -> Optional[str]:
    """Fire a fault point against the active injector, if any.

    Convenience for hook sites that do nothing else with the injector;
    returns the triggered action (or None), and raises
    :class:`~repro.errors.InjectedFaultError` for ``error`` actions
    exactly as :meth:`FaultInjector.fire` does.
    """
    injector = _active
    if injector is None:
        return None
    return injector.fire(point, **context)
