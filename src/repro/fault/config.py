"""Fault-injection configuration and the ``REPRO_FAULTS`` spec syntax.

``db.configure_faults`` accepts a :class:`FaultConfig`; the
``REPRO_FAULTS`` environment variable carries the same information as a
compact one-line spec so CI lanes and chaos scripts can switch faults
on without code changes::

    REPRO_FAULTS="seed=42;pool.worker:action=error,prob=0.2,max=3;disk.read:action=corrupt,every=5"

Grammar: ``;``-separated clauses.  A ``seed=N`` clause seeds the RNG;
a ``backoff:<key>=<value>,...`` clause builds the shared retry
:class:`~repro.fault.backoff.BackoffPolicy` (keys: ``base``,
``factor``, ``max_delay``/``max``, ``jitter``, ``seed`` — the backoff
seed defaults to the injector seed); every other clause is
``<point>:<key>=<value>,...`` building one
:class:`~repro.fault.injector.FaultPolicy`.  Recognised policy keys:
``action``, ``prob``/``probability``, ``every``/``every_nth``,
``once`` (``1``/``0``), ``max``/``max_fires``, ``latency``.  Malformed
specs raise :class:`~repro.errors.ConfigError` at configuration time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigError
from repro.fault.backoff import BackoffPolicy
from repro.fault.injector import FaultPolicy

#: Spec keys -> FaultPolicy field names.
_KEY_ALIASES = {
    "action": "action",
    "prob": "probability",
    "probability": "probability",
    "every": "every_nth",
    "every_nth": "every_nth",
    "once": "one_shot",
    "one_shot": "one_shot",
    "max": "max_fires",
    "max_fires": "max_fires",
    "latency": "latency",
}

_INT_FIELDS = {"every_nth", "max_fires"}
_FLOAT_FIELDS = {"probability", "latency"}
_BOOL_FIELDS = {"one_shot"}

#: Backoff-clause keys -> BackoffPolicy field names.
_BACKOFF_ALIASES = {
    "base": "base",
    "factor": "factor",
    "max": "max_delay",
    "max_delay": "max_delay",
    "jitter": "jitter",
    "seed": "seed",
}


@dataclass(frozen=True)
class FaultConfig:
    """Seed plus the policy set; an empty policy set means "disabled".

    ``backoff`` optionally carries the shared retry schedule the
    degraded paths (restart's transient-read retry, the replication
    shipper) sleep between attempts; ``None`` keeps the immediate-retry
    default.
    """

    seed: int = 0
    policies: Tuple[FaultPolicy, ...] = field(default_factory=tuple)
    backoff: Optional[BackoffPolicy] = None

    @property
    def enabled(self) -> bool:
        return bool(self.policies)


def _parse_value(name: str, raw: str):
    try:
        if name in _INT_FIELDS:
            return int(raw)
        if name in _FLOAT_FIELDS:
            return float(raw)
        if name in _BOOL_FIELDS:
            return raw not in ("0", "false", "no", "")
    except ValueError:
        raise ConfigError(
            f"bad value {raw!r} for fault spec key {name!r}"
        ) from None
    return raw


def _parse_backoff_clause(body: str, injector_seed: int) -> BackoffPolicy:
    """Parse the ``backoff:key=value,...`` clause of a fault spec."""
    fields = {}
    for item in body.split(","):
        item = item.strip()
        if not item:
            continue
        key, __, raw = item.partition("=")
        key = key.strip()
        if key not in _BACKOFF_ALIASES:
            raise ConfigError(
                f"unknown backoff spec key {key!r}; recognised: "
                f"{sorted(set(_BACKOFF_ALIASES))}"
            )
        name = _BACKOFF_ALIASES[key]
        try:
            fields[name] = int(raw) if name == "seed" else float(raw)
        except ValueError:
            raise ConfigError(
                f"bad value {raw!r} for backoff spec key {key!r}"
            ) from None
    fields.setdefault("seed", injector_seed)
    return BackoffPolicy(**fields)


def parse_fault_spec(spec: str) -> FaultConfig:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultConfig`."""
    seed = 0
    policies = []
    backoff_body: Optional[str] = None
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            try:
                seed = int(clause[len("seed="):])
            except ValueError:
                raise ConfigError(
                    f"bad seed in fault spec: {clause!r}"
                ) from None
            continue
        if clause == "backoff" or clause.startswith("backoff:"):
            # Deferred: the backoff seed defaults to the injector seed,
            # which a later clause may still set.
            backoff_body = clause.partition(":")[2]
            continue
        point, sep, body = clause.partition(":")
        point = point.strip()
        if not point:
            raise ConfigError(f"fault spec clause names no point: {clause!r}")
        fields = {}
        if sep:
            for item in body.split(","):
                item = item.strip()
                if not item:
                    continue
                key, eq, raw = item.partition("=")
                key = key.strip()
                if key not in _KEY_ALIASES:
                    raise ConfigError(
                        f"unknown fault spec key {key!r} in {clause!r}; "
                        f"recognised: {sorted(set(_KEY_ALIASES))}"
                    )
                name = _KEY_ALIASES[key]
                fields[name] = (
                    _parse_value(name, raw.strip()) if eq else True
                )
        policies.append(FaultPolicy(point=point, **fields))
    backoff = (
        _parse_backoff_clause(backoff_body, seed)
        if backoff_body is not None
        else None
    )
    return FaultConfig(seed=seed, policies=tuple(policies), backoff=backoff)
