"""The deterministic fault injector: named points, seeded policies.

A :class:`FaultInjector` owns a set of :class:`FaultPolicy` entries
keyed by *fault point* — a dotted name for one failure site in the
engine (see :data:`FAULT_POINTS` for the catalog).  Instrumented sites
call :func:`repro.fault.runtime.fire` with their point name; when a
policy triggers, the site either receives an action string to act on
(``"corrupt"``, ``"torn"``, ``"kill"``) or an
:class:`~repro.errors.InjectedFaultError` is raised on its behalf
(``"error"``).

Determinism: the injector draws from one ``random.Random(seed)``.
Because the engine itself is deterministic, a fixed seed plus a fixed
workload produces the exact same sequence of ``fire`` calls — and
therefore the exact same faults — on every run.  :meth:`reset` rewinds
the RNG and the hit counters so the same injector can replay a run.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, InjectedFaultError
from repro.obs import runtime as obs_runtime

#: The fault-point catalog: every injectable site and the actions its
#: hook understands.  ``error`` (raise :class:`InjectedFaultError`) and
#: ``latency`` (sleep, then proceed) are handled by the injector itself;
#: the remaining actions are interpreted by the hook site.
FAULT_POINTS: Dict[str, Tuple[str, ...]] = {
    # SimulatedDisk.read_partition: error | corrupt (flip a byte in the
    # *returned* copy — a transient read fault, the stored image stays
    # good) | latency.
    "disk.read": ("error", "corrupt", "latency"),
    # SimulatedDisk.write_partition: error | torn (persist only a prefix
    # of the frame — discovered later as TornWriteError) | corrupt
    # (persist with a flipped payload byte — discovered later as
    # CorruptImageError) | latency.
    "disk.write": ("error", "torn", "corrupt", "latency"),
    # StableLogBuffer.append: error | corrupt (record sealed with a bad
    # checksum, surfacing as CorruptLogRecordError at replay).
    "log.append": ("error", "corrupt"),
    # LogDevice.propagate, per partition batch: error | latency —
    # crashing between absorb and propagation.
    "log.flush": ("error", "latency"),
    # One morsel dispatch: error (the task fails with InjectedFaultError)
    # | kill (process pools: the worker process exits hard; inline: the
    # task dies with InjectedFaultError) | latency.
    "pool.worker": ("error", "kill", "latency"),
    # One whole scheduler.run() process dispatch: error (the pool is
    # treated as broken and the run falls back inline).
    "pool.dispatch": ("error",),
    # One shared-memory attach/unpack on the worker side (dispatch-slice
    # resolution or broadcast-blob read): error — the morsel fails like
    # any worker exception and rides the retry/quarantine path.
    "pool.shm": ("error",),
    # RecoveryManager.checkpoint_all, per partition: error — a crash
    # window with some partitions checkpointed and some not.
    "checkpoint.partition": ("error", "latency"),
    # LogShipper, per shipped batch (promotion's suffix replay included):
    # error (the hop fails; the batch stays in the outbox and retries
    # with backoff) | corrupt (flip a byte in the framed batch — the
    # replica's unframe rejects it whole, proving the checksummed wire)
    # | latency.
    "repl.ship": ("error", "corrupt", "latency"),
    # ReplicaApplier.apply_batch, per batch: error (the apply fails
    # before the watermark advances; the re-shipped batch deduplicates
    # by LSN so records land exactly once) | latency.
    "repl.apply": ("error", "latency"),
}


@dataclass
class FaultPolicy:
    """When and how one fault point misbehaves.

    Triggering combines the selectors: the policy is *eligible* on a hit
    when its ``every_nth``/``one_shot``/``max_fires`` budget allows, and
    then fires with ``probability`` (an RNG draw is only made for
    probabilities below 1.0, keeping full-probability policies
    replayable without consuming randomness).
    """

    point: str
    action: str = "error"
    probability: float = 1.0
    #: Fire on every Nth hit of the point (1st, N+1th, ... when N > 0).
    every_nth: int = 0
    one_shot: bool = False
    max_fires: Optional[int] = None
    #: Sleep duration for ``action="latency"``.
    latency: float = 0.0
    #: Optional context filter: the policy only applies when every
    #: (key, value) pair matches the ``fire(**context)`` kwargs.
    match: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ConfigError(
                f"unknown fault point {self.point!r}; "
                f"catalog: {sorted(FAULT_POINTS)}"
            )
        if self.action not in FAULT_POINTS[self.point]:
            raise ConfigError(
                f"fault point {self.point!r} does not support action "
                f"{self.action!r}; supported: {FAULT_POINTS[self.point]}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"probability must be within [0, 1], got {self.probability!r}"
            )
        if self.every_nth < 0:
            raise ConfigError(
                f"every_nth must be >= 0, got {self.every_nth!r}"
            )
        if self.max_fires is not None and self.max_fires < 1:
            raise ConfigError(
                f"max_fires must be >= 1, got {self.max_fires!r}"
            )
        if self.latency < 0:
            raise ConfigError(f"latency must be >= 0, got {self.latency!r}")


@dataclass(frozen=True)
class FaultEvent:
    """One triggered fault, for replay assertions and reports."""

    point: str
    action: str
    #: 1-based hit index of the point at which the fault fired.
    hit: int
    context: Dict[str, Any] = field(default_factory=dict)


class _PolicyState:
    """A policy plus its mutable firing bookkeeping."""

    __slots__ = ("policy", "hits", "fires")

    def __init__(self, policy: FaultPolicy) -> None:
        self.policy = policy
        self.hits = 0
        self.fires = 0

    def expired(self) -> bool:
        policy = self.policy
        if policy.one_shot and self.fires >= 1:
            return True
        return policy.max_fires is not None and self.fires >= policy.max_fires


class FaultInjector:
    """Seeded, replayable fault decisions for every registered point."""

    def __init__(
        self, seed: int = 0, policies: Sequence[FaultPolicy] = ()
    ) -> None:
        self.seed = int(seed)
        self.rng = random.Random(self.seed)
        self._states: Dict[str, List[_PolicyState]] = {}
        #: Total hits per point, fired or not (1-based in events).
        self.hits: Dict[str, int] = {}
        #: Total fires per point.
        self.fires: Dict[str, int] = {}
        self.events: List[FaultEvent] = []
        for policy in policies:
            self.add(policy)

    # ------------------------------------------------------------------ #
    # configuration
    # ------------------------------------------------------------------ #

    def add(self, policy: FaultPolicy) -> FaultPolicy:
        """Register one policy; earlier policies win on shared points."""
        self._states.setdefault(policy.point, []).append(_PolicyState(policy))
        return policy

    def reset(self) -> None:
        """Rewind for exact replay: reseed the RNG, zero all counters."""
        self.rng = random.Random(self.seed)
        self.hits.clear()
        self.fires.clear()
        self.events.clear()
        for states in self._states.values():
            for state in states:
                state.hits = 0
                state.fires = 0

    # ------------------------------------------------------------------ #
    # firing
    # ------------------------------------------------------------------ #

    def fire(self, point: str, **context: Any) -> Optional[str]:
        """One hit of ``point``; returns the triggered action or None.

        ``error`` actions raise :class:`InjectedFaultError` here;
        ``latency`` sleeps here and returns ``"latency"``; any other
        triggered action is returned for the hook site to interpret.
        """
        hit = self.hits.get(point, 0) + 1
        self.hits[point] = hit
        for state in self._states.get(point, ()):
            if state.expired():
                continue
            policy = state.policy
            if policy.match is not None and any(
                context.get(key) != value
                for key, value in policy.match.items()
            ):
                continue
            state.hits += 1
            if policy.every_nth and (state.hits - 1) % policy.every_nth:
                continue
            if policy.probability < 1.0 and (
                self.rng.random() >= policy.probability
            ):
                continue
            state.fires += 1
            self.fires[point] = self.fires.get(point, 0) + 1
            self._record(point, policy.action, hit, context)
            if policy.action == "latency":
                if policy.latency:
                    time.sleep(policy.latency)
                return "latency"
            if policy.action == "error":
                raise InjectedFaultError(point, "error")
            return policy.action
        return None

    def _record(
        self, point: str, action: str, hit: int, context: Dict[str, Any]
    ) -> None:
        self.events.append(FaultEvent(point, action, hit, dict(context)))
        obs = obs_runtime.active()
        if obs is not None:
            obs.metric_inc(
                "fault_injections_total", point=point, action=action
            )
            tracer = obs.tracer
            if tracer is not None:
                span = tracer.current()
                if span is not None:
                    span.attrs.setdefault("fault_events", []).append(
                        {"point": point, "action": action, "hit": hit}
                    )

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #

    def report(self) -> Dict[str, Any]:
        """Hits, fires, and the event list — the chaos run's receipt."""
        return {
            "seed": self.seed,
            "hits": dict(self.hits),
            "fires": dict(self.fires),
            "events": [
                {"point": e.point, "action": e.action, "hit": e.hit}
                for e in self.events
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        points = sorted(self._states)
        return f"FaultInjector(seed={self.seed}, points={points})"
