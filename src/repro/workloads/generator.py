"""Join-test relation generation and index query mixes (Section 3.3.1).

The join tests vary (1) relation cardinality, (2) duplicate percentage and
its distribution, and (3) semijoin selectivity.  "In order to get a
variable semijoin selectivity, the smaller relation was built with a
specified number of values from the larger relation."

The duplicate percentage ``d`` fixes the number of unique join values at
``U = max(1, round(|R| * (1 - d/100)))`` so that ``|R| - U`` tuples are
duplicates — d of 0 gives a key column, d of 100 gives a single value.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.workloads.distributions import DuplicateDistribution


@dataclass(frozen=True)
class RelationSpec:
    """Parameters for one generated join column.

    ``dup_percent`` — percentage of tuples that are duplicates of some
    other tuple's value.  ``distribution`` — how the duplicates spread
    over the unique values.
    """

    cardinality: int
    dup_percent: float = 0.0
    distribution: DuplicateDistribution = field(
        default_factory=lambda: DuplicateDistribution(None)
    )

    def unique_values(self) -> int:
        """Number of distinct join values implied by the duplicate %."""
        if not 0.0 <= self.dup_percent <= 100.0:
            raise ValueError("dup_percent must be within [0, 100]")
        return max(1, round(self.cardinality * (1.0 - self.dup_percent / 100.0)))


@dataclass
class JoinPair:
    """A generated pair of join columns plus their ground truth."""

    outer: List[int]
    inner: List[int]
    matching_values: frozenset

    def expected_result_size(self) -> int:
        """|R1 ⋈ R2| — computed exactly from value frequencies."""
        from collections import Counter

        outer_freq = Counter(self.outer)
        inner_freq = Counter(self.inner)
        return sum(
            outer_freq[v] * inner_freq[v]
            for v in outer_freq.keys() & inner_freq.keys()
        )


def unique_keys(n: int, rng: random.Random, key_space: int = None) -> List[int]:
    """``n`` distinct integer keys in random order (the index-test feed).

    The paper's index tests fill each structure with 30,000 unique
    elements; ``key_space`` (default 100x n) bounds the value range.
    """
    space = key_space if key_space is not None else max(n * 100, 1000)
    if space < n:
        raise ValueError("key_space smaller than requested key count")
    return rng.sample(range(space), n)


def build_values(spec: RelationSpec, pool: Sequence[int], rng: random.Random) -> List[int]:
    """Expand a value pool into a join column following ``spec``.

    ``pool`` supplies the unique values (its length must equal
    ``spec.unique_values()``); occurrence counts come from the spec's
    distribution; the result is shuffled so that value order carries no
    information.
    """
    unique = spec.unique_values()
    if len(pool) != unique:
        raise ValueError(
            f"pool has {len(pool)} values, spec implies {unique}"
        )
    counts = spec.distribution.counts(unique, spec.cardinality, rng)
    column: List[int] = []
    for value, count in zip(pool, counts):
        column.extend([value] * count)
    rng.shuffle(column)
    return column


def build_join_pair(
    outer_spec: RelationSpec,
    inner_spec: RelationSpec,
    semijoin_selectivity: float,
    rng: random.Random,
    key_space: int = None,
) -> JoinPair:
    """Generate the two join columns for one join experiment.

    ``semijoin_selectivity`` (0-100) is the percentage of the inner
    relation's unique values drawn from the outer relation's values —
    "the smaller relation was built with a specified number of values
    from the larger relation".  At 100 every inner tuple has a join
    partner; at 0 the join is empty.

    Reproducing the paper's skewed-test artefact: when the outer column is
    skewed, inner values are sampled from the outer's *tuples* (not its
    distinct values), so heavily duplicated outer values are more likely
    to be picked — "the values for R2 were chosen from R1, which already
    contained a non-uniform distribution of duplicates".
    """
    if not 0.0 <= semijoin_selectivity <= 100.0:
        raise ValueError("semijoin_selectivity must be within [0, 100]")
    outer_unique = outer_spec.unique_values()
    space = key_space if key_space is not None else max(
        (outer_spec.cardinality + inner_spec.cardinality) * 100, 1000
    )
    outer_pool = rng.sample(range(space), outer_unique)
    outer_column = build_values(outer_spec, outer_pool, rng)

    inner_unique = inner_spec.unique_values()
    matching = round(inner_unique * semijoin_selectivity / 100.0)
    matching = min(matching, outer_unique)
    # Sample matching values from the outer tuples (carries skew through),
    # de-duplicated until we have the required number of distinct values.
    chosen: List[int] = []
    seen = set()
    while len(chosen) < matching:
        value = outer_column[rng.randrange(len(outer_column))]
        if value not in seen:
            seen.add(value)
            chosen.append(value)
    # The non-matching remainder comes from outside the outer pool.
    outer_set = set(outer_pool)
    fresh: List[int] = []
    while len(fresh) < inner_unique - matching:
        value = rng.randrange(space, space * 2)
        if value not in outer_set and value not in seen:
            seen.add(value)
            fresh.append(value)
    # Keep the pool in sampling order: values drawn from the outer's
    # tuples come out roughly in descending outer frequency, and the
    # distribution's occurrence counts are likewise heaviest-first, so a
    # skewed outer's heavy hitters stay heavy in the inner column.  That
    # correlation is the paper's Test 4 artefact ("the number of
    # duplicates in R2 is greater than that of R1") and what makes the
    # high-duplicate join output explode.
    inner_pool = chosen + fresh
    inner_column = build_values(inner_spec, inner_pool, rng)
    return JoinPair(
        outer=outer_column,
        inner=inner_column,
        matching_values=frozenset(chosen),
    )


@dataclass
class ChainWorkload:
    """Generated join columns for an n-relation chain.

    ``columns[i]`` holds table i's link columns: ``"prev"`` joins against
    table i-1's ``"next"`` (both absent at the respective chain ends).
    ``pairs[i]`` is the :class:`JoinPair` ground truth for the link
    between tables i and i+1.
    """

    columns: List[dict]
    pairs: List[JoinPair]


def build_fk_chain(
    specs: Sequence[RelationSpec],
    semijoin_selectivity: float,
    rng: random.Random,
    key_space: int = None,
) -> ChainWorkload:
    """Join columns for a chain ``T0 ⋈ T1 ⋈ ... ⋈ Tn-1``.

    Each adjacent pair is generated with :func:`build_join_pair` —
    table i's ``"next"`` column is the pair's outer side, table i+1's
    ``"prev"`` column its inner side — so per-link duplicate
    distributions and semijoin selectivity carry through exactly as in
    the two-relation tests.  With a skewed (e.g. Zipf) distribution on
    the specs, heavy hitters correlate across consecutive links: the
    multi-join workload where a bad join order explodes the
    intermediate results (the cost-based orderer's target case).
    """
    if len(specs) < 2:
        raise ValueError("a chain needs at least two relation specs")
    columns: List[dict] = [{} for __ in specs]
    pairs: List[JoinPair] = []
    for i in range(len(specs) - 1):
        pair = build_join_pair(
            specs[i], specs[i + 1], semijoin_selectivity, rng, key_space
        )
        columns[i]["next"] = pair.outer
        columns[i + 1]["prev"] = pair.inner
        pairs.append(pair)
    return ChainWorkload(columns, pairs)


def query_mix_operations(
    keys: Sequence[int],
    operations: int,
    search_pct: int,
    insert_pct: int,
    delete_pct: int,
    rng: random.Random,
    key_space: int = None,
) -> Iterator[Tuple[str, int]]:
    """An interleaved search/insert/delete stream (the Graph 2 workload).

    Yields ``(op, key)`` pairs.  Inserts draw fresh keys; deletes remove
    keys known to be present; searches probe present keys — keeping the
    index size roughly constant, as in the paper's query-mix tests (equal
    insert and delete percentages).
    """
    if search_pct + insert_pct + delete_pct != 100:
        raise ValueError("percentages must sum to 100")
    space = key_space if key_space is not None else max(len(keys) * 100, 1000)
    present = list(keys)
    present_set = set(present)
    for __ in range(operations):
        roll = rng.randrange(100)
        if roll < search_pct and present:
            yield "search", present[rng.randrange(len(present))]
        elif roll < search_pct + insert_pct or not present:
            while True:
                key = rng.randrange(space)
                if key not in present_set:
                    break
            present.append(key)
            present_set.add(key)
            yield "insert", key
        else:
            pos = rng.randrange(len(present))
            key = present[pos]
            present[pos] = present[-1]
            present.pop()
            present_set.discard(key)
            yield "delete", key
