"""Workload generation (paper Section 3.3.1).

Test relations vary three parameters: cardinality |R|, the duplicate
percentage of the join column (with a skew knob — the truncated-normal
distributions of Graph 3), and the semijoin selectivity (how much of one
relation's value pool is drawn from the other's).
"""

from repro.workloads.distributions import (
    DuplicateDistribution,
    NEAR_UNIFORM_SIGMA,
    MODERATE_SIGMA,
    SKEWED_SIGMA,
    cumulative_tuple_share,
    duplicate_counts,
)
from repro.workloads.generator import (
    JoinPair,
    RelationSpec,
    build_join_pair,
    build_values,
    query_mix_operations,
    unique_keys,
)

__all__ = [
    "DuplicateDistribution",
    "JoinPair",
    "MODERATE_SIGMA",
    "NEAR_UNIFORM_SIGMA",
    "RelationSpec",
    "SKEWED_SIGMA",
    "build_join_pair",
    "build_values",
    "cumulative_tuple_share",
    "duplicate_counts",
    "query_mix_operations",
    "unique_keys",
]
