"""Truncated-normal duplicate distributions (paper Graph 3).

"To get a variable number of duplicates, a specified number of unique
values were generated ... and then the number of occurrences of each of
these values was determined using a random sampling procedure based on a
truncated normal distribution with a variable standard deviation"
(Section 3.3.1).

The sampler: each tuple draws ``x = |N(0, sigma)|`` rejected at 1.0, and is
assigned to the unique value with rank ``floor(x * U)``.  With sigma = 0.1
roughly the first tenth of the values receives about two thirds of the
tuples (the paper's skewed curve); sigma = 0.8 is near-uniform.  Every
unique value is guaranteed at least one occurrence so that the duplicate
percentage is met exactly.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

#: The paper's three standard deviations (Graph 3).
SKEWED_SIGMA = 0.1
MODERATE_SIGMA = 0.4
NEAR_UNIFORM_SIGMA = 0.8


class DuplicateDistribution:
    """How the occurrences of duplicate values are spread.

    ``sigma=None`` selects the exactly-uniform distribution (each unique
    value occurs the same number of times, ±1), used by the paper's
    "uniform" join tests; a float selects the truncated normal with that
    standard deviation.
    """

    def __init__(self, sigma: Optional[float] = None) -> None:
        if sigma is not None and sigma <= 0:
            raise ValueError("sigma must be positive (or None for uniform)")
        self.sigma = sigma

    @property
    def label(self) -> str:
        """Human-readable name for benchmark reports."""
        if self.sigma is None:
            return "uniform"
        if self.sigma <= SKEWED_SIGMA:
            return "skewed"
        if self.sigma >= NEAR_UNIFORM_SIGMA:
            return "near-uniform"
        return f"sigma={self.sigma}"

    def counts(
        self, unique_count: int, total: int, rng: random.Random
    ) -> List[int]:
        """Occurrences per unique value; length ``unique_count``, summing
        to ``total``; every entry >= 1."""
        return duplicate_counts(unique_count, total, self.sigma, rng)


UNIFORM = DuplicateDistribution(None)
SKEWED = DuplicateDistribution(SKEWED_SIGMA)
MODERATE = DuplicateDistribution(MODERATE_SIGMA)
NEAR_UNIFORM = DuplicateDistribution(NEAR_UNIFORM_SIGMA)


class ZipfDistribution(DuplicateDistribution):
    """Zipf-ish duplicate spread: value at rank ``r`` draws occurrences
    proportional to ``1 / r**s``.

    Real foreign-key columns follow power laws far heavier-tailed than
    the paper's truncated normal — the workload shape under which join
    *ordering* (not just join-method choice) decides the op count,
    because a mid-chain join through a heavy hitter explodes the
    intermediate result.  Apportionment is deterministic (largest
    remainder over the exact weights, heaviest rank first, every value
    at least once), so benchmark tables are reproducible from the seed
    alone.
    """

    def __init__(self, s: float = 1.0) -> None:
        if s <= 0:
            raise ValueError("zipf exponent s must be positive")
        # Deliberately skip the parent __init__: sigma is meaningless
        # here, but isinstance checks and the counts() contract hold.
        self.sigma = None
        self.s = s

    @property
    def label(self) -> str:
        return f"zipf(s={self.s:g})"

    def counts(
        self, unique_count: int, total: int, rng: random.Random
    ) -> List[int]:
        if unique_count < 1:
            raise ValueError("need at least one unique value")
        if total < unique_count:
            raise ValueError(
                f"total ({total}) must be >= unique_count ({unique_count})"
            )
        weights = [1.0 / (rank ** self.s) for rank in range(1, unique_count + 1)]
        scale = sum(weights)
        remaining = total - unique_count  # one occurrence is guaranteed
        shares = [w / scale * remaining for w in weights]
        counts = [1 + int(share) for share in shares]
        leftover = total - sum(counts)
        # Largest-remainder apportionment; rank breaks ties so the
        # result is independent of float ordering quirks.
        by_remainder = sorted(
            range(unique_count),
            key=lambda i: (-(shares[i] - int(shares[i])), i),
        )
        for i in by_remainder[:leftover]:
            counts[i] += 1
        return counts


def _truncated_half_normal(sigma: float, rng: random.Random) -> float:
    """One draw from |N(0, sigma)| truncated (by rejection) to [0, 1)."""
    while True:
        x = abs(rng.gauss(0.0, sigma))
        if x < 1.0:
            return x


def duplicate_counts(
    unique_count: int,
    total: int,
    sigma: Optional[float],
    rng: random.Random,
) -> List[int]:
    """Occurrence counts for ``unique_count`` values over ``total`` tuples.

    Raises ``ValueError`` when the request is inconsistent (more unique
    values than tuples, or nothing to generate).
    """
    if unique_count < 1:
        raise ValueError("need at least one unique value")
    if total < unique_count:
        raise ValueError(
            f"total ({total}) must be >= unique_count ({unique_count})"
        )
    counts = [1] * unique_count  # every value occurs at least once
    remaining = total - unique_count
    if remaining == 0:
        return counts
    if sigma is None:
        # Exactly uniform: spread the remainder evenly, ±1.
        base, leftovers = divmod(remaining, unique_count)
        for i in range(unique_count):
            counts[i] += base + (1 if i < leftovers else 0)
        return counts
    for __ in range(remaining):
        x = _truncated_half_normal(sigma, rng)
        counts[int(x * unique_count)] += 1
    return counts


def cumulative_tuple_share(counts: Sequence[int]) -> List[Tuple[float, float]]:
    """The Graph 3 curve: (percent of values, percent of tuples).

    Values are ranked by descending occurrence count, mirroring the
    paper's presentation where the most duplicated values come first.
    """
    total = sum(counts)
    if total == 0:
        return []
    ordered = sorted(counts, reverse=True)
    points: List[Tuple[float, float]] = []
    running = 0
    for i, c in enumerate(ordered, start=1):
        running += c
        points.append((100.0 * i / len(ordered), 100.0 * running / total))
    return points


def expected_tuple_share(sigma: float, value_fraction: float) -> float:
    """Analytic Graph 3 curve: fraction of tuples held by the top
    ``value_fraction`` of values under the truncated half-normal.

    ``F(x) = erf(x / (sigma * sqrt(2))) / erf(1 / (sigma * sqrt(2)))`` —
    used by tests to check the sampler converges to the right shape.
    """
    if not 0.0 <= value_fraction <= 1.0:
        raise ValueError("value_fraction must be within [0, 1]")
    scale = sigma * math.sqrt(2.0)
    return math.erf(value_fraction / scale) / math.erf(1.0 / scale)
