"""Operation counters mirroring the paper's validation methodology.

Section 3.1 of the paper: "The validity of the execution times reported here
was verified by recording and examining the number of comparisons, the
amount of data movement, the number of hash function calls, and other
miscellaneous operations."  The same counters are first-class citizens here.

The module keeps a stack of active :class:`OpCounters`.  Library code calls
the tiny ``count_*`` helpers; when no scope is active the helpers update a
throwaway default instance, so instrumented code never needs to check for
``None``.  The paper compiled its counters out for the final timing runs;
the equivalent here is :func:`set_counters_enabled`, which makes every
helper an early-return no-op (see its docstring for why the helpers are
flag-checked rather than rebound).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import Dict, Iterator, List, Optional


@dataclass
class OpCounters:
    """A bundle of operation counts for one measured region.

    Attributes mirror the cost drivers the paper names for main memory:
    the number of data comparisons and the amount of data movement, plus
    hash-function calls, pointer traversals, and node allocations.
    """

    comparisons: int = 0
    moves: int = 0
    hashes: int = 0
    traversals: int = 0
    allocations: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def reset(self) -> None:
        """Zero every counter, including the ``extra`` map."""
        self.comparisons = 0
        self.moves = 0
        self.hashes = 0
        self.traversals = 0
        self.allocations = 0
        self.extra.clear()

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment a named ad-hoc counter in the ``extra`` map."""
        self.extra[name] = self.extra.get(name, 0) + amount

    def total(self) -> int:
        """Sum of all counters; a crude single-number cost."""
        base = (
            self.comparisons
            + self.moves
            + self.hashes
            + self.traversals
            + self.allocations
        )
        return base + sum(self.extra.values())

    def weighted_cost(
        self,
        compare_weight: float = 1.0,
        move_weight: float = 0.5,
        hash_weight: float = 4.0,
        traverse_weight: float = 1.0,
        alloc_weight: float = 2.0,
    ) -> float:
        """Weighted cost model.

        The defaults approximate the paper's environment: a hash-function
        call costs several comparisons' worth of arithmetic (the paper's
        fixed lookup cost ``k`` is "much smaller than log2(|R2|) but larger
        than 2"); a data move is half a comparison because slides of
        contiguous pointer slots are block memmoves; node/cell allocation
        costs a couple of operations (mid-80s implementations allocate
        from pre-sized pools).
        """
        return (
            self.comparisons * compare_weight
            + self.moves * move_weight
            + self.hashes * hash_weight
            + self.traversals * traverse_weight
            + self.allocations * alloc_weight
        )

    def snapshot(self) -> "OpCounters":
        """Return an independent copy of the current counts."""
        copy = OpCounters(
            comparisons=self.comparisons,
            moves=self.moves,
            hashes=self.hashes,
            traversals=self.traversals,
            allocations=self.allocations,
        )
        copy.extra = dict(self.extra)
        return copy

    def diff(self, earlier: "OpCounters") -> "OpCounters":
        """Return the counts accumulated since ``earlier`` was snapshotted."""
        result = OpCounters(
            comparisons=self.comparisons - earlier.comparisons,
            moves=self.moves - earlier.moves,
            hashes=self.hashes - earlier.hashes,
            traversals=self.traversals - earlier.traversals,
            allocations=self.allocations - earlier.allocations,
        )
        keys = set(self.extra) | set(earlier.extra)
        result.extra = {
            key: self.extra.get(key, 0) - earlier.extra.get(key, 0)
            for key in keys
        }
        return result

    def merge(self, other: "OpCounters") -> None:
        """Add ``other``'s counts into this instance."""
        self.comparisons += other.comparisons
        self.moves += other.moves
        self.hashes += other.hashes
        self.traversals += other.traversals
        self.allocations += other.allocations
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0) + value

    def as_dict(self) -> Dict[str, int]:
        """Flatten the counters into a plain dict (for reports)."""
        result = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "extra"
        }
        result.update(self.extra)
        return result

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "OpCounters":
        """Rebuild counters from an :meth:`as_dict` flattening.

        Unknown keys are ``extra`` events (``as_dict`` flattens them into
        the same namespace), so ``from_dict(c.as_dict())`` round-trips
        exactly — the contract the worker span transport relies on.
        """
        remaining = dict(data)
        counters = cls(
            comparisons=int(remaining.pop("comparisons", 0)),
            moves=int(remaining.pop("moves", 0)),
            hashes=int(remaining.pop("hashes", 0)),
            traversals=int(remaining.pop("traversals", 0)),
            allocations=int(remaining.pop("allocations", 0)),
        )
        counters.extra = {name: int(value) for name, value in remaining.items()}
        return counters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"OpCounters({parts})"


# The bottom of the stack is a sacrificial instance so that count_* helpers
# are unconditional; benchmarks and tests push their own scopes on top.
_stack: List[OpCounters] = [OpCounters()]
_enabled: bool = True


def current_counters() -> OpCounters:
    """Return the innermost active counter scope."""
    return _stack[-1]


@contextmanager
def counters_scope(
    counters: Optional[OpCounters] = None, rollup: bool = False
) -> Iterator[OpCounters]:
    """Activate ``counters`` (or a fresh instance) for the ``with`` body.

    By default nested scopes do *not* roll up into their parents; each
    scope observes exactly the operations executed while it is innermost,
    and those operations are invisible to the enclosing scope.  With
    ``rollup=True`` the popped scope is merged into its parent on exit,
    so enclosing scopes see every operation of their children — the
    behaviour the tracing layer's span tree relies on (a parent span's
    counters are the inclusive sum of its own work plus its children's).
    """
    scope = counters if counters is not None else OpCounters()
    _stack.append(scope)
    try:
        yield scope
    finally:
        _stack.pop()
        if rollup:
            _stack[-1].merge(scope)


def set_counters_enabled(enabled: bool) -> None:
    """Globally enable or disable counting.

    Disabling makes every ``count_*`` helper an early-return no-op by
    flipping a module flag that each helper checks per call.  The helpers
    are *not* rebound to empty functions: callers throughout the codebase
    import them by value (``from repro.instrument import count_compare``),
    so a rebinding here would never reach those call sites.  The residual
    per-call cost is one global load and branch — measured by
    ``benchmarks/bench_counter_overhead.py``, which is the closest a
    Python reproduction gets to the paper's practice of compiling the
    counters out for the final timed runs.
    """
    global _enabled
    _enabled = enabled


def count_compare(n: int = 1) -> None:
    """Record ``n`` data comparisons."""
    if _enabled:
        _stack[-1].comparisons += n


def count_move(n: int = 1) -> None:
    """Record ``n`` units of data movement (one slot/pointer copied)."""
    if _enabled:
        _stack[-1].moves += n


def count_hash(n: int = 1) -> None:
    """Record ``n`` hash-function evaluations."""
    if _enabled:
        _stack[-1].hashes += n


def count_traverse(n: int = 1) -> None:
    """Record ``n`` pointer traversals (child / chain / overflow links)."""
    if _enabled:
        _stack[-1].traversals += n


def count_event(name: str, n: int = 1) -> None:
    """Record ``n`` occurrences of a named ad-hoc operation.

    Events land in the active scope's ``extra`` map and therefore count
    toward :meth:`OpCounters.total`.  Used for the reuse subsystem's
    cache hit/miss/eviction accounting and for parse/plan work.
    """
    if _enabled:
        extra = _stack[-1].extra
        extra[name] = extra.get(name, 0) + n


def count_alloc(n: int = 1) -> None:
    """Record ``n`` node / bucket allocations."""
    if _enabled:
        _stack[-1].allocations += n
