"""Wall-clock timing helpers.

The paper timed its C implementations with a routine "similar to the
'getrusage' facility of Unix" (Section 3.1).  ``time.perf_counter_ns`` is
the closest portable equivalent for elapsed time.  Timings in this Python
reproduction are secondary to the operation counters (see
:mod:`repro.instrument.counters`) because interpreter overhead distorts
cross-algorithm wall-clock comparisons.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Tuple


class Stopwatch:
    """A restartable stopwatch accumulating elapsed nanoseconds.

    Usage::

        sw = Stopwatch()
        with sw:
            run_phase_one()
        with sw:
            run_phase_two()
        print(sw.elapsed_seconds)
    """

    def __init__(self) -> None:
        self._elapsed_ns = 0
        self._started_at = None

    def start(self) -> None:
        """Begin (or resume) timing."""
        if self._started_at is not None:
            raise RuntimeError("Stopwatch already running")
        self._started_at = time.perf_counter_ns()

    def stop(self) -> None:
        """Pause timing, adding the interval to the accumulated total."""
        if self._started_at is None:
            raise RuntimeError("Stopwatch is not running")
        self._elapsed_ns += time.perf_counter_ns() - self._started_at
        self._started_at = None

    def reset(self) -> None:
        """Zero the accumulated time; the stopwatch must be stopped."""
        if self._started_at is not None:
            raise RuntimeError("Stopwatch is running; stop it first")
        self._elapsed_ns = 0

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently timing."""
        return self._started_at is not None

    @property
    def elapsed_ns(self) -> int:
        """Accumulated elapsed time in nanoseconds (excludes a live run)."""
        return self._elapsed_ns

    @property
    def elapsed_seconds(self) -> float:
        """Accumulated elapsed time in seconds."""
        return self._elapsed_ns / 1e9

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def time_call(func: Callable[..., Any], *args: Any, **kwargs: Any) -> Tuple[Any, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter_ns()
    result = func(*args, **kwargs)
    elapsed = (time.perf_counter_ns() - start) / 1e9
    return result, elapsed
