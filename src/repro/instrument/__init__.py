"""Instrumentation: machine-independent operation counters and timers.

The paper validated its VAX 11/750 wall-clock numbers against counts of
comparisons, data movement, and hash-function calls (Section 3.1).  In this
Python reproduction those counters are the *primary* cost metric, because
interpreter overhead distorts wall-clock comparisons; timers are still
provided as a secondary measure.
"""

from repro.instrument.counters import (
    OpCounters,
    count_alloc,
    count_compare,
    count_event,
    count_hash,
    count_move,
    count_traverse,
    counters_scope,
    current_counters,
    set_counters_enabled,
)
from repro.instrument.timer import Stopwatch, time_call

__all__ = [
    "OpCounters",
    "Stopwatch",
    "count_alloc",
    "count_compare",
    "count_event",
    "count_hash",
    "count_move",
    "count_traverse",
    "counters_scope",
    "current_counters",
    "set_counters_enabled",
    "time_call",
]
