"""SQL tokenizer.

Produces a flat token stream: keywords (case-insensitive), identifiers,
integer/float/string literals, operators, and punctuation.  Kept
deliberately small — the grammar in :mod:`repro.sql.parser` documents
exactly what the dialect supports.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import QueryError
from repro.instrument import count_event


class SQLSyntaxError(QueryError):
    """Lexical or grammatical error in a SQL statement."""


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    OP = "op"
    PUNCT = "punct"
    END = "end"


#: Reserved words recognised as keywords (upper-cased canonical form).
KEYWORDS = {
    "ANALYZE", "AND", "AS", "ASC", "BETWEEN", "BY", "CREATE", "DELETE", "DESC",
    "DISTINCT", "DROP", "EXPLAIN", "FROM", "GROUP", "INDEX", "INSERT", "INTO",
    "JOIN", "KEY", "LIMIT", "NOT", "NULL", "ON", "OR", "ORDER", "PRIMARY",
    "REFERENCES", "SELECT", "SET", "TABLE", "UNIQUE", "UPDATE", "USING",
    "VALUES", "WHERE",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<space>\s+)
  | (?P<float>\d+\.\d+)
  | (?P<int>\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9.]*)
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[(),;*?])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; raises :class:`SQLSyntaxError` on junk."""
    tokens: List[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SQLSyntaxError(
                f"unexpected character {text[position]!r} at {position}"
            )
        kind = match.lastgroup
        value = match.group()
        if kind != "space":
            if kind == "ident":
                upper = value.upper()
                if upper in KEYWORDS:
                    tokens.append(Token(TokenType.KEYWORD, upper, position))
                else:
                    tokens.append(Token(TokenType.IDENT, value, position))
            elif kind == "int":
                tokens.append(Token(TokenType.INT, value, position))
            elif kind == "float":
                tokens.append(Token(TokenType.FLOAT, value, position))
            elif kind == "string":
                # Strip quotes, un-double embedded quotes.
                body = value[1:-1].replace("''", "'")
                tokens.append(Token(TokenType.STRING, body, position))
            elif kind == "op":
                canonical = "!=" if value == "<>" else value
                tokens.append(Token(TokenType.OP, canonical, position))
            else:
                tokens.append(Token(TokenType.PUNCT, value, position))
        position = match.end()
    tokens.append(Token(TokenType.END, "", len(text)))
    count_event("sql_tokens", len(tokens))
    return tokens
