"""An interactive SQL shell over a fresh MM-DBMS.

Run:  python -m repro.sql

Commands beyond SQL: ``.help``, ``.tables``, ``.indexes <table>``,
``.quit``.  Statements end at the newline (no multi-line continuation).
"""

from __future__ import annotations

import sys

from repro import MainMemoryDatabase, ReproError
from repro.query.aggregate import ValueTable
from repro.storage.temporary import TemporaryList

BANNER = """repro SQL shell — a main-memory DBMS after Lehman & Carey (1986)
Type SQL statements, or .help for shell commands."""

HELP = """Shell commands:
  .help               this message
  .tables             list relations
  .indexes <table>    list a relation's indexes
  .quit               exit
Anything else is parsed as SQL (see repro.sql for the dialect)."""


def render(result) -> str:
    """Pretty-print a statement result."""
    if result is None:
        return "ok"
    if isinstance(result, str):
        return result
    if isinstance(result, int):
        return f"{result} row(s) affected"
    if isinstance(result, list):  # INSERT's tuple pointers
        return f"inserted {len(result)} row(s)"
    if isinstance(result, (TemporaryList, ValueTable)):
        if isinstance(result, TemporaryList):
            columns = result.descriptor.column_names
            rows = result.materialize(resolve_refs=True)
        else:
            columns = result.columns
            rows = result.rows()
        if not rows:
            return "(empty)"
        widths = [
            max(len(str(c)), *(len(str(r[i])) for r in rows))
            for i, c in enumerate(columns)
        ]
        lines = [
            " | ".join(str(c).ljust(w) for c, w in zip(columns, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in rows:
            lines.append(
                " | ".join(str(v).ljust(w) for v, w in zip(row, widths))
            )
        lines.append(f"({len(rows)} row(s))")
        return "\n".join(lines)
    return repr(result)


def run_command(db: MainMemoryDatabase, line: str) -> bool:
    """Handle a dot-command; returns False to exit the shell."""
    parts = line.split()
    if parts[0] == ".quit":
        return False
    if parts[0] == ".help":
        print(HELP)
    elif parts[0] == ".tables":
        for name in db.catalog.names:
            relation = db.relation(name)
            print(f"  {name} ({len(relation)} rows, "
                  f"{len(relation.indexes)} indexes)")
    elif parts[0] == ".indexes" and len(parts) > 1:
        try:
            relation = db.relation(parts[1])
        except ReproError as exc:
            print(f"error: {exc}")
            return True
        for name, index in relation.indexes.items():
            unique = "unique " if index.unique else ""
            print(f"  {name}: {unique}{index.kind} on {index.field_name}")
    else:
        print(f"unknown command {parts[0]!r}; try .help")
    return True


def main() -> int:
    db = MainMemoryDatabase()
    print(BANNER)
    while True:
        try:
            line = input("sql> ").strip()
        except (EOFError, KeyboardInterrupt):
            print()
            return 0
        if not line:
            continue
        if line.startswith("."):
            if not run_command(db, line):
                return 0
            continue
        try:
            print(render(db.sql(line)))
        except ReproError as exc:
            print(f"error: {exc}")


if __name__ == "__main__":
    sys.exit(main())
