"""Prepared statements: parse and type-infer once, bind per execution.

``MainMemoryDatabase.prepare("SELECT ... WHERE Id = ?")`` lowers the
statement through the lexer and parser exactly once.  Each ``execute``
call type-checks the supplied values against the schema (inferred at
prepare time from the parameter's syntactic position), substitutes them
into a fresh AST, and runs it — with the plan cache enabled, repeated
executions with equal parameters also skip the optimizer and, on a
read-only workload, the executor itself.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import CatalogError, QueryError, SchemaError
from repro.sql.parser import (
    Condition,
    ConditionGroup,
    Delete,
    Explain,
    Insert,
    Parameter,
    Select,
    Update,
    parse_statement,
)
from repro.storage.schema import FieldType


def contains_parameters(statement) -> bool:
    """Whether any ``?`` placeholder remains in the statement."""
    return bool(_parameter_slots(statement))


def _condition_parameters(conditions) -> List[Tuple[Parameter, str]]:
    """(parameter, column) pairs from a condition tuple/tree."""
    found: List[Tuple[Parameter, str]] = []
    for node in conditions:
        if isinstance(node, ConditionGroup):
            found.extend(_condition_parameters(node.children))
        elif isinstance(node, Condition):
            if isinstance(node.value, Parameter):
                found.append((node.value, node.column))
            if isinstance(node.high, Parameter):
                found.append((node.high, node.column))
    return found


def _parameter_slots(statement) -> List[Tuple[Parameter, Optional[str], Optional[int]]]:
    """Every parameter with its (column, insert-position) context.

    ``column`` is set for condition/assignment parameters, the integer
    position for INSERT row parameters; both None when the context gives
    no typing information.
    """
    slots: List[Tuple[Parameter, Optional[str], Optional[int]]] = []
    if isinstance(statement, Explain):
        statement = statement.select
    if isinstance(statement, (Select, Delete)):
        for param, column in _condition_parameters(statement.conditions):
            slots.append((param, column, None))
    elif isinstance(statement, Update):
        for column, value in statement.assignments:
            if isinstance(value, Parameter):
                slots.append((value, column, None))
        for param, column in _condition_parameters(statement.conditions):
            slots.append((param, column, None))
    elif isinstance(statement, Insert):
        for row in statement.rows:
            for position, value in enumerate(row):
                if isinstance(value, Parameter):
                    slots.append((value, None, position))
    return slots


def _bind_conditions(conditions, values: Sequence[Any]):
    bound = []
    for node in conditions:
        if isinstance(node, ConditionGroup):
            bound.append(
                ConditionGroup(node.op, _bind_conditions(node.children, values))
            )
        elif isinstance(node, Condition):
            value, high = node.value, node.high
            if isinstance(value, Parameter):
                value = values[value.index]
            if isinstance(high, Parameter):
                high = values[high.index]
            bound.append(Condition(node.column, node.op, value, high))
        else:
            bound.append(node)
    return tuple(bound)


def bind_statement(statement, values: Sequence[Any]):
    """A copy of ``statement`` with every ``?`` replaced by its value."""
    if isinstance(statement, Explain):
        return Explain(bind_statement(statement.select, values))
    if isinstance(statement, (Select, Delete)):
        return dataclasses.replace(
            statement, conditions=_bind_conditions(statement.conditions, values)
        )
    if isinstance(statement, Update):
        assignments = tuple(
            (
                column,
                values[value.index] if isinstance(value, Parameter) else value,
            )
            for column, value in statement.assignments
        )
        return Update(
            statement.table,
            assignments,
            _bind_conditions(statement.conditions, values),
        )
    if isinstance(statement, Insert):
        rows = tuple(
            tuple(
                values[v.index] if isinstance(v, Parameter) else v
                for v in row
            )
            for row in statement.rows
        )
        return Insert(statement.table, rows)
    return statement


class PreparedStatement:
    """A parsed, type-inferred SQL statement with ``?`` placeholders."""

    def __init__(self, db, text: str) -> None:
        self.db = db
        self.text = text
        self.statement = parse_statement(text)
        slots = _parameter_slots(self.statement)
        indices = sorted({param.index for param, __, __ in slots})
        self.parameter_count = len(indices)
        if indices != list(range(self.parameter_count)):
            raise QueryError("malformed parameter numbering")  # pragma: no cover
        # Expected logical type per parameter, inferred from the schema
        # at prepare time (None when the position gives no information).
        self.parameter_types: List[Optional[FieldType]] = [
            None
        ] * self.parameter_count
        for param, column, position in slots:
            inferred = self._infer_type(column, position)
            if inferred is not None:
                self.parameter_types[param.index] = inferred

    # -- type inference ----------------------------------------------------

    def _tables(self) -> List[str]:
        statement = self.statement
        if isinstance(statement, Explain):
            statement = statement.select
        tables = [statement.table]
        if isinstance(statement, Select):
            tables.extend(join.table for join in statement.joins)
        return tables

    def _infer_type(
        self, column: Optional[str], position: Optional[int]
    ) -> Optional[FieldType]:
        statement = self.statement
        if isinstance(statement, Explain):
            statement = statement.select
        try:
            if position is not None:
                schema = self.db.catalog.relation(statement.table).schema
                if position < len(schema.fields):
                    return schema.fields[position].type
                return None
            if column is None:
                return None
            candidates: List[FieldType] = []
            if "." in column:
                qualifier, bare = column.rsplit(".", 1)
                if qualifier in self._tables():
                    schema = self.db.catalog.relation(qualifier).schema
                    if bare in schema.names:
                        return schema.field(bare).type
                return None
            for table in self._tables():
                schema = self.db.catalog.relation(table).schema
                if column in schema.names:
                    candidates.append(schema.field(column).type)
            if len(candidates) == 1:
                return candidates[0]
            return None
        except CatalogError:
            return None

    # -- execution ---------------------------------------------------------

    def bind(self, *values: Any):
        """Type-check ``values`` and return the bound AST."""
        if len(values) != self.parameter_count:
            raise QueryError(
                f"statement takes {self.parameter_count} parameter(s), "
                f"got {len(values)}"
            )
        for index, value in enumerate(values):
            expected = self.parameter_types[index]
            if expected is None or value is None:
                continue
            try:
                expected.validate(value)
            except SchemaError as exc:
                raise QueryError(
                    f"parameter {index + 1}: {exc}"
                ) from None
        return bind_statement(self.statement, values)

    def execute(self, *values: Any):
        """Bind ``values`` and run the statement.

        Returns whatever ``db.sql`` would for the same statement type.
        """
        bound = self.bind(*values)
        interpreter = self.db._interpreter()
        plan_key = None
        if self.db.plan_cache is not None or self.db.result_cache is not None:
            from repro.cache.plan_cache import normalize_sql

            try:
                hash(values)
            except TypeError:
                pass  # unhashable binding: run uncached
            else:
                plan_key = ("prepared", normalize_sql(self.text), values)
                mode = getattr(
                    self.db.optimizer, "join_ordering", "written"
                )
                if mode != "written":
                    plan_key = plan_key + (mode,)
        return interpreter.run_statement(bound, plan_key)

    def explain(self, *values: Any) -> str:
        """Plan description for this statement with ``values`` bound."""
        bound = self.bind(*values)
        if not isinstance(bound, Select):
            raise QueryError("explain requires a SELECT statement")
        return self.db._interpreter().run_statement(Explain(bound), None)
