"""Recursive-descent parser for the SQL subset.

Grammar (keywords case-insensitive)::

    statement      := create_table | create_index | drop | insert
                    | select | update | delete | explain
    create_table   := CREATE TABLE ident '(' column (',' column)*
                      [',' PRIMARY KEY '(' ident ')'] ')'
    column         := ident type [REFERENCES ident '(' ident ')']
    type           := INT | INTEGER | FLOAT | REAL | TEXT | STR | STRING
                    | VARCHAR
    create_index   := CREATE [UNIQUE] INDEX ident ON ident
                      '(' ident (',' ident)* ')' [USING ident]
    drop           := DROP TABLE ident | DROP INDEX ident ON ident
    insert         := INSERT INTO ident VALUES row (',' row)*
    row            := '(' literal (',' literal)* ')'
    select         := SELECT [DISTINCT] select_items
                      FROM ident (JOIN ident ON ident op ident
                                  [USING ident])*
                      [WHERE condition (AND condition)*]
                      [GROUP BY ident (',' ident)*]
                      [ORDER BY ident [ASC|DESC]] [LIMIT int]
    select_items   := '*' | select_item (',' select_item)*
    select_item    := ident
                    | agg '(' ('*' | ident) ')' [AS ident]
    agg            := COUNT | SUM | AVG | MIN | MAX
    where_expr     := and_chain (OR and_chain)*     -- AND binds tighter
    and_chain      := condition (AND condition)*
    condition      := ident op literal
                    | ident BETWEEN literal AND literal
    update         := UPDATE ident SET ident '=' literal
                      (',' ident '=' literal)*
                      [WHERE condition (AND condition)*]
    delete         := DELETE FROM ident
                      [WHERE condition (AND condition)*]
    explain        := EXPLAIN [ANALYZE] select

Statements parse into plain dataclasses (below); the interpreter lowers
them onto the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.sql.lexer import SQLSyntaxError, Token, TokenType, tokenize

__all__ = [
    "AggregateCall",
    "ConditionGroup",
    "JoinClause",
    "SQLSyntaxError",
    "parse_statement",
    "CreateTable",
    "CreateIndex",
    "DropTable",
    "DropIndex",
    "Insert",
    "Select",
    "Update",
    "Delete",
    "Explain",
    "ColumnDef",
    "Condition",
    "Parameter",
]

_TYPES = {
    "INT": "int", "INTEGER": "int",
    "FLOAT": "float", "REAL": "float",
    "TEXT": "str", "STR": "str", "STRING": "str", "VARCHAR": "str",
}


@dataclass(frozen=True)
class Parameter:
    """A ``?`` placeholder in a prepared statement, by 0-based position.

    Parameters may appear anywhere a literal may: conditions, INSERT
    rows, and UPDATE assignments.  Executing a statement that still
    contains unbound parameters is a :class:`~repro.errors.QueryError`;
    :mod:`repro.sql.prepared` substitutes values per execution.
    """

    index: int


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type_name: str  # "int" | "float" | "str"
    references: Optional[Tuple[str, str]] = None  # (table, column)


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: Tuple[ColumnDef, ...]
    primary_key: Optional[str] = None


@dataclass(frozen=True)
class CreateIndex:
    name: str
    table: str
    columns: Tuple[str, ...]
    unique: bool = False
    kind: Optional[str] = None


@dataclass(frozen=True)
class DropTable:
    name: str


@dataclass(frozen=True)
class DropIndex:
    name: str
    table: str


@dataclass(frozen=True)
class Insert:
    table: str
    rows: Tuple[Tuple[Any, ...], ...]


@dataclass(frozen=True)
class JoinClause:
    """One JOIN step: ``JOIN table ON left op right [USING method]``.

    ``left`` names a column of the accumulated result so far; ``right``
    a column of the newly joined ``table``.
    """

    table: str
    left: str
    right: str
    op: str = "="
    method: Optional[str] = None


@dataclass(frozen=True)
class AggregateCall:
    """``func(column) AS label`` in a select list (column None = ``*``)."""

    func: str  # "count" | "sum" | "avg" | "min" | "max"
    column: Optional[str]
    label: str


@dataclass(frozen=True)
class Condition:
    column: str
    op: str  # "=", "!=", "<", "<=", ">", ">=", "between"
    value: Any
    high: Any = None  # BETWEEN only


@dataclass(frozen=True)
class ConditionGroup:
    """A boolean combination of conditions: op is "and" or "or".

    A WHERE clause without OR parses to a flat tuple of :class:`Condition`
    (implicit AND, the historical shape); one containing OR parses to a
    single :class:`ConditionGroup` tree.
    """

    op: str  # "and" | "or"
    children: Tuple[Any, ...]  # Condition | ConditionGroup


@dataclass(frozen=True)
class Select:
    table: str
    columns: Tuple[str, ...]  # empty tuple means '*' (when no aggregates)
    distinct: bool = False
    aggregates: Tuple[AggregateCall, ...] = ()
    group_by: Tuple[str, ...] = ()
    joins: Tuple[JoinClause, ...] = ()
    conditions: Tuple[Condition, ...] = ()
    order_by: Optional[str] = None
    order_desc: bool = False
    limit: Optional[int] = None

    # Legacy single-join accessors (the first JOIN clause, or None).
    @property
    def join_table(self) -> Optional[str]:
        return self.joins[0].table if self.joins else None

    @property
    def join_left(self) -> Optional[str]:
        return self.joins[0].left if self.joins else None

    @property
    def join_right(self) -> Optional[str]:
        return self.joins[0].right if self.joins else None

    @property
    def join_op(self) -> str:
        return self.joins[0].op if self.joins else "="

    @property
    def join_method(self) -> Optional[str]:
        return self.joins[0].method if self.joins else None


@dataclass(frozen=True)
class Update:
    table: str
    assignments: Tuple[Tuple[str, Any], ...]
    conditions: Tuple[Condition, ...] = ()


@dataclass(frozen=True)
class Delete:
    table: str
    conditions: Tuple[Condition, ...] = ()


@dataclass(frozen=True)
class Explain:
    select: Select
    analyze: bool = False


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0
        self._param_count = 0

    # ------------------------------------------------------------------ #
    # token plumbing
    # ------------------------------------------------------------------ #

    def peek(self) -> Token:
        return self._tokens[self._index]

    def advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.END:
            self._index += 1
        return token

    def expect_keyword(self, word: str) -> Token:
        token = self.advance()
        if not token.is_keyword(word):
            raise SQLSyntaxError(
                f"expected {word}, got {token.value!r} at {token.position}"
            )
        return token

    def accept_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    def expect_punct(self, char: str) -> None:
        token = self.advance()
        if token.type is not TokenType.PUNCT or token.value != char:
            raise SQLSyntaxError(
                f"expected {char!r}, got {token.value!r} at {token.position}"
            )

    def accept_punct(self, char: str) -> bool:
        token = self.peek()
        if token.type is TokenType.PUNCT and token.value == char:
            self.advance()
            return True
        return False

    def expect_ident(self) -> str:
        token = self.advance()
        if token.type is not TokenType.IDENT:
            raise SQLSyntaxError(
                f"expected identifier, got {token.value!r} at "
                f"{token.position}"
            )
        return token.value

    def literal(self) -> Any:
        token = self.advance()
        if token.type is TokenType.INT:
            return int(token.value)
        if token.type is TokenType.FLOAT:
            return float(token.value)
        if token.type is TokenType.STRING:
            return token.value
        if token.is_keyword("NULL"):
            return None
        if token.type is TokenType.PUNCT and token.value == "?":
            parameter = Parameter(self._param_count)
            self._param_count += 1
            return parameter
        raise SQLSyntaxError(
            f"expected literal, got {token.value!r} at {token.position}"
        )

    def end(self) -> None:
        self.accept_punct(";")
        token = self.peek()
        if token.type is not TokenType.END:
            raise SQLSyntaxError(
                f"trailing input from {token.value!r} at {token.position}"
            )

    # ------------------------------------------------------------------ #
    # statements
    # ------------------------------------------------------------------ #

    def statement(self):
        token = self.peek()
        if token.is_keyword("CREATE"):
            return self.create()
        if token.is_keyword("DROP"):
            return self.drop()
        if token.is_keyword("INSERT"):
            return self.insert()
        if token.is_keyword("SELECT"):
            select = self.select()
            self.end()
            return select
        if token.is_keyword("UPDATE"):
            return self.update()
        if token.is_keyword("DELETE"):
            return self.delete()
        if token.is_keyword("EXPLAIN"):
            self.advance()
            analyze = self.accept_keyword("ANALYZE")
            select = self.select()
            self.end()
            return Explain(select, analyze)
        raise SQLSyntaxError(
            f"unknown statement start {token.value!r} at {token.position}"
        )

    def create(self):
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self.create_table()
        unique = self.accept_keyword("UNIQUE")
        self.expect_keyword("INDEX")
        return self.create_index(unique)

    def create_table(self) -> CreateTable:
        name = self.expect_ident()
        self.expect_punct("(")
        columns: List[ColumnDef] = []
        primary_key: Optional[str] = None
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                self.expect_punct("(")
                primary_key = self.expect_ident()
                self.expect_punct(")")
            else:
                columns.append(self.column_def())
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        self.end()
        if not columns:
            raise SQLSyntaxError("a table needs at least one column")
        return CreateTable(name, tuple(columns), primary_key)

    def column_def(self) -> ColumnDef:
        name = self.expect_ident()
        type_token = self.advance()
        type_word = type_token.value.upper()
        if type_word not in _TYPES:
            raise SQLSyntaxError(
                f"unknown column type {type_token.value!r} at "
                f"{type_token.position}"
            )
        references = None
        if self.accept_keyword("REFERENCES"):
            target_table = self.expect_ident()
            self.expect_punct("(")
            target_column = self.expect_ident()
            self.expect_punct(")")
            references = (target_table, target_column)
        return ColumnDef(name, _TYPES[type_word], references)

    def create_index(self, unique: bool) -> CreateIndex:
        name = self.expect_ident()
        self.expect_keyword("ON")
        table = self.expect_ident()
        self.expect_punct("(")
        columns = [self.expect_ident()]
        while self.accept_punct(","):
            columns.append(self.expect_ident())
        self.expect_punct(")")
        kind = None
        if self.accept_keyword("USING"):
            kind = self.expect_ident()
        self.end()
        return CreateIndex(name, table, tuple(columns), unique, kind)

    def drop(self):
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            name = self.expect_ident()
            self.end()
            return DropTable(name)
        self.expect_keyword("INDEX")
        name = self.expect_ident()
        self.expect_keyword("ON")
        table = self.expect_ident()
        self.end()
        return DropIndex(name, table)

    def insert(self) -> Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident()
        self.expect_keyword("VALUES")
        rows = [self.value_row()]
        while self.accept_punct(","):
            rows.append(self.value_row())
        self.end()
        return Insert(table, tuple(rows))

    def value_row(self) -> Tuple[Any, ...]:
        self.expect_punct("(")
        values = [self.literal()]
        while self.accept_punct(","):
            values.append(self.literal())
        self.expect_punct(")")
        return tuple(values)

    _AGG_FUNCS = ("COUNT", "SUM", "AVG", "MIN", "MAX")

    def select_item(self):
        """Either a plain column name or an aggregate call."""
        name = self.expect_ident()
        if name.upper() in self._AGG_FUNCS and self.accept_punct("("):
            func = name.lower()
            if self.accept_punct("*"):
                column = None
            else:
                column = self.expect_ident()
            self.expect_punct(")")
            label = f"{func}({column if column is not None else '*'})"
            if self.accept_keyword("AS"):
                label = self.expect_ident()
            return AggregateCall(func, column, label)
        return name

    def select(self) -> Select:
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT")
        columns: List[str] = []
        aggregates: List[AggregateCall] = []
        if self.accept_punct("*"):
            pass
        else:
            items = [self.select_item()]
            while self.accept_punct(","):
                items.append(self.select_item())
            for item in items:
                if isinstance(item, AggregateCall):
                    aggregates.append(item)
                else:
                    columns.append(item)
        self.expect_keyword("FROM")
        table = self.expect_ident()
        joins: List[JoinClause] = []
        while self.accept_keyword("JOIN"):
            join_table = self.expect_ident()
            self.expect_keyword("ON")
            join_left = self.expect_ident()
            op_token = self.advance()
            if op_token.type is not TokenType.OP:
                raise SQLSyntaxError(
                    f"expected join operator, got {op_token.value!r}"
                )
            join_method = None
            join_right = self.expect_ident()
            if self.accept_keyword("USING"):
                join_method = self.expect_ident()
            joins.append(
                JoinClause(
                    join_table, join_left, join_right,
                    op_token.value, join_method,
                )
            )
        conditions = self.where_clause()
        group_by: List[str] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.expect_ident())
            while self.accept_punct(","):
                group_by.append(self.expect_ident())
        order_by, order_desc = None, False
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by = self.expect_ident()
            if self.accept_keyword("DESC"):
                order_desc = True
            else:
                self.accept_keyword("ASC")
        limit = None
        if self.accept_keyword("LIMIT"):
            token = self.advance()
            if token.type is not TokenType.INT:
                raise SQLSyntaxError(
                    f"LIMIT needs an integer, got {token.value!r}"
                )
            limit = int(token.value)
        return Select(
            table=table,
            columns=tuple(columns),
            distinct=distinct,
            aggregates=tuple(aggregates),
            group_by=tuple(group_by),
            joins=tuple(joins),
            conditions=conditions,
            order_by=order_by,
            order_desc=order_desc,
            limit=limit,
        )

    def where_clause(self) -> Tuple[Any, ...]:
        if not self.accept_keyword("WHERE"):
            return ()
        tree = self.or_expression()
        # Pure-AND clauses keep the historical flat-tuple shape.
        if isinstance(tree, Condition):
            return (tree,)
        if isinstance(tree, ConditionGroup) and tree.op == "and" and all(
            isinstance(child, Condition) for child in tree.children
        ):
            return tree.children
        return (tree,)

    def or_expression(self):
        branches = [self.and_expression()]
        while self.accept_keyword("OR"):
            branches.append(self.and_expression())
        if len(branches) == 1:
            return branches[0]
        return ConditionGroup("or", tuple(branches))

    def and_expression(self):
        conditions = [self.condition()]
        while self.accept_keyword("AND"):
            conditions.append(self.condition())
        if len(conditions) == 1:
            return conditions[0]
        return ConditionGroup("and", tuple(conditions))

    def condition(self) -> Condition:
        column = self.expect_ident()
        if self.accept_keyword("BETWEEN"):
            low = self.literal()
            self.expect_keyword("AND")
            high = self.literal()
            return Condition(column, "between", low, high)
        op_token = self.advance()
        if op_token.type is not TokenType.OP:
            raise SQLSyntaxError(
                f"expected comparison operator, got {op_token.value!r} at "
                f"{op_token.position}"
            )
        return Condition(column, op_token.value, self.literal())

    def update(self) -> Update:
        self.expect_keyword("UPDATE")
        table = self.expect_ident()
        self.expect_keyword("SET")
        assignments = [self.assignment()]
        while self.accept_punct(","):
            assignments.append(self.assignment())
        conditions = self.where_clause()
        self.end()
        return Update(table, tuple(assignments), conditions)

    def assignment(self) -> Tuple[str, Any]:
        column = self.expect_ident()
        token = self.advance()
        if token.type is not TokenType.OP or token.value != "=":
            raise SQLSyntaxError(
                f"expected '=', got {token.value!r} at {token.position}"
            )
        return column, self.literal()

    def delete(self) -> Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_ident()
        conditions = self.where_clause()
        self.end()
        return Delete(table, conditions)


def parse_statement(text: str):
    """Parse one SQL statement into its AST dataclass."""
    return _Parser(tokenize(text)).statement()
