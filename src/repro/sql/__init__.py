"""A small SQL front-end for the MM-DBMS.

The paper predates SQL's ubiquity, but its architecture is explicitly
relational; this package gives the engine the query interface a
downstream user expects.  Supported statements::

    CREATE TABLE Emp (Name TEXT, Id INT, Age INT,
                      Dept INT REFERENCES Dept(Id),
                      PRIMARY KEY (Id))
    CREATE UNIQUE INDEX by_name ON Emp (Name) USING modified_linear_hash
    INSERT INTO Emp VALUES ('Dave', 23, 24, 459), ('Suzan', 12, 27, 459)
    SELECT Name, Age FROM Emp WHERE Age > 25 AND Age <= 60
    SELECT Name FROM Emp WHERE Id = 23 OR Id = 44   -- AND binds tighter
    SELECT DISTINCT d.* ...           -- (qualified stars not supported)
    SELECT * FROM Emp JOIN Dept ON Dept = Id USING tree_merge
    SELECT ... ORDER BY Age DESC LIMIT 10
    UPDATE Emp SET Age = 25 WHERE Id = 23
    DELETE FROM Emp WHERE Age >= 65
    DROP INDEX by_name ON Emp
    DROP TABLE Emp
    EXPLAIN SELECT ...

Everything lowers onto the paper's machinery: WHERE clauses go through
the Section 4 access-path rules, joins through the join-method
preference order (with ``USING <method>`` to force one), and DISTINCT is
hash-based duplicate elimination.
"""

from repro.sql.interpreter import SQLInterpreter
from repro.sql.parser import SQLSyntaxError, parse_statement

__all__ = ["SQLInterpreter", "SQLSyntaxError", "parse_statement"]
