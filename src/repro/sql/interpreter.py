"""Lowers parsed SQL statements onto the MM-DBMS engine.

The interpreter is a thin layer: WHERE clauses become the predicate
algebra (and hence the Section 4 access-path rules), joins go through the
optimizer's method preference (or a ``USING`` override), DISTINCT is
hash-based duplicate elimination, and ORDER BY uses the paper's
instrumented quicksort on the pointer rows.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple, Union

from repro.cache.plan_cache import normalize_sql
from repro.errors import QueryError, SchemaError
from repro.obs import runtime as obs_runtime
from repro.query.predicates import (
    Comparison,
    Conjunction,
    Op,
    Predicate,
    between,
)
from repro.sql import parser as ast
from repro.sql.prepared import contains_parameters
from repro.storage.schema import Field, FieldType, ForeignKey
from repro.storage.temporary import TemporaryList

_FIELD_TYPES = {
    "int": FieldType.INT,
    "float": FieldType.FLOAT,
    "str": FieldType.STR,
}

_OPS = {
    "=": Op.EQ,
    "!=": Op.NE,
    "<": Op.LT,
    "<=": Op.LE,
    ">": Op.GT,
    ">=": Op.GE,
}


def _tree_to_predicate(tree) -> Predicate:
    """One condition tree (Condition or ConditionGroup) to a Predicate."""
    from repro.query.predicates import Disjunction

    if isinstance(tree, ast.ConditionGroup):
        parts = tuple(_tree_to_predicate(child) for child in tree.children)
        if tree.op == "or":
            return Disjunction(parts)
        return Conjunction(parts)
    if tree.op == "between":
        return between(tree.column, tree.value, tree.high)
    return Comparison(tree.column, _OPS[tree.op], tree.value)


def _tree_leaves(tree) -> List[ast.Condition]:
    """All Condition leaves of a condition tree."""
    if isinstance(tree, ast.ConditionGroup):
        leaves: List[ast.Condition] = []
        for child in tree.children:
            leaves.extend(_tree_leaves(child))
        return leaves
    return [tree]


def _conditions_to_predicate(conditions: Sequence) -> Optional[Predicate]:
    parts: List[Predicate] = [
        _tree_to_predicate(tree) for tree in conditions
    ]
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return Conjunction(tuple(parts))


class SQLInterpreter:
    """Executes SQL text against a :class:`MainMemoryDatabase`."""

    def __init__(self, db) -> None:
        self.db = db

    # ------------------------------------------------------------------ #
    # entry point
    # ------------------------------------------------------------------ #

    def execute(self, text: str):
        """Parse and run one statement.

        Returns: a :class:`TemporaryList` for SELECT, a plan string for
        EXPLAIN, a list of tuple pointers for INSERT, an affected-row
        count for UPDATE/DELETE, and None for DDL.

        With the plan cache installed, repeat statements skip the lexer
        and parser (keyed on normalized text); SELECTs additionally reuse
        their optimized plan and, via the result cache, their results.

        With observability active, the whole statement runs inside a root
        ``query`` span (or, with tracing off, a plain roll-up counter
        scope) and is recorded into the query metrics and slow-query log.
        """
        obs = obs_runtime.active()
        if obs is None:
            return self._execute_statement(text)
        with obs.measure_query(text) as root:
            result = self._execute_statement(text)
            if root is not None:
                try:
                    root.rows_out = len(result)
                except TypeError:
                    pass
            return result

    def _execute_statement(self, text: str):
        plan_cache = self.db.plan_cache
        key = None
        statement = None
        if plan_cache is not None:
            key = normalize_sql(text)
            statement = plan_cache.statement_for(key)
        if statement is None:
            with obs_runtime.span("parse", "phase"):
                statement = ast.parse_statement(text)
            if plan_cache is not None:
                plan_cache.store_statement(key, statement)
        if contains_parameters(statement):
            raise QueryError(
                "statement contains ? placeholders; use db.prepare(...) "
                "and execute with bound values"
            )
        plan_key = None
        if isinstance(statement, ast.Select) and (
            plan_cache is not None or self.db.result_cache is not None
        ):
            plan_key = ("sql", key if key is not None else normalize_sql(text))
            # Ordering modes plan the same SQL differently; keep their
            # cached plans and results apart.
            mode = getattr(self.db.optimizer, "join_ordering", "written")
            if mode != "written":
                plan_key = plan_key + (mode,)
        return self.run_statement(statement, plan_key)

    def run_statement(self, statement, plan_key=None):
        """Run an already-parsed statement.

        ``plan_key`` (when caching is enabled) identifies the statement
        in the plan and result caches; prepared statements pass a key
        that includes their bound parameter values.
        """
        if isinstance(statement, ast.Select):
            return self._run_select(statement, plan_key)
        handler = getattr(self, f"_run_{type(statement).__name__.lower()}")
        return handler(statement)

    # ------------------------------------------------------------------ #
    # DDL
    # ------------------------------------------------------------------ #

    def _run_createtable(self, stmt: ast.CreateTable) -> None:
        fields = []
        for col in stmt.columns:
            references = None
            if col.references is not None:
                references = ForeignKey(col.references[0], col.references[1])
            fields.append(
                Field(col.name, _FIELD_TYPES[col.type_name], references)
            )
        self.db.create_relation(stmt.name, fields, primary_key=stmt.primary_key)

    def _run_createindex(self, stmt: ast.CreateIndex) -> None:
        field: Union[str, List[str]] = (
            stmt.columns[0] if len(stmt.columns) == 1 else list(stmt.columns)
        )
        self.db.create_index(
            stmt.table,
            stmt.name,
            field,
            kind=stmt.kind if stmt.kind is not None else "ttree",
            unique=stmt.unique,
        )

    def _run_droptable(self, stmt: ast.DropTable) -> None:
        self.db.catalog.drop_relation(stmt.name)

    def _run_dropindex(self, stmt: ast.DropIndex) -> None:
        self.db.relation(stmt.table).drop_index(stmt.name)

    # ------------------------------------------------------------------ #
    # DML
    # ------------------------------------------------------------------ #

    def _run_insert(self, stmt: ast.Insert) -> list:
        refs = []
        for row in stmt.rows:
            refs.append(self.db.insert(stmt.table, list(row)))
        return refs

    def _run_update(self, stmt: ast.Update) -> int:
        predicate = _conditions_to_predicate(stmt.conditions)
        matching = self.db.select(stmt.table, predicate)
        count = 0
        for row in list(matching):
            for column, value in stmt.assignments:
                self.db.update(stmt.table, row[0], column, value)
            count += 1
        return count

    def _run_delete(self, stmt: ast.Delete) -> int:
        predicate = _conditions_to_predicate(stmt.conditions)
        matching = self.db.select(stmt.table, predicate)
        count = 0
        for row in list(matching):
            self.db.delete(stmt.table, row[0])
            count += 1
        return count

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def _split_join_conditions(
        self, stmt: ast.Select
    ) -> Tuple[Optional[Predicate], Optional[Predicate]]:
        """Assign WHERE conditions to the outer or inner relation."""
        outer_rel = self.db.relation(stmt.table)
        inner_rel = self.db.relation(stmt.join_table)
        outer_conditions, inner_conditions = [], []
        for cond in stmt.conditions:
            column = cond.column
            if "." in column:
                qualifier, field = column.rsplit(".", 1)
                if qualifier == stmt.table:
                    outer_conditions.append(
                        ast.Condition(field, cond.op, cond.value, cond.high)
                    )
                    continue
                if qualifier == stmt.join_table:
                    inner_conditions.append(
                        ast.Condition(field, cond.op, cond.value, cond.high)
                    )
                    continue
                raise QueryError(
                    f"WHERE qualifier {qualifier!r} is neither "
                    f"{stmt.table} nor {stmt.join_table}"
                )
            if column in outer_rel.schema.names:
                outer_conditions.append(cond)
            elif column in inner_rel.schema.names:
                inner_conditions.append(cond)
            else:
                raise QueryError(
                    f"WHERE column {column!r} is in neither "
                    f"{stmt.table} nor {stmt.join_table}"
                )
        return (
            _conditions_to_predicate(outer_conditions),
            _conditions_to_predicate(inner_conditions),
        )

    def _build_core_plan(self, stmt: ast.Select):
        """Plan the read core of a SELECT (joins + WHERE, no post-
        processing) without executing it."""
        has_group = any(
            isinstance(cond, ast.ConditionGroup) for cond in stmt.conditions
        )
        if not stmt.joins:
            predicate = _conditions_to_predicate(stmt.conditions)
            return self.db.selection_plan(stmt.table, predicate)
        if has_group or len(stmt.joins) > 1:
            # OR-bearing WHERE clauses over joins go through the generic
            # chain planner (cross-table disjunctions filter post-join).
            return self._join_chain_plan(stmt)
        outer_pred, inner_pred = self._split_join_conditions(stmt)
        clause = stmt.joins[0]
        return self.db.join_plan(
            stmt.table,
            clause.table,
            on=(clause.left, clause.right),
            method=clause.method if clause.method else "auto",
            outer_predicate=outer_pred,
            inner_predicate=inner_pred,
            op=clause.op,
        )

    def _core_result(self, stmt: ast.Select, plan_key) -> TemporaryList:
        """Execute the read core, reusing a cached plan when possible."""
        plan_cache = self.db.plan_cache
        with obs_runtime.span("plan", "phase"):
            if plan_cache is not None and plan_key is not None:
                plan = plan_cache.plan_for(plan_key, self.db.catalog)
                if plan is None:
                    plan = self._build_core_plan(stmt)
                    plan_cache.store_plan(plan_key, plan, self.db.catalog)
            else:
                plan = self._build_core_plan(stmt)
        return self.db.executor.execute(plan)

    def _run_select(self, stmt: ast.Select, plan_key=None):
        result_cache = self.db.result_cache
        if result_cache is not None and plan_key is not None:
            cached = result_cache.lookup_statement(plan_key)
            if cached is not None:
                return cached
        result = self._core_result(stmt, plan_key)
        if stmt.aggregates or stmt.group_by:
            result = self._aggregate(stmt, result)
        else:
            if stmt.columns:
                result = self.db.project(
                    result, list(stmt.columns), deduplicate=stmt.distinct
                )
            elif stmt.distinct:
                result = self.db.project(
                    result, result.descriptor.column_names, deduplicate=True
                )
            if stmt.order_by is not None:
                result = self._order_by(result, stmt.order_by, stmt.order_desc)
            if stmt.limit is not None:
                result = TemporaryList(
                    result.descriptor, result.rows()[: stmt.limit]
                )
        if result_cache is not None and plan_key is not None:
            tables = [stmt.table] + [clause.table for clause in stmt.joins]
            result_cache.store_statement(plan_key, result, tables)
        return result

    def _aggregate(self, stmt: ast.Select, result: TemporaryList):
        """GROUP BY / aggregate evaluation over a temporary list.

        Returns a :class:`~repro.query.aggregate.ValueTable` of computed
        values (the one result kind that is not tuple pointers).
        """
        from repro.query.aggregate import AggregateSpec, group_aggregate

        if not stmt.aggregates:
            raise QueryError("GROUP BY without aggregates; use DISTINCT")
        # Plain select-list columns must be grouping columns.
        for column in stmt.columns:
            if column not in stmt.group_by:
                raise QueryError(
                    f"column {column!r} must appear in GROUP BY or inside "
                    "an aggregate"
                )
        group_extractors = [
            (name, result.value_extractor(name)) for name in stmt.group_by
        ]
        specs = [
            AggregateSpec(call.func, call.column, call.label)
            for call in stmt.aggregates
        ]
        table = group_aggregate(
            result.rows(), group_extractors, specs, result.value_extractor
        )
        if stmt.order_by is not None:
            table = table.sort_by(stmt.order_by, stmt.order_desc)
        if stmt.limit is not None:
            table = table.limit(stmt.limit)
        return table

    # ------------------------------------------------------------------ #
    # multi-way join chains (left-deep plans)
    # ------------------------------------------------------------------ #

    def _owner_table(self, column: str, tables: Sequence[str]):
        """Which of ``tables`` owns ``column``; returns (table, field).

        A qualified name picks its table directly; a bare name must be
        unambiguous across the joined tables.
        """
        if "." in column:
            qualifier, field = column.rsplit(".", 1)
            if qualifier not in tables:
                raise QueryError(
                    f"qualifier {qualifier!r} is not among {list(tables)}"
                )
            return qualifier, field
        owners = [
            t for t in tables
            if column in self.db.relation(t).schema.names
        ]
        if not owners:
            raise QueryError(
                f"column {column!r} is in none of {list(tables)}"
            )
        if len(owners) > 1:
            raise QueryError(
                f"column {column!r} is ambiguous across {owners}; "
                "qualify it"
            )
        return owners[0], column

    def _chain_method(self, prev_tables, clause: "ast.JoinClause"):
        """Join method + right column for one chain step."""
        from repro.query.plan import REF_COLUMN

        owner, field = self._owner_table(clause.left, prev_tables)
        owner_rel = self.db.relation(owner)
        logical = owner_rel.schema.field(field)
        # Normalise a "Table.field" right column to its bare field when
        # the qualifier names the joined table.
        right = clause.right
        if "." in right:
            qualifier, bare = right.rsplit(".", 1)
            if qualifier == clause.table:
                right = bare
        clause = ast.JoinClause(
            clause.table, clause.left, right, clause.op, clause.method
        )
        is_fk = (
            logical.references is not None
            and logical.references.relation == clause.table
            and logical.references.field == clause.right
        )
        if clause.method is not None:
            method = clause.method
            if method == "precomputed" or is_fk:
                # The stored value is a tuple pointer; every method must
                # compare pointers against the target's own pointer.
                return method, REF_COLUMN
            return method, clause.right
        if clause.op != "=":
            target = self.db.relation(clause.table)
            if (
                clause.op != "!="
                and target.index_on(clause.right, ordered=True) is not None
            ):
                return "tree", clause.right
            return "nested_loops", clause.right
        if is_fk:
            return "precomputed", REF_COLUMN
        return "hash", clause.right

    def _bare_tree(self, tree, tables):
        """Strip table qualifiers from every leaf of a condition tree."""
        if isinstance(tree, ast.ConditionGroup):
            return ast.ConditionGroup(
                tree.op,
                tuple(self._bare_tree(child, tables) for child in tree.children),
            )
        __, field = self._owner_table(tree.column, tables)
        return ast.Condition(field, tree.op, tree.value, tree.high)

    def _residual_predicate(self, tree, tables) -> Predicate:
        """Condition tree → post-join predicate: per-leaf FK rewriting
        plus owner qualification (handles cross-table disjunctions)."""
        from repro.query.predicates import Disjunction

        if isinstance(tree, ast.ConditionGroup):
            parts = tuple(
                self._residual_predicate(child, tables)
                for child in tree.children
            )
            if tree.op == "or":
                return Disjunction(parts)
            return Conjunction(parts)
        owner, field = self._owner_table(tree.column, tables)
        bare = ast.Condition(field, tree.op, tree.value, tree.high)
        rewritten = self.db._rewrite_fk_predicate(
            owner, _tree_to_predicate(bare)
        )
        return self._qualify_predicate(rewritten, owner)

    @staticmethod
    def _qualify_predicate(predicate: Predicate, owner: str) -> Predicate:
        """Prefix a rewritten predicate's columns with ``owner.``."""
        from repro.engine.database import _FKValueComparison

        if isinstance(predicate, Comparison):
            return Comparison(
                f"{owner}.{predicate.field}",
                predicate.op,
                predicate.value,
                predicate.high,
            )
        if isinstance(predicate, Conjunction):
            return Conjunction(
                tuple(
                    SQLInterpreter._qualify_predicate(part, owner)
                    for part in predicate.parts
                )
            )
        from repro.query.predicates import Disjunction

        if isinstance(predicate, Disjunction):
            return Disjunction(
                tuple(
                    SQLInterpreter._qualify_predicate(part, owner)
                    for part in predicate.parts
                )
            )
        if isinstance(predicate, _FKValueComparison):
            return _FKValueComparison(
                SQLInterpreter._qualify_predicate(
                    predicate.comparison, owner
                ),
                predicate.target,
                predicate.key_field,
            )
        return predicate  # _NeverMatches and friends need no renaming

    def _run_join_chain(self, stmt: ast.Select) -> TemporaryList:
        return self.db.executor.execute(self._join_chain_plan(stmt))

    def _chain_edges(self, stmt: ast.Select, tables: Sequence[str]):
        """The join graph of a chain SELECT as optimizer edges.

        Returns ``None`` whenever any clause falls outside what the
        cost-based orderer can re-order safely: explicit ``USING``
        overrides, non-equijoins, duplicate table names (self-joins),
        foreign-key fields compared by value, or reverse foreign-key
        edges (the pointer lives on the new table's side, so the join is
        only expressible with the pointer owner already in the prefix).
        """
        from repro.query.optimizer import JoinChainEdge

        if len(set(tables)) != len(tables):
            return None
        edges = []
        prev: List[str] = [stmt.table]
        for position, clause in enumerate(stmt.joins):
            if clause.op != "=" or clause.method is not None:
                return None
            try:
                owner, field = self._owner_table(clause.left, prev)
            except (QueryError, SchemaError):
                return None
            right = clause.right
            if "." in right:
                qualifier, bare = right.rsplit(".", 1)
                if qualifier != clause.table:
                    return None
                right = bare
            target = self.db.relation(clause.table)
            if right not in target.schema.names:
                return None
            logical = self.db.relation(owner).schema.field(field)
            if logical.references is not None:
                if (
                    logical.references.relation == clause.table
                    and logical.references.field == right
                ):
                    kind = "fk"
                else:
                    # A REF field compared against an unrelated column:
                    # the stored value is a pointer, keep the written
                    # plan's exact semantics.
                    return None
            elif target.schema.field(right).references is not None:
                # Reverse-FK: the pointer sits on the new table's side.
                return None
            else:
                kind = "value"
            edges.append(
                JoinChainEdge(owner, field, clause.table, right, kind, position)
            )
            prev.append(clause.table)
        return edges

    def _cost_ordered_plan(self, stmt: ast.Select):
        """Cost-ordered plan for a multi-join chain, or ``None``.

        ``None`` means the statement is outside the orderer's safe
        subset and the caller must fold the written order instead.
        Safety here is observational: the reordered plan must produce
        the same rows under the same output labels as the written one.
        """
        from repro.query.executor import plan_descriptor
        from repro.query.optimizer import JoinChainQuery
        from repro.query.plan import FilterNode, ProjectNode
        from repro.storage.temporary import ResultDescriptor

        tables = [stmt.table] + [clause.table for clause in stmt.joins]
        if len(tables) < 3:
            return None
        edges = self._chain_edges(stmt, tables)
        if edges is None:
            return None
        # A field name owned by 3+ joined tables keeps its bare label on
        # whichever table enters the fold after the first two collide —
        # an order-dependent binding.  Qualified references and 2-owner
        # collisions are invariant (pairwise qualification), so only a
        # *bare* reference to such a name forces the written order.
        owners_per_name: dict = {}
        for t in tables:
            for name in self.db.relation(t).schema.names:
                owners_per_name[name] = owners_per_name.get(name, 0) + 1
        shared = {n for n, c in owners_per_name.items() if c >= 3}
        if shared:
            referenced = list(stmt.columns) + list(stmt.group_by or ())
            referenced += [call.column for call in stmt.aggregates]
            if stmt.order_by is not None:
                referenced.append(stmt.order_by)
            if any(
                name and "." not in name and name in shared
                for name in referenced
            ):
                return None
        per_table = {t: [] for t in tables}
        residual: List[Predicate] = []
        try:
            for cond in stmt.conditions:
                leaves = _tree_leaves(cond)
                owners = {
                    self._owner_table(leaf.column, tables)[0]
                    for leaf in leaves
                }
                if len(owners) == 1:
                    (owner,) = owners
                    per_table[owner].append(self._bare_tree(cond, tables))
                else:
                    residual.append(self._residual_predicate(cond, tables))
        except (QueryError, SchemaError):
            return None  # the written path raises the user-facing error
        predicates = {
            t: self.db._rewrite_fk_predicate(
                t, _conditions_to_predicate(per_table[t])
            )
            for t in tables
        }
        query = JoinChainQuery(tuple(tables), predicates, tuple(edges))
        plan = self.db.optimizer.plan_join_chain(query)
        if plan is None:
            return None
        if residual:
            predicate = (
                residual[0]
                if len(residual) == 1
                else Conjunction(tuple(residual))
            )
            plan = FilterNode(plan, predicate)
        if not stmt.columns and not stmt.aggregates:
            # SELECT *: the reordered chain must show the written chain's
            # column labels in the written order, with every label bound
            # to the same (relation, field).  Simulate both descriptor
            # folds; bail out on any binding drift, re-project when only
            # the column order differs.
            from repro.query.executor import join_descriptor

            written = ResultDescriptor.whole_relation(
                self.db.relation(tables[0])
            )
            for t in tables[1:]:
                written = join_descriptor(
                    written,
                    ResultDescriptor.whole_relation(self.db.relation(t)),
                )
            chosen = plan_descriptor(plan, self.db.catalog)

            def bindings(desc):
                return {
                    col.name: (desc.sources[col.source].name, col.field)
                    for col in desc.columns
                }

            if bindings(written) != bindings(chosen):
                return None
            if written.column_names != chosen.column_names:
                plan = ProjectNode(plan, written.column_names)
        return plan

    def _join_chain_plan(self, stmt: ast.Select):
        from repro.query.plan import FilterNode, JoinNode, ScanNode

        if getattr(self.db.optimizer, "join_ordering", "written") == "cost":
            plan = self._cost_ordered_plan(stmt)
            if plan is not None:
                return plan
        tables = [stmt.table] + [clause.table for clause in stmt.joins]
        base_conditions: List = []
        residual: List[Predicate] = []
        for cond in stmt.conditions:
            leaves = _tree_leaves(cond)
            owners = {
                self._owner_table(leaf.column, tables)[0] for leaf in leaves
            }
            if owners == {stmt.table}:
                base_conditions.append(self._bare_tree(cond, tables))
            else:
                # Re-qualified so the post-join filter resolves columns
                # against the right sources even when names collide;
                # cross-table disjunctions are fine here.
                residual.append(self._residual_predicate(cond, tables))
        base_pred = self.db._rewrite_fk_predicate(
            stmt.table, _conditions_to_predicate(base_conditions)
        )
        plan = self.db.optimizer.plan_selection(stmt.table, base_pred)
        prev_tables = [stmt.table]
        for clause in stmt.joins:
            method, right_col = self._chain_method(prev_tables, clause)
            plan = JoinNode(
                plan, ScanNode(clause.table), clause.left, right_col,
                method, clause.op,
            )
            prev_tables.append(clause.table)
        if residual:
            predicate = (
                residual[0]
                if len(residual) == 1
                else Conjunction(tuple(residual))
            )
            plan = FilterNode(plan, predicate)
        return plan

    def _order_by(
        self, result: TemporaryList, column: str, descending: bool
    ) -> TemporaryList:
        # Delegated to the executor so the batch engine can substitute
        # its dereference-cached key extractor (same op counts, one
        # physical deref per row).
        rows = self.db.executor.sort_rows(result, column)
        if descending:
            rows.reverse()
        return TemporaryList(result.descriptor, rows)

    def _run_explain(self, stmt: ast.Explain) -> str:
        from repro.obs.explain import render_plan

        if stmt.analyze:
            return self._run_explain_analyze(stmt.select)
        plan = self._build_core_plan(stmt.select)
        return render_plan(plan, self.db.catalog, self.db.optimizer)

    def _run_explain_analyze(self, select: ast.Select) -> str:
        """Execute the SELECT under a span tracer and render the span
        tree with estimated vs. actual rows and per-operator counters.

        A temporary tracing-only :class:`~repro.obs.Observability` is
        activated for the duration (and the previous instance restored),
        so EXPLAIN ANALYZE works whether or not the user has configured
        observability — without polluting any configured metrics.
        """
        from repro.obs import Observability, ObservabilityConfig
        from repro.obs.explain import render_analyze

        local = Observability(
            ObservabilityConfig(metrics=False, slow_query_ops=None)
        )
        previous = obs_runtime.activate(local)
        try:
            with local.tracer.span("query", kind="query") as root:
                result = self.run_statement(select, None)
                try:
                    root.rows_out = len(result)
                except TypeError:
                    pass
        finally:
            if previous is None:
                obs_runtime.deactivate()
            else:
                obs_runtime.activate(previous)
        return render_analyze(root, self.db.catalog, self.db.optimizer)
