"""repro — a reproduction of Lehman & Carey's main-memory DBMS.

"Query Processing in Main Memory Database Management Systems",
SIGMOD 1986.

The package implements the paper's MM-DBMS architecture end to end:

* :mod:`repro.storage` — partitions, tuple pointers, relations accessed
  only through indexes, temporary lists with result descriptors;
* :mod:`repro.indexes` — all eight index structures from the study,
  including the T-Tree;
* :mod:`repro.query` — selection access paths, the five join algorithms
  (plus nested loops and precomputed pointer joins), duplicate
  elimination, plans, executor, and the Section 4 optimizer;
* :mod:`repro.txn` — partition-granularity 2PL with deadlock detection;
* :mod:`repro.recovery` — stable log buffer, change-accumulating log
  device, CRC32-framed simulated disk copy, working-set-first restart
  with transient-read retry and partial (quarantining) mode;
* :mod:`repro.fault` — deterministic seeded fault injection
  (:meth:`~repro.engine.database.MainMemoryDatabase.configure_faults`);
* :mod:`repro.workloads` — the Section 3.3.1 relation generator;
* :mod:`repro.engine` — the :class:`~repro.engine.database.MainMemoryDatabase`
  facade.

Quickstart::

    from repro import MainMemoryDatabase, Field, FieldType, ForeignKey, gt

    db = MainMemoryDatabase()
    db.create_relation(
        "Department",
        [Field("Name", FieldType.STR), Field("Id", FieldType.INT)],
        primary_key="Id",
    )
    db.create_relation(
        "Employee",
        [
            Field("Name", FieldType.STR),
            Field("Id", FieldType.INT),
            Field("Age", FieldType.INT),
            Field("Dept_Id", FieldType.INT,
                  references=ForeignKey("Department", "Id")),
        ],
        primary_key="Id",
    )
    db.insert("Department", ["Toy", 459])
    db.insert("Employee", ["Dave", 23, 66, 459])
    over_65 = db.join("Employee", "Department", on=("Dept_Id", "Id"),
                      outer_predicate=gt("Age", 65))
"""

from repro.engine.database import MainMemoryDatabase
from repro.errors import (
    CorruptImageError,
    CorruptLogRecordError,
    DeadlockError,
    DuplicateKeyError,
    InjectedFaultError,
    KeyNotFoundError,
    PoisonedMorselError,
    QueryError,
    RecoveryError,
    ReproError,
    SchemaError,
    StorageError,
    TornWriteError,
    TransactionError,
)
from repro.fault import FaultConfig, FaultInjector, FaultPolicy
from repro.indexes import (
    ArrayIndex,
    AVLTreeIndex,
    BTreeIndex,
    ChainedBucketHashIndex,
    ExtendibleHashIndex,
    LinearHashIndex,
    ModifiedLinearHashIndex,
    TTreeIndex,
)
from repro.query.predicates import between, eq, ge, gt, le, lt, ne
from repro.storage.schema import Field, FieldType, ForeignKey, Schema
from repro.storage.tuples import TupleRef

__version__ = "1.0.0"

__all__ = [
    "AVLTreeIndex",
    "ArrayIndex",
    "BTreeIndex",
    "ChainedBucketHashIndex",
    "CorruptImageError",
    "CorruptLogRecordError",
    "DeadlockError",
    "DuplicateKeyError",
    "ExtendibleHashIndex",
    "FaultConfig",
    "FaultInjector",
    "FaultPolicy",
    "Field",
    "FieldType",
    "ForeignKey",
    "InjectedFaultError",
    "KeyNotFoundError",
    "LinearHashIndex",
    "MainMemoryDatabase",
    "ModifiedLinearHashIndex",
    "PoisonedMorselError",
    "QueryError",
    "RecoveryError",
    "ReproError",
    "Schema",
    "SchemaError",
    "StorageError",
    "TTreeIndex",
    "TornWriteError",
    "TransactionError",
    "TupleRef",
    "between",
    "eq",
    "ge",
    "gt",
    "le",
    "lt",
    "ne",
]
