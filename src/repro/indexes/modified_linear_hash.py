"""Modified Linear Hashing [LeC85] — the MM-DBMS's unordered index.

"Modified Linear Hashing uses the basic principles of Linear Hashing, but
uses very small nodes in the directory, single-item overflow buckets, and
average overflow chain length as the criteria to control directory growth"
(Section 3.2).  Three consequences the benchmarks reproduce:

* searches traverse a linked list of single-item nodes, so "each data
  reference requires traversing a pointer", noticeable when chains grow
  long (the rising dashed line of Graph 1 — "node size" on the x-axis is
  the *average chain length* here);
* growth is driven by chain length rather than storage utilization, so a
  static element count causes no reorganization thrash (unlike plain
  Linear Hashing in Graph 2);
* each single-item node carries "4 bytes of pointer overhead for each data
  item" (the Table 1 storage discussion).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional

from repro.indexes.base import POINTER_BYTES, Index
from repro.instrument import (
    count_alloc,
    count_compare,
    count_hash,
    count_move,
    count_traverse,
)

#: Default growth criterion: split when the average chain exceeds this.
DEFAULT_CHAIN_TARGET = 2.0

_INITIAL_BUCKETS = 4


class _Cell:
    """An overflow node: up to ``node_items`` item pointers + a next
    pointer.

    The paper's version uses single-item cells ("4 bytes of pointer
    overhead for each data item"); its Table 1 discussion notes "the
    storage utilization for Modified Linear Hashing can probably be
    improved by using multiple-item nodes, thereby reducing the pointer
    to data item ratio" — the ``node_items > 1`` configuration implements
    that suggestion.
    """

    __slots__ = ("items", "next")

    def __init__(self, item: Any, next_cell: "Optional[_Cell]") -> None:
        self.items = [item]
        self.next = next_cell


class ModifiedLinearHashIndex(Index):
    """Linear hashing over chains of single-item cells.

    Parameters
    ----------
    chain_target:
        The average-chain-length threshold controlling directory growth —
        the quantity plotted as "node size" for this structure in the
        paper's graphs.
    node_items:
        Item slots per chain node.  1 is the paper's tested version;
        larger values implement the Table 1 suggestion of multiple-item
        nodes to cut the pointer-per-item overhead (the growth criterion
        stays average chain length in *items*).
    """

    kind = "modified_linear_hash"

    def __init__(
        self,
        key_of: Callable[[Any], Any] = None,
        unique: bool = True,
        chain_target: float = DEFAULT_CHAIN_TARGET,
        node_items: int = 1,
    ) -> None:
        super().__init__(key_of, unique)
        if chain_target <= 0:
            raise ValueError("chain_target must be positive")
        if node_items < 1:
            raise ValueError("node_items must be at least 1")
        self.chain_target = chain_target
        self.node_items = node_items
        self._heads: List[Optional[_Cell]] = [None] * _INITIAL_BUCKETS
        count_alloc(_INITIAL_BUCKETS)
        self._level = 0
        self._split_ptr = 0

    # ------------------------------------------------------------------ #
    # addressing (same linear-hash address calculation)
    # ------------------------------------------------------------------ #

    def _hash(self, key: Any) -> int:
        count_hash()
        h = hash(key)
        h ^= (h >> 16) ^ (h >> 31)
        return h * 0x9E3779B1 & 0xFFFFFFFF

    def _address(self, h: int) -> int:
        base = _INITIAL_BUCKETS << self._level
        addr = h % base
        if addr < self._split_ptr:
            addr = h % (base << 1)
        return addr

    def average_chain_length(self) -> float:
        """Elements per directory slot — the growth criterion."""
        return self._count / len(self._heads) if self._heads else 0.0

    # ------------------------------------------------------------------ #
    # directory growth
    # ------------------------------------------------------------------ #

    def _maybe_split(self) -> None:
        while self.average_chain_length() > self.chain_target:
            self._split_one()

    def _split_one(self) -> None:
        base = _INITIAL_BUCKETS << self._level
        new_mod = base << 1
        head = self._heads[self._split_ptr]
        self._heads.append(None)
        count_alloc()
        keep: Optional[_Cell] = None
        moved: Optional[_Cell] = None
        node = head
        while node is not None:
            count_traverse()
            nxt = node.next
            for item in node.items:
                if self._hash(self.key_of(item)) % new_mod == self._split_ptr:
                    keep = self._prepend(keep, item)
                else:
                    moved = self._prepend(moved, item)
                count_move(1)
            node = nxt
        self._heads[self._split_ptr] = keep
        self._heads[-1] = moved
        self._split_ptr += 1
        if self._split_ptr == base:
            self._level += 1
            self._split_ptr = 0

    def _prepend(self, head: Optional[_Cell], item: Any) -> _Cell:
        """Add an item at the front of a chain, filling partial cells."""
        if head is not None and len(head.items) < self.node_items:
            head.items.append(item)
            return head
        count_alloc()
        return _Cell(item, head)

    # ------------------------------------------------------------------ #
    # Index API
    # ------------------------------------------------------------------ #

    def insert(self, item: Any) -> None:
        key = self.key_of(item)
        slot = self._address(self._hash(key))
        if self.unique:
            node = self._heads[slot]
            while node is not None:
                count_traverse()
                for existing in node.items:
                    count_compare()
                    if self.key_of(existing) == key:
                        from repro.errors import DuplicateKeyError

                        raise DuplicateKeyError(
                            f"modified_linear_hash: duplicate key {key!r}"
                        )
                node = node.next
        count_move(1)
        self._heads[slot] = self._prepend(self._heads[slot], item)
        self._count += 1
        self._maybe_split()

    def delete(self, item: Any) -> None:
        key = self.key_of(item)
        slot = self._address(self._hash(key))
        prev: Optional[_Cell] = None
        node = self._heads[slot]
        while node is not None:
            count_traverse()
            for i, existing in enumerate(node.items):
                count_compare()
                if self.key_of(existing) == key and existing == item:
                    del node.items[i]
                    count_move(1)
                    if not node.items:
                        if prev is None:
                            self._heads[slot] = node.next
                        else:
                            prev.next = node.next
                    self._count -= 1
                    return
            prev, node = node, node.next
        raise self._missing(key)

    def search(self, key: Any) -> Optional[Any]:
        node = self._heads[self._address(self._hash(key))]
        while node is not None:
            count_traverse()
            for item in node.items:
                count_compare()
                if self.key_of(item) == key:
                    return item
            node = node.next
        return None

    def search_all(self, key: Any) -> List[Any]:
        result = []
        node = self._heads[self._address(self._hash(key))]
        while node is not None:
            count_traverse()
            for item in node.items:
                count_compare()
                if self.key_of(item) == key:
                    result.append(item)
            node = node.next
        return result

    def scan(self) -> Iterator[Any]:
        for head in self._heads:
            node = head
            while node is not None:
                count_traverse()
                yield from node.items
                node = node.next

    def storage_bytes(self) -> int:
        # Directory of head pointers + per-cell frames: node_items item
        # slots plus one next pointer.  With single-item cells this is
        # the paper's "4 bytes of pointer overhead for each data item";
        # multi-item cells amortise the next pointer across their slots.
        cell_count = 0
        for head in self._heads:
            node = head
            while node is not None:
                cell_count += 1
                node = node.next
        cell_bytes = cell_count * (
            self.node_items * POINTER_BYTES + POINTER_BYTES
        )
        return len(self._heads) * POINTER_BYTES + cell_bytes

    @property
    def directory_size(self) -> int:
        """Number of directory slots (for growth-policy tests)."""
        return len(self._heads)
