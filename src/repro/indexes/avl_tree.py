"""The AVL tree index [AHU74].

The AVL tree is the classic internal-memory binary search tree: "It uses a
binary tree search, which is fast since the binary search is intrinsic to
the tree structure (i.e., no arithmetic calculations are needed).  Updates
always affect a leaf node ... the tree is kept balanced by rotation
operations.  The AVL Tree has one major disadvantage — its poor storage
utilization" (Section 3.2.1).  Each node carries exactly one item plus two
child pointers, which is where the paper's storage factor of 3 comes from.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional

from repro.errors import DuplicateKeyError
from repro.indexes.base import (
    CONTROL_BYTES,
    POINTER_BYTES,
    OrderedIndex,
    compare_keys,
)
from repro.instrument import count_alloc, count_move, count_traverse


class _AVLNode:
    """One tree node: a single item, two children, and a height field."""

    __slots__ = ("item", "left", "right", "height")

    def __init__(self, item: Any) -> None:
        self.item = item
        self.left: Optional[_AVLNode] = None
        self.right: Optional[_AVLNode] = None
        self.height = 1


def _height(node: Optional[_AVLNode]) -> int:
    return node.height if node is not None else 0


def _update_height(node: _AVLNode) -> None:
    node.height = 1 + max(_height(node.left), _height(node.right))


def _balance_factor(node: _AVLNode) -> int:
    return _height(node.left) - _height(node.right)


class AVLTreeIndex(OrderedIndex):
    """An AVL tree storing one item per node.

    Implemented recursively; the recursion depth is bounded by the AVL
    height (≈ 1.44 log2 n), comfortably below Python's limit for any
    memory-resident relation.
    """

    kind = "avl"

    def __init__(
        self,
        key_of: Callable[[Any], Any] = None,
        unique: bool = True,
    ) -> None:
        super().__init__(key_of, unique)
        self._root: Optional[_AVLNode] = None
        #: Rotations performed over the index's lifetime (every insert or
        #: delete may rotate — the T-Tree rotates far less often).
        self.rotation_count = 0

    # ------------------------------------------------------------------ #
    # rotations
    # ------------------------------------------------------------------ #

    def _rotate_right(self, node: _AVLNode) -> _AVLNode:
        self.rotation_count += 1
        pivot = node.left
        count_move(2)  # two pointer reassignments define the rotation
        node.left = pivot.right
        pivot.right = node
        _update_height(node)
        _update_height(pivot)
        return pivot

    def _rotate_left(self, node: _AVLNode) -> _AVLNode:
        self.rotation_count += 1
        pivot = node.right
        count_move(2)
        node.right = pivot.left
        pivot.left = node
        _update_height(node)
        _update_height(pivot)
        return pivot

    def _rebalance(self, node: _AVLNode) -> _AVLNode:
        # Height recomputation and balance checking touch both children on
        # every level of the unwind path — the per-update bookkeeping that
        # makes AVL updates "fair" while T-Tree updates are "good"
        # (Table 1): the T-Tree rebalances far less often.
        count_traverse(2)
        _update_height(node)
        balance = _balance_factor(node)
        if balance > 1:
            if _balance_factor(node.left) < 0:  # LR case
                node.left = self._rotate_left(node.left)
            return self._rotate_right(node)
        if balance < -1:
            if _balance_factor(node.right) > 0:  # RL case
                node.right = self._rotate_right(node.right)
            return self._rotate_left(node)
        return node

    # ------------------------------------------------------------------ #
    # Index API
    # ------------------------------------------------------------------ #

    def insert(self, item: Any) -> None:
        key = self.key_of(item)
        self._root = self._insert(self._root, item, key)
        self._count += 1

    def _insert(
        self, node: Optional[_AVLNode], item: Any, key: Any
    ) -> _AVLNode:
        if node is None:
            count_alloc()
            return _AVLNode(item)
        count_traverse()
        cmp = compare_keys(key, self.key_of(node.item))
        if cmp == 0 and self.unique:
            raise DuplicateKeyError(f"avl: duplicate key {key!r}")
        if cmp < 0:
            node.left = self._insert(node.left, item, key)
        else:
            # Duplicates (non-unique mode) go right so that equal keys
            # stay logically contiguous in an in-order scan.
            node.right = self._insert(node.right, item, key)
        return self._rebalance(node)

    def delete(self, item: Any) -> None:
        key = self.key_of(item)
        self._root, removed = self._delete(self._root, item, key)
        if not removed:
            raise self._missing(key)
        self._count -= 1

    def _delete(
        self, node: Optional[_AVLNode], item: Any, key: Any
    ) -> tuple:
        if node is None:
            return None, False
        count_traverse()
        cmp = compare_keys(key, self.key_of(node.item))
        if cmp < 0:
            node.left, removed = self._delete(node.left, item, key)
        elif cmp > 0:
            node.right, removed = self._delete(node.right, item, key)
        elif node.item != item and not self.unique:
            # Same key, different pointer: the match may be on either
            # side because duplicates were inserted to the right but
            # rotations can move them.
            node.right, removed = self._delete(node.right, item, key)
            if not removed:
                node.left, removed = self._delete(node.left, item, key)
        else:
            removed = True
            if node.left is None:
                return node.right, True
            if node.right is None:
                return node.left, True
            # Two children: replace with the in-order successor.
            successor = node.right
            while successor.left is not None:
                count_traverse()
                successor = successor.left
            count_move(1)
            node.item = successor.item
            node.right, __ = self._delete(
                node.right, successor.item, self.key_of(successor.item)
            )
        return self._rebalance(node), removed

    def search(self, key: Any) -> Optional[Any]:
        node = self._root
        while node is not None:
            cmp = compare_keys(key, self.key_of(node.item))
            if cmp == 0:
                return node.item
            count_traverse()
            node = node.left if cmp < 0 else node.right
        return None

    def search_all(self, key: Any) -> List[Any]:
        return [
            item
            for item in self.range_scan(key, key)
        ]

    def scan(self) -> Iterator[Any]:
        # Iterative in-order traversal; each edge followed is a traversal.
        stack: List[_AVLNode] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                count_traverse()
                stack.append(node)
                node = node.left
            node = stack.pop()
            yield node.item
            node = node.right

    def scan_from(self, key: Any) -> Iterator[Any]:
        stack: List[_AVLNode] = []
        node = self._root
        # Descend, keeping ancestors whose item may still qualify.
        while node is not None:
            count_traverse()
            if compare_keys(self.key_of(node.item), key) < 0:
                node = node.right
            else:
                stack.append(node)
                node = node.left
        while stack:
            node = stack.pop()
            yield node.item
            node = node.right
            while node is not None:
                count_traverse()
                stack.append(node)
                node = node.left

    def min_item(self) -> Optional[Any]:
        node = self._root
        if node is None:
            return None
        while node.left is not None:
            count_traverse()
            node = node.left
        return node.item

    def max_item(self) -> Optional[Any]:
        node = self._root
        if node is None:
            return None
        while node.right is not None:
            count_traverse()
            node = node.right
        return node.item

    def storage_bytes(self) -> int:
        # Two child pointers and one item pointer per node: the paper's
        # storage factor of 3 (control information was excluded there too).
        return self._count * (POINTER_BYTES * 3)

    def height(self) -> int:
        """Tree height (0 when empty); used by balance-invariant tests."""
        return _height(self._root)

    def check_invariants(self) -> None:
        """Assert AVL balance and ordering; raises AssertionError."""

        def recurse(node: Optional[_AVLNode]) -> int:
            if node is None:
                return 0
            left = recurse(node.left)
            right = recurse(node.right)
            assert abs(left - right) <= 1, "AVL balance violated"
            assert node.height == 1 + max(left, right), "stale height"
            if node.left is not None:
                assert (
                    self.key_of(node.left.item) <= self.key_of(node.item)
                ), "left child out of order"
            if node.right is not None:
                assert (
                    self.key_of(node.item) <= self.key_of(node.right.item)
                ), "right child out of order"
            return 1 + max(left, right)

        recurse(self._root)
