"""The T-Tree [LeC85] — the paper's new index structure.

"The T Tree is a binary tree with many elements per node ... it retains the
intrinsic binary search nature of the AVL Tree, and, because a T node
contains many elements, the T Tree has the good update and storage
characteristics of the B Tree" (Section 3.2.1).

Terminology (Figure 4): a node with two subtrees is an *internal node*; one
NIL child makes a *half-leaf*; two NIL children make a *leaf*.  A node
*bounds* value X when min(node) <= X <= max(node).  For each internal node
A, the predecessor of min(A) is its *greatest lower bound* (GLB) and the
successor of max(A) its *least upper bound* (LUB); both live in leaves or
half-leaves.

Occupancy rules: internal nodes keep between ``min_count`` and
``max_count`` items, where the two "usually differ by just a small amount,
on the order of one or two items"; leaf and half-leaf occupancy ranges from
zero to ``max_count``.

Algorithms implemented exactly as the paper describes:

* **Search** — binary-tree descent comparing against node min/max, then a
  binary search inside the bounding node.
* **Insert** — into the bounding node if one exists; on overflow the
  *minimum* element is transferred down to become the new GLB (footnote 5:
  moving the minimum requires less data movement than the maximum).  With
  no bounding node, the value goes into the node where the search ended,
  or a fresh leaf if that node is full, followed by AVL-style rebalancing.
* **Delete** — remove from the bounding node; an underflowing internal
  node borrows its GLB from a leaf; an emptied leaf is unlinked and the
  tree rebalanced; a leaf is otherwise allowed to underflow.
* **Rebalancing** — AVL rotations, performed "much less often than in an
  AVL tree due to the possibility of intra-node data movement"; the LR/RL
  special case where a one-item node rotates up into an internal position
  is repaired by sliding items up from the new left child.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.errors import DuplicateKeyError
from repro.indexes.base import (
    CONTROL_BYTES,
    POINTER_BYTES,
    OrderedIndex,
    compare_keys,
)
from repro.instrument import count_alloc, count_compare, count_move, count_traverse

#: Default maximum node occupancy; the benchmark sweeps 2..100 like Graph 1.
DEFAULT_NODE_SIZE = 32


class _TNode:
    """A T-node: a sorted item array plus parent/left/right pointers."""

    __slots__ = ("items", "left", "right", "parent", "height")

    def __init__(self, items: List[Any] = None) -> None:
        self.items: List[Any] = items if items is not None else []
        self.left: Optional[_TNode] = None
        self.right: Optional[_TNode] = None
        self.parent: Optional[_TNode] = None
        self.height = 1

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    @property
    def is_internal(self) -> bool:
        return self.left is not None and self.right is not None


def _height(node: Optional[_TNode]) -> int:
    return node.height if node is not None else 0


def _balance(node: _TNode) -> int:
    return _height(node.left) - _height(node.right)


class TTreeIndex(OrderedIndex):
    """The T-Tree: the MM-DBMS's general-purpose ordered index.

    Parameters
    ----------
    node_size:
        Maximum items per node (the x-axis of Graphs 1 and 2).
    min_slack:
        ``min_count = node_size - min_slack`` for internal nodes; the paper
        recommends a slack of one or two items, "enough to significantly
        reduce the need for tree rotations".
    spill:
        Which boundary element an overflowing node transfers down, and
        which bound an underflowing node borrows back.  ``"min"`` is the
        paper's choice (footnote 5: "moving the minimum element requires
        less total data movement than moving the maximum"); ``"max"`` is
        the symmetric variant, provided for the ablation benchmark that
        verifies the footnote.
    """

    kind = "ttree"

    def __init__(
        self,
        key_of: Callable[[Any], Any] = None,
        unique: bool = True,
        node_size: int = DEFAULT_NODE_SIZE,
        min_slack: int = 2,
        spill: str = "min",
    ) -> None:
        super().__init__(key_of, unique)
        if node_size < 2:
            raise ValueError("T-Tree node size must be at least 2")
        if min_slack < 0:
            raise ValueError("min_slack must be non-negative")
        if spill not in ("min", "max"):
            raise ValueError("spill must be 'min' or 'max'")
        self.max_count = node_size
        self.min_count = max(1, node_size - min_slack)
        self.spill = spill
        self._root: Optional[_TNode] = None
        self._node_count = 0
        #: Rotations performed over the index's lifetime; the min_slack
        #: ablation measures how intra-node slack "significantly reduces
        #: the need for tree rotations".
        self.rotation_count = 0

    # ------------------------------------------------------------------ #
    # small structural helpers
    # ------------------------------------------------------------------ #

    def _new_node(self, items: List[Any]) -> _TNode:
        count_alloc()
        self._node_count += 1
        return _TNode(items)

    def _key(self, item: Any) -> Any:
        return self.key_of(item)

    def _replace_child(
        self, parent: Optional[_TNode], old: _TNode, new: Optional[_TNode]
    ) -> None:
        if parent is None:
            self._root = new
        elif parent.left is old:
            parent.left = new
        else:
            parent.right = new
        if new is not None:
            new.parent = parent

    def _update_height(self, node: _TNode) -> None:
        node.height = 1 + max(_height(node.left), _height(node.right))

    # ------------------------------------------------------------------ #
    # in-node binary search
    # ------------------------------------------------------------------ #

    def _lower_bound(self, node: _TNode, key: Any) -> int:
        # One traversal-equivalent per probe models the binary search's
        # arithmetic — "some time is lost in binary searching the final
        # node", which is why T-Tree search costs slightly more than AVL.
        lo, hi = 0, len(node.items)
        while lo < hi:
            mid = (lo + hi) // 2
            count_compare()
            count_traverse()
            if self._key(node.items[mid]) < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _upper_bound(self, node: _TNode, key: Any) -> int:
        lo, hi = 0, len(node.items)
        while lo < hi:
            mid = (lo + hi) // 2
            count_compare()
            count_traverse()
            if key < self._key(node.items[mid]):
                hi = mid
            else:
                lo = mid + 1
        return lo

    # ------------------------------------------------------------------ #
    # descent
    # ------------------------------------------------------------------ #

    def _find_bounding(self, key: Any) -> Tuple[Optional[_TNode], Optional[_TNode], int]:
        """Binary-tree search for the node bounding ``key``.

        Returns ``(bounding_node, last_node, direction)``: when no node
        bounds the key, ``last_node`` is "the leaf node where the search
        ended" and ``direction`` is -1 (key below its minimum) or +1 (key
        above its maximum).
        """
        node = self._root
        last, direction = None, 0
        while node is not None:
            count_compare()
            if key < self._key(node.items[0]):
                last, direction = node, -1
                count_traverse()
                node = node.left
                continue
            count_compare()
            if key > self._key(node.items[-1]):
                last, direction = node, 1
                count_traverse()
                node = node.right
                continue
            return node, node, 0
        return None, last, direction

    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #

    def search(self, key: Any) -> Optional[Any]:
        bounding, __, __ = self._find_bounding(key)
        if bounding is None:
            return None
        pos = self._lower_bound(bounding, key)
        if pos < len(bounding.items):
            count_compare()
            if self._key(bounding.items[pos]) == key:
                return bounding.items[pos]
        return None

    def search_all(self, key: Any) -> List[Any]:
        """All items with ``key``.

        As in the paper's Test 6 narrative: the search stops at any tuple
        with the value, then "the tree is scanned in both directions from
        that position (since the list of tuples for a given value is
        logically contiguous in the tree)".
        """
        located = self._locate_first(key)
        if located is None:
            return []
        node, pos = located
        result = []
        while True:
            while pos < len(node.items):
                count_compare()
                if self._key(node.items[pos]) != key:
                    return result
                result.append(node.items[pos])
                pos += 1
            nxt = self._successor_node(node)
            if nxt is None:
                return result
            node, pos = nxt, 0

    def _locate_first(self, key: Any) -> Optional[Tuple[_TNode, int]]:
        """The in-order first occurrence of ``key`` as ``(node, pos)``.

        With duplicates, equal keys may spill into in-order predecessor
        nodes, so after finding a bounding match we walk backwards while
        the preceding item still carries the key.
        """
        bounding, __, __ = self._find_bounding(key)
        if bounding is None:
            return None
        pos = self._lower_bound(bounding, key)
        node = bounding
        if pos == len(node.items) or self._key(node.items[pos]) != key:
            count_compare()
            return None
        count_compare()
        # Walk backwards across node boundaries while predecessors match.
        while pos == 0:
            prev = self._predecessor_node(node)
            if prev is None or not prev.items:
                break
            count_compare()
            if self._key(prev.items[-1]) != key:
                break
            node, pos = prev, len(prev.items) - 1
            while pos > 0:
                count_compare()
                if self._key(node.items[pos - 1]) != key:
                    break
                pos -= 1
        return node, pos

    # ------------------------------------------------------------------ #
    # in-order neighbours (via parent pointers, as in Figure 4)
    # ------------------------------------------------------------------ #

    def _successor_node(self, node: _TNode) -> Optional[_TNode]:
        if node.right is not None:
            count_traverse()
            node = node.right
            while node.left is not None:
                count_traverse()
                node = node.left
            return node
        while node.parent is not None and node.parent.right is node:
            count_traverse()
            node = node.parent
        count_traverse()
        return node.parent

    def _predecessor_node(self, node: _TNode) -> Optional[_TNode]:
        if node.left is not None:
            count_traverse()
            node = node.left
            while node.right is not None:
                count_traverse()
                node = node.right
            return node
        while node.parent is not None and node.parent.left is node:
            count_traverse()
            node = node.parent
        count_traverse()
        return node.parent

    # ------------------------------------------------------------------ #
    # insert
    # ------------------------------------------------------------------ #

    def insert(self, item: Any) -> None:
        key = self._key(item)
        if self._root is None:
            self._root = self._new_node([item])
            self._count += 1
            return
        bounding, last, direction = self._find_bounding(key)
        if bounding is not None:
            self._insert_bounding(bounding, item, key)
        elif direction < 0:
            self._insert_edge(last, item, at_front=True)
        else:
            self._insert_edge(last, item, at_front=False)
        self._count += 1

    def _insert_bounding(self, node: _TNode, item: Any, key: Any) -> None:
        if self.unique:
            pos = self._lower_bound(node, key)
            if pos < len(node.items):
                count_compare()
                if self._key(node.items[pos]) == key:
                    raise DuplicateKeyError(f"ttree: duplicate key {key!r}")
        else:
            pos = self._upper_bound(node, key)
        if len(node.items) < self.max_count:
            count_move(len(node.items) - pos + 1)
            node.items.insert(pos, item)
            return
        if self.spill == "min":
            # Overflow: transfer the minimum element to a leaf, where it
            # becomes the new greatest lower bound (footnote 5).  Items
            # below the insert position slide left one slot.
            minimum = node.items.pop(0)
            count_move(pos)
            node.items.insert(pos - 1, item)
            self._push_down_glb(node, minimum)
        else:
            # Ablation variant: transfer the maximum to the successor
            # leaf instead.  Items at/after the insert position slide
            # right one slot.
            maximum = node.items.pop()
            count_move(len(node.items) - pos + 1)
            node.items.insert(pos, item)
            self._push_down_lub(node, maximum)

    def _push_down_glb(self, node: _TNode, value: Any) -> None:
        """Store ``value`` as the new GLB of ``node`` (predecessor leaf).

        Appending at the predecessor's tail is free of slides — the
        footnote-5 advantage of spilling the minimum.
        """
        if node.left is None:
            leaf = self._new_node([value])
            count_move(1)
            node.left = leaf
            leaf.parent = node
            self._rebalance_from(node)
            return
        glb = node.left
        count_traverse()
        while glb.right is not None:
            count_traverse()
            glb = glb.right
        if len(glb.items) < self.max_count:
            count_move(1)
            glb.items.append(value)
            return
        leaf = self._new_node([value])
        count_move(1)
        glb.right = leaf
        leaf.parent = glb
        self._rebalance_from(glb)

    def _push_down_lub(self, node: _TNode, value: Any) -> None:
        """Store ``value`` as the new LUB of ``node`` (successor leaf).

        Prepending at the successor's head slides its whole occupancy —
        the extra data movement footnote 5 warns about.
        """
        if node.right is None:
            leaf = self._new_node([value])
            count_move(1)
            node.right = leaf
            leaf.parent = node
            self._rebalance_from(node)
            return
        lub = node.right
        count_traverse()
        while lub.left is not None:
            count_traverse()
            lub = lub.left
        if len(lub.items) < self.max_count:
            count_move(len(lub.items) + 1)
            lub.items.insert(0, value)
            return
        leaf = self._new_node([value])
        count_move(1)
        lub.left = leaf
        leaf.parent = lub
        self._rebalance_from(lub)

    def _insert_edge(self, node: _TNode, item: Any, at_front: bool) -> None:
        """Insert below/above all keys of the node where the search ended."""
        if len(node.items) < self.max_count:
            if at_front:
                count_move(len(node.items) + 1)
                node.items.insert(0, item)
            else:
                count_move(1)
                node.items.append(item)
            return
        leaf = self._new_node([item])
        count_move(1)
        if at_front:
            node.left = leaf
        else:
            node.right = leaf
        leaf.parent = node
        self._rebalance_from(node)

    # ------------------------------------------------------------------ #
    # delete
    # ------------------------------------------------------------------ #

    def delete(self, item: Any) -> None:
        key = self._key(item)
        located = self._locate_item(key, item)
        if located is None:
            raise self._missing(key)
        node, pos = located
        count_move(len(node.items) - pos)
        del node.items[pos]
        self._count -= 1
        self._fix_after_delete(node)

    def _locate_item(self, key: Any, item: Any) -> Optional[Tuple[_TNode, int]]:
        located = self._locate_first(key)
        if located is None:
            return None
        node, pos = located
        if self.unique:
            return node, pos
        # Scan the logically contiguous run of equal keys for the pointer.
        while True:
            while pos < len(node.items):
                count_compare()
                if self._key(node.items[pos]) != key:
                    return None
                if node.items[pos] == item:
                    return node, pos
                pos += 1
            nxt = self._successor_node(node)
            if nxt is None:
                return None
            node, pos = nxt, 0

    def _fix_after_delete(self, node: _TNode) -> None:
        if node.is_internal:
            if len(node.items) < self.min_count:
                self._borrow_glb(node)
            return
        if node.items:
            return  # leaves and half-leaves may underflow, down to zero
        # An empty leaf is deleted; an empty half-leaf splices its child up.
        child = node.left if node.left is not None else node.right
        parent = node.parent
        self._replace_child(parent, node, child)
        self._node_count -= 1
        start = child if child is not None else parent
        if start is not None:
            self._rebalance_from(start)
        elif parent is not None:
            self._rebalance_from(parent)

    def _borrow_glb(self, node: _TNode) -> None:
        """Refill an underflowing internal node from its GLB leaf.

        "The greatest lower bound for this node is borrowed from a leaf.
        If this causes a leaf node to become empty, the leaf node is
        deleted and the tree is rebalanced."
        """
        self._repair_occupancy(node)

    # ------------------------------------------------------------------ #
    # rebalancing (AVL rotations + T-Tree occupancy repair)
    # ------------------------------------------------------------------ #

    def _rebalance_from(self, node: Optional[_TNode]) -> None:
        while node is not None:
            self._update_height(node)
            balance = _balance(node)
            if balance > 1:
                if _balance(node.left) < 0:
                    self._rotate_left(node.left)
                node = self._rotate_right(node)
            elif balance < -1:
                if _balance(node.right) > 0:
                    self._rotate_right(node.right)
                node = self._rotate_left(node)
            node = node.parent

    def _rotate_right(self, a: _TNode) -> _TNode:
        self.rotation_count += 1
        b = a.left
        count_move(2)
        a.left = b.right
        if b.right is not None:
            b.right.parent = a
        self._replace_child(a.parent, a, b)
        b.right = a
        a.parent = b
        self._update_height(a)
        self._update_height(b)
        self._repair_occupancy(a)
        self._repair_occupancy(b)
        return b

    def _rotate_left(self, a: _TNode) -> _TNode:
        self.rotation_count += 1
        b = a.right
        count_move(2)
        a.right = b.left
        if b.left is not None:
            b.left.parent = a
        self._replace_child(a.parent, a, b)
        b.left = a
        a.parent = b
        self._update_height(a)
        self._update_height(b)
        self._repair_occupancy(a)
        self._repair_occupancy(b)
        return b

    def _repair_occupancy(self, node: _TNode) -> None:
        """Refill an underfull internal node from its bounding neighbour.

        Under the paper's policy the donor is the greatest-lower-bound
        node (rightmost of the left subtree): its maximum pops off the
        tail for free and becomes the node's new minimum.  The "max"
        ablation borrows the least upper bound instead, paying a slide of
        the donor's head.  A donor drained empty is unlinked, exactly
        like an emptied leaf after a delete.  This routine also repairs
        the LR/RL rotation special case (a sparse node rotated into an
        internal position).
        """
        while node.is_internal and len(node.items) < self.min_count:
            if self.spill == "min":
                donor = node.left
                count_traverse()
                while donor.right is not None:
                    count_traverse()
                    donor = donor.right
            else:
                donor = node.right
                count_traverse()
                while donor.left is not None:
                    count_traverse()
                    donor = donor.left
            if not donor.items:
                self._fix_after_delete(donor)
                continue
            if self.spill == "min":
                count_move(len(node.items) + 1)
                node.items.insert(0, donor.items.pop())
            else:
                count_move(len(donor.items) + 1)
                node.items.append(donor.items.pop(0))
            if not donor.items:
                self._fix_after_delete(donor)

    # ------------------------------------------------------------------ #
    # scans
    # ------------------------------------------------------------------ #

    def scan(self) -> Iterator[Any]:
        node = self._min_node()
        while node is not None:
            for item in node.items:
                yield item
            node = self._successor_node(node)

    def scan_reverse(self) -> Iterator[Any]:
        """Descending scan — "be scanned in either direction" (§2.2)."""
        node = self._max_node()
        while node is not None:
            for item in reversed(node.items):
                yield item
            node = self._predecessor_node(node)

    def scan_from(self, key: Any) -> Iterator[Any]:
        node = self._root
        start: Optional[Tuple[_TNode, int]] = None
        while node is not None:
            count_compare()
            if key < self._key(node.items[0]):
                start = (node, 0)
                count_traverse()
                node = node.left
                continue
            count_compare()
            if key > self._key(node.items[-1]):
                count_traverse()
                node = node.right
                continue
            start = (node, self._lower_bound(node, key))
            break
        if start is None:
            return
        node, pos = start
        # Duplicates of ``key`` may extend into in-order predecessor
        # nodes (they are only *logically* contiguous); rewind to the
        # first occurrence so the scan misses none of them.
        if pos < len(node.items):
            count_compare()
            if self._key(node.items[pos]) == key:
                located = self._locate_first(key)
                if located is not None:
                    node, pos = located
        while node is not None:
            for item in node.items[pos:]:
                yield item
            pos = 0
            node = self._successor_node(node)

    def _min_node(self) -> Optional[_TNode]:
        node = self._root
        if node is None:
            return None
        while node.left is not None:
            count_traverse()
            node = node.left
        return node

    def _max_node(self) -> Optional[_TNode]:
        node = self._root
        if node is None:
            return None
        while node.right is not None:
            count_traverse()
            node = node.right
        return node

    def min_item(self) -> Optional[Any]:
        node = self._min_node()
        return node.items[0] if node is not None and node.items else None

    def max_item(self) -> Optional[Any]:
        node = self._max_node()
        return node.items[-1] if node is not None and node.items else None

    # ------------------------------------------------------------------ #
    # storage / invariants
    # ------------------------------------------------------------------ #

    def storage_bytes(self) -> int:
        # Per Figure 4: item slots (fixed array of max_count), parent +
        # left + right pointers, and control information.
        per_node = (
            self.max_count * POINTER_BYTES + 3 * POINTER_BYTES + CONTROL_BYTES
        )
        return self._node_count * per_node

    @property
    def node_count(self) -> int:
        """Number of T-nodes currently allocated."""
        return self._node_count

    def height(self) -> int:
        """Tree height in nodes (0 when empty)."""
        return _height(self._root)

    def check_invariants(self) -> None:
        """Assert T-Tree structural invariants; raises AssertionError.

        Checks: AVL balance, stored heights, parent pointers, in-order key
        ordering, internal-node occupancy in [min_count, max_count], and
        leaf/half-leaf occupancy in (0, max_count] (zero only transiently).
        """
        items_seen: List[Any] = []

        def visit(node: Optional[_TNode], parent: Optional[_TNode]) -> int:
            if node is None:
                return 0
            assert node.parent is parent, "broken parent pointer"
            assert node.items, "empty node left in tree"
            assert len(node.items) <= self.max_count, "overfull node"
            keys = [self._key(i) for i in node.items]
            assert keys == sorted(keys), "node items out of order"
            if node.is_internal:
                assert len(node.items) >= self.min_count, (
                    f"internal node underfull: {len(node.items)} < "
                    f"{self.min_count}"
                )
            left = visit(node.left, node)
            items_seen.extend(self._key(i) for i in node.items)
            right = visit(node.right, node)
            assert abs(left - right) <= 1, "tree out of balance"
            assert node.height == 1 + max(left, right), "stale height"
            return 1 + max(left, right)

        visit(self._root, None)
        assert items_seen == sorted(items_seen), "in-order keys unsorted"
        assert len(items_seen) == self._count, (
            f"count mismatch: {len(items_seen)} vs {self._count}"
        )
