"""Chained Bucket Hashing [Knu73, AHU74].

"Chained Bucket Hashing was used as the temporary index structure for
unordered data, as it has excellent performance for static data"
(Section 2.2).  The directory size is fixed at creation — this is a
*static* structure: it neither grows nor shrinks, so performance degrades
if the element count drifts far from the size it was built for.  It is the
hash table that the Hash Join builds on its inner relation and that
hash-based duplicate elimination uses.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional

from repro.indexes.base import POINTER_BYTES, Index
from repro.instrument import (
    count_alloc,
    count_compare,
    count_hash,
    count_move,
    count_traverse,
)


class _ChainNode:
    """A chain link holding one item pointer and a next pointer."""

    __slots__ = ("item", "next")

    def __init__(self, item: Any, next_node: "Optional[_ChainNode]") -> None:
        self.item = item
        self.next = next_node


class ChainedBucketHashIndex(Index):
    """A fixed-size bucket table with per-bucket chains.

    Parameters
    ----------
    table_size:
        Number of directory slots.  The paper's join experiments size the
        table from the expected element count (e.g. |R|/2 buckets for the
        projection hash table); callers pick the policy.
    """

    kind = "chained_hash"

    def __init__(
        self,
        key_of: Callable[[Any], Any] = None,
        unique: bool = True,
        table_size: int = 1024,
    ) -> None:
        super().__init__(key_of, unique)
        if table_size < 1:
            raise ValueError("table size must be positive")
        self.table_size = table_size
        self._table: List[Optional[_ChainNode]] = [None] * table_size
        count_alloc()

    @classmethod
    def for_expected(
        cls,
        expected: int,
        key_of: Callable[[Any], Any] = None,
        unique: bool = True,
        fill: float = 1.0,
    ) -> "ChainedBucketHashIndex":
        """Size the table for ``expected`` elements at ``fill`` load."""
        size = max(4, int(expected / fill) if fill > 0 else expected)
        return cls(key_of, unique, table_size=size)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _slot(self, key: Any) -> int:
        count_hash()
        return hash(key) % self.table_size

    # ------------------------------------------------------------------ #
    # Index API
    # ------------------------------------------------------------------ #

    def insert(self, item: Any) -> None:
        key = self.key_of(item)
        slot = self._slot(key)
        if self.unique:
            node = self._table[slot]
            while node is not None:
                count_traverse()
                count_compare()
                if self.key_of(node.item) == key:
                    from repro.errors import DuplicateKeyError

                    raise DuplicateKeyError(
                        f"chained_hash: duplicate key {key!r}"
                    )
                node = node.next
        count_alloc()
        count_move(1)
        self._table[slot] = _ChainNode(item, self._table[slot])
        self._count += 1

    def insert_unless_present(self, item: Any) -> bool:
        """Insert ``item`` only if no equal-keyed item exists.

        Returns True when inserted, False when a duplicate was found and
        discarded — the primitive that hash-based duplicate elimination
        (Section 3.4) is built on.
        """
        key = self.key_of(item)
        slot = self._slot(key)
        node = self._table[slot]
        while node is not None:
            count_traverse()
            count_compare()
            if self.key_of(node.item) == key:
                return False
            node = node.next
        count_alloc()
        count_move(1)
        self._table[slot] = _ChainNode(item, self._table[slot])
        self._count += 1
        return True

    def delete(self, item: Any) -> None:
        key = self.key_of(item)
        slot = self._slot(key)
        prev: Optional[_ChainNode] = None
        node = self._table[slot]
        while node is not None:
            count_traverse()
            count_compare()
            if self.key_of(node.item) == key and node.item == item:
                if prev is None:
                    self._table[slot] = node.next
                else:
                    prev.next = node.next
                count_move(1)
                self._count -= 1
                return
            prev, node = node, node.next
        raise self._missing(key)

    def search(self, key: Any) -> Optional[Any]:
        node = self._table[self._slot(key)]
        while node is not None:
            count_traverse()
            count_compare()
            if self.key_of(node.item) == key:
                return node.item
            node = node.next
        return None

    def search_all(self, key: Any) -> List[Any]:
        result = []
        node = self._table[self._slot(key)]
        while node is not None:
            count_traverse()
            count_compare()
            if self.key_of(node.item) == key:
                result.append(node.item)
            node = node.next
        return result

    def scan(self) -> Iterator[Any]:
        for head in self._table:
            node = head
            while node is not None:
                count_traverse()
                yield node.item
                node = node.next

    def storage_bytes(self) -> int:
        # The paper's accounting ("a storage factor of 2.3 because it had
        # one pointer for each data item and part of the table remained
        # unused"): each stored item costs its data pointer plus one link
        # pointer (the head slot doubles as the first link), and every
        # empty table slot is pure overhead.
        empty_slots = sum(1 for head in self._table if head is None)
        return (
            self._count * 2 * POINTER_BYTES + empty_slots * POINTER_BYTES
        )

    def chain_lengths(self) -> List[int]:
        """Per-slot chain lengths (for load-distribution tests)."""
        lengths = []
        for head in self._table:
            n, node = 0, head
            while node is not None:
                n += 1
                node = node.next
            lengths.append(n)
        return lengths
