"""Extendible Hashing [FNP79].

A directory of 2^depth bucket pointers; a full bucket splits by local
depth, and when a bucket's local depth already equals the global depth the
whole directory doubles.  The paper's storage study singles this out:
"Extendible Hashing tended to use the largest amount of storage for small
node sizes (2, 4 and 6) ... a small node size increased the probability
that some nodes would get more values than others, causing the directory
to double repeatedly" (Section 3.2.2) — behaviour this implementation
reproduces and the storage-cost benchmark measures.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional

from repro.indexes.base import CONTROL_BYTES, POINTER_BYTES, Index
from repro.instrument import (
    count_alloc,
    count_compare,
    count_hash,
    count_move,
    count_traverse,
)

#: Hard ceiling on global depth; beyond this duplicates of one hash value
#: simply overflow their bucket rather than doubling the directory forever.
_MAX_GLOBAL_DEPTH = 22

DEFAULT_NODE_SIZE = 8


class _Bucket:
    __slots__ = ("local_depth", "items", "pattern")

    def __init__(self, local_depth: int, pattern: int) -> None:
        self.local_depth = local_depth
        #: The low ``local_depth`` hash bits every resident shares; also
        #: the first directory index pointing at this bucket.
        self.pattern = pattern
        self.items: List[Any] = []


class ExtendibleHashIndex(Index):
    """Extendible hashing with ``node_size``-item buckets."""

    kind = "extendible_hash"

    def __init__(
        self,
        key_of: Callable[[Any], Any] = None,
        unique: bool = True,
        node_size: int = DEFAULT_NODE_SIZE,
    ) -> None:
        super().__init__(key_of, unique)
        if node_size < 1:
            raise ValueError("bucket capacity must be positive")
        self.node_size = node_size
        self.global_depth = 1
        bucket0, bucket1 = _Bucket(1, 0), _Bucket(1, 1)
        count_alloc(2)
        self._directory: List[_Bucket] = [bucket0, bucket1]

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _hash(self, key: Any) -> int:
        count_hash()
        # Mix the bits so that consecutive integer keys spread over the
        # directory; Python's hash() is the identity on small ints.
        h = hash(key)
        h ^= (h >> 16) ^ (h >> 31)
        return h * 0x9E3779B1 & 0xFFFFFFFF

    def _bucket_for(self, key: Any) -> _Bucket:
        index = self._hash(key) & ((1 << self.global_depth) - 1)
        count_traverse()
        return self._directory[index]

    def _split(self, bucket: _Bucket) -> None:
        """Split one bucket, doubling the directory if necessary."""
        if bucket.local_depth == self.global_depth:
            if self.global_depth >= _MAX_GLOBAL_DEPTH:
                return  # give up; the bucket overflows its capacity
            # Doubling is one straight block copy of pointers; per-entry
            # cost is far below a data move, which is why the paper finds
            # Extendible Hashing's small-node *runtime* equivalent to the
            # other hash methods even while its *storage* explodes.
            count_move(max(1, len(self._directory) // 64))
            self._directory = self._directory + self._directory
            self.global_depth += 1
        new_depth = bucket.local_depth + 1
        discriminator = 1 << (new_depth - 1)
        sibling = _Bucket(new_depth, bucket.pattern | discriminator)
        count_alloc()
        bucket.local_depth = new_depth
        keep, move = [], []
        for item in bucket.items:
            if self._hash(self.key_of(item)) & discriminator:
                move.append(item)
            else:
                keep.append(item)
        count_move(len(bucket.items))
        bucket.items = keep
        sibling.items = move
        # Repoint exactly the directory entries whose low bits match the
        # sibling's pattern (an arithmetic progression — no full scan).
        step = 1 << new_depth
        for i in range(sibling.pattern, len(self._directory), step):
            self._directory[i] = sibling
            count_move(1)

    # ------------------------------------------------------------------ #
    # Index API
    # ------------------------------------------------------------------ #

    def insert(self, item: Any) -> None:
        key = self.key_of(item)
        if self.unique:
            bucket = self._bucket_for(key)
            for existing in bucket.items:
                count_compare()
                if self.key_of(existing) == key:
                    from repro.errors import DuplicateKeyError

                    raise DuplicateKeyError(
                        f"extendible_hash: duplicate key {key!r}"
                    )
        while True:
            bucket = self._bucket_for(key)
            if len(bucket.items) < self.node_size:
                count_move(1)
                bucket.items.append(item)
                self._count += 1
                return
            if self._unsplittable(bucket, key):
                # All residents share the new key's hash (heavy duplicates)
                # or the depth ceiling was hit: splitting cannot separate
                # them, so the bucket overflows its nominal capacity.
                count_move(1)
                bucket.items.append(item)
                self._count += 1
                return
            self._split(bucket)

    #: Only suspect duplicate-hash buckets after this many fruitless
    #: splits; checking earlier would charge hash calls on every ordinary
    #: split and distort the cost measurements.
    _DUPLICATE_SUSPECT_DEPTH = 12

    def _unsplittable(self, bucket: _Bucket, key: Any) -> bool:
        """True when splitting ``bucket`` can never make room for ``key``."""
        if bucket.local_depth >= _MAX_GLOBAL_DEPTH:
            return True
        if bucket.local_depth < self._DUPLICATE_SUSPECT_DEPTH:
            return False
        new_hash = self._hash(key)
        return all(
            self._hash(self.key_of(item)) == new_hash
            for item in bucket.items
        )

    def delete(self, item: Any) -> None:
        key = self.key_of(item)
        bucket = self._bucket_for(key)
        for i, existing in enumerate(bucket.items):
            count_compare()
            if self.key_of(existing) == key and existing == item:
                count_move(len(bucket.items) - i)
                del bucket.items[i]
                self._count -= 1
                return
        raise self._missing(key)

    def search(self, key: Any) -> Optional[Any]:
        bucket = self._bucket_for(key)
        for item in bucket.items:
            count_compare()
            if self.key_of(item) == key:
                return item
        return None

    def search_all(self, key: Any) -> List[Any]:
        bucket = self._bucket_for(key)
        result = []
        for item in bucket.items:
            count_compare()
            if self.key_of(item) == key:
                result.append(item)
        return result

    def scan(self) -> Iterator[Any]:
        seen = set()
        for bucket in self._directory:
            if id(bucket) in seen:
                continue
            seen.add(id(bucket))
            count_traverse()
            yield from bucket.items

    def storage_bytes(self) -> int:
        # Directory pointers plus fixed-capacity bucket frames.  The
        # directory blow-up at small node sizes is exactly what the paper
        # measured.
        buckets = {id(b): b for b in self._directory}
        bucket_bytes = 0
        for bucket in buckets.values():
            slots = max(self.node_size, len(bucket.items))
            bucket_bytes += slots * POINTER_BYTES + CONTROL_BYTES
        return len(self._directory) * POINTER_BYTES + bucket_bytes

    def bucket_count(self) -> int:
        """Number of distinct buckets (for structural tests)."""
        return len({id(b) for b in self._directory})
