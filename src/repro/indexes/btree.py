"""The B-Tree index [Com79] — the *original* B-Tree, not the B+-Tree.

Footnote 3 of the paper: "We refer to the original B Tree, not the commonly
used B+ Tree.  Tests ... showed that the B+ Tree uses more storage than the
B Tree and does not perform any better in main memory."  In the original
B-Tree, items live in every node (internal and leaf) and an internal node
with N items has N+1 children.

"The B Tree search time is the worst of the four order-preserving
structures, because it requires several binary searches, one for each node
in the search path" (Section 3.2.2) — which this implementation reproduces:
each visited node performs its own counted binary search.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.errors import DuplicateKeyError
from repro.indexes.base import (
    CONTROL_BYTES,
    POINTER_BYTES,
    OrderedIndex,
)
from repro.instrument import count_alloc, count_compare, count_move, count_traverse

#: Default maximum number of entries per node; benchmarks sweep this.
DEFAULT_NODE_SIZE = 20


class _Entry:
    """A key slot: its extracted key plus the item(s) carrying that key.

    Keys within the tree are unique; a non-unique index keeps all items
    sharing a key in one entry's bucket, so the classic B-Tree algorithms
    apply unchanged.  The key is cached here purely as a Python-level
    optimisation; the *counted* cost model still charges one comparison per
    probe exactly as if the key were re-extracted, matching the paper's
    "index holds only tuple pointers" accounting.
    """

    __slots__ = ("key", "items")

    def __init__(self, key: Any, item: Any) -> None:
        self.key = key
        self.items = [item]


class _BNode:
    __slots__ = ("entries", "children")

    def __init__(self) -> None:
        self.entries: List[_Entry] = []
        self.children: List[_BNode] = []

    @property
    def leaf(self) -> bool:
        return not self.children


class BTreeIndex(OrderedIndex):
    """An order-preserving B-Tree with ``node_size`` entries per node."""

    kind = "btree"

    def __init__(
        self,
        key_of: Callable[[Any], Any] = None,
        unique: bool = True,
        node_size: int = DEFAULT_NODE_SIZE,
    ) -> None:
        super().__init__(key_of, unique)
        if node_size < 3:
            raise ValueError("B-Tree node size must be at least 3")
        self.node_size = node_size
        self._min_entries = node_size // 2
        self._root = _BNode()
        count_alloc()
        self._node_count = 1

    # ------------------------------------------------------------------ #
    # node-level binary search
    # ------------------------------------------------------------------ #

    def _find_in_node(self, node: _BNode, key: Any) -> Tuple[int, bool]:
        """Binary search a node; returns (position, exact_match).

        Each probe counts a traversal-equivalent for the binary search's
        arithmetic — the per-node setup that makes the B-Tree "the worst
        of the four order-preserving structures" in Graph 1.
        """
        lo, hi = 0, len(node.entries)
        while lo < hi:
            mid = (lo + hi) // 2
            count_compare()
            count_traverse()
            if node.entries[mid].key < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(node.entries):
            count_compare()
            if node.entries[lo].key == key:
                return lo, True
        return lo, False

    # ------------------------------------------------------------------ #
    # search
    # ------------------------------------------------------------------ #

    def _find_entry(self, key: Any) -> Optional[_Entry]:
        node = self._root
        while True:
            pos, match = self._find_in_node(node, key)
            if match:
                return node.entries[pos]
            if node.leaf:
                return None
            count_traverse()
            node = node.children[pos]

    def search(self, key: Any) -> Optional[Any]:
        entry = self._find_entry(key)
        return entry.items[0] if entry is not None else None

    def search_all(self, key: Any) -> List[Any]:
        entry = self._find_entry(key)
        return list(entry.items) if entry is not None else []

    # ------------------------------------------------------------------ #
    # insert
    # ------------------------------------------------------------------ #

    def insert(self, item: Any) -> None:
        key = self.key_of(item)
        split = self._insert(self._root, key, item)
        if split is not None:
            median, right = split
            new_root = _BNode()
            count_alloc()
            self._node_count += 1
            new_root.entries = [median]
            new_root.children = [self._root, right]
            self._root = new_root
        self._count += 1

    def _insert(
        self, node: _BNode, key: Any, item: Any
    ) -> Optional[Tuple[_Entry, _BNode]]:
        """Insert into the subtree; returns (median, new right node) when
        this node split, else None."""
        pos, match = self._find_in_node(node, key)
        if match:
            if self.unique:
                raise DuplicateKeyError(f"btree: duplicate key {key!r}")
            node.entries[pos].items.append(item)
            count_move(1)
            return None
        if node.leaf:
            count_move(len(node.entries) - pos + 1)
            node.entries.insert(pos, _Entry(key, item))
        else:
            count_traverse()
            split = self._insert(node.children[pos], key, item)
            if split is None:
                return None
            median, right = split
            count_move(len(node.entries) - pos + 1)
            node.entries.insert(pos, median)
            node.children.insert(pos + 1, right)
        if len(node.entries) <= self.node_size:
            return None
        return self._split(node)

    def _split(self, node: _BNode) -> Tuple[_Entry, _BNode]:
        mid = len(node.entries) // 2
        median = node.entries[mid]
        right = _BNode()
        count_alloc()
        self._node_count += 1
        right.entries = node.entries[mid + 1 :]
        node.entries = node.entries[:mid]
        count_move(len(right.entries) + 1)
        if not node.leaf:
            right.children = node.children[mid + 1 :]
            node.children = node.children[: mid + 1]
            count_move(len(right.children))
        return median, right

    # ------------------------------------------------------------------ #
    # delete
    # ------------------------------------------------------------------ #

    def delete(self, item: Any) -> None:
        key = self.key_of(item)
        entry = self._find_entry(key)
        if entry is None:
            raise self._missing(key)
        if item not in entry.items:
            raise self._missing(key)
        if len(entry.items) > 1:
            entry.items.remove(item)
            count_move(1)
            self._count -= 1
            return
        self._delete_key(self._root, key)
        if not self._root.entries and not self._root.leaf:
            self._root = self._root.children[0]
            self._node_count -= 1
        self._count -= 1

    def _delete_key(self, node: _BNode, key: Any) -> None:
        pos, match = self._find_in_node(node, key)
        if match:
            if node.leaf:
                count_move(len(node.entries) - pos)
                del node.entries[pos]
            else:
                # Replace with the in-order predecessor (rightmost entry
                # of the left subtree), then delete it from there.
                count_traverse()
                pred_node = node.children[pos]
                while not pred_node.leaf:
                    count_traverse()
                    pred_node = pred_node.children[-1]
                predecessor = pred_node.entries[-1]
                count_move(1)
                node.entries[pos] = predecessor
                self._delete_key(node.children[pos], predecessor.key)
                self._fix_child(node, pos)
        else:
            if node.leaf:
                raise self._missing(key)
            count_traverse()
            self._delete_key(node.children[pos], key)
            self._fix_child(node, pos)

    def _fix_child(self, parent: _BNode, pos: int) -> None:
        """Restore the min-occupancy invariant of ``parent.children[pos]``."""
        child = parent.children[pos]
        if len(child.entries) >= self._min_entries:
            return
        if pos > 0 and len(parent.children[pos - 1].entries) > self._min_entries:
            # Borrow from the left sibling through the parent separator.
            left = parent.children[pos - 1]
            count_move(2)
            child.entries.insert(0, parent.entries[pos - 1])
            parent.entries[pos - 1] = left.entries.pop()
            if not left.leaf:
                child.children.insert(0, left.children.pop())
                count_move(1)
        elif (
            pos < len(parent.children) - 1
            and len(parent.children[pos + 1].entries) > self._min_entries
        ):
            right = parent.children[pos + 1]
            count_move(2)
            child.entries.append(parent.entries[pos])
            parent.entries[pos] = right.entries.pop(0)
            if not right.leaf:
                child.children.append(right.children.pop(0))
                count_move(1)
        else:
            # Merge with a sibling, pulling down the parent separator.
            if pos > 0:
                left, right_pos = parent.children[pos - 1], pos
                separator_pos = pos - 1
            else:
                left, right_pos = child, pos + 1
                separator_pos = pos
            right = parent.children[right_pos]
            count_move(len(right.entries) + 1)
            left.entries.append(parent.entries.pop(separator_pos))
            left.entries.extend(right.entries)
            left.children.extend(right.children)
            del parent.children[right_pos]
            self._node_count -= 1

    # ------------------------------------------------------------------ #
    # scans
    # ------------------------------------------------------------------ #

    def scan(self) -> Iterator[Any]:
        yield from self._scan_node(self._root)

    def _scan_node(self, node: _BNode) -> Iterator[Any]:
        if node.leaf:
            for entry in node.entries:
                yield from entry.items
            return
        for i, entry in enumerate(node.entries):
            count_traverse()
            yield from self._scan_node(node.children[i])
            yield from entry.items
        count_traverse()
        yield from self._scan_node(node.children[-1])

    def scan_from(self, key: Any) -> Iterator[Any]:
        yield from self._scan_from(self._root, key)

    def _scan_from(self, node: _BNode, key: Any) -> Iterator[Any]:
        pos, match = self._find_in_node(node, key)
        if node.leaf:
            for entry in node.entries[pos:]:
                yield from entry.items
            return
        count_traverse()
        yield from self._scan_from(node.children[pos], key)
        for i in range(pos, len(node.entries)):
            yield from node.entries[i].items
            count_traverse()
            yield from self._scan_node(node.children[i + 1])

    # ------------------------------------------------------------------ #
    # storage / invariants
    # ------------------------------------------------------------------ #

    def storage_bytes(self) -> int:
        """Actual allocated bytes: walk the tree and account every node.

        Each entry slot costs one item pointer (plus pointer-per-extra-item
        for duplicate buckets); each internal node also pays one child
        pointer per child; every node pays CONTROL_BYTES, and unused slots
        in a node are allocated but empty (nodes are fixed-size arrays).
        """
        total = 0

        def visit(node: _BNode) -> None:
            nonlocal total
            total += CONTROL_BYTES
            total += self.node_size * POINTER_BYTES  # item slots (fixed)
            extra_items = sum(len(e.items) - 1 for e in node.entries)
            total += extra_items * POINTER_BYTES
            if not node.leaf:
                total += (self.node_size + 1) * POINTER_BYTES
                for child in node.children:
                    visit(child)

        visit(self._root)
        return total

    def depth(self) -> int:
        """Number of levels from root to leaf."""
        node, levels = self._root, 1
        while not node.leaf:
            node = node.children[0]
            levels += 1
        return levels

    def check_invariants(self) -> None:
        """Assert occupancy, ordering, and uniform leaf depth."""
        leaf_depths = []

        def visit(node: _BNode, depth: int, lo: Any, hi: Any) -> None:
            if node is not self._root:
                assert len(node.entries) >= self._min_entries, (
                    f"underfull node: {len(node.entries)}"
                )
            assert len(node.entries) <= self.node_size, "overfull node"
            keys = [e.key for e in node.entries]
            assert keys == sorted(keys), "node keys out of order"
            for key in keys:
                if lo is not None:
                    assert key > lo, "key below subtree bound"
                if hi is not None:
                    assert key < hi, "key above subtree bound"
            if node.leaf:
                leaf_depths.append(depth)
                return
            assert len(node.children) == len(node.entries) + 1
            bounds = [lo] + keys + [hi]
            for i, child in enumerate(node.children):
                visit(child, depth + 1, bounds[i], bounds[i + 1])

        visit(self._root, 0, None, None)
        assert len(set(leaf_depths)) <= 1, "leaves at different depths"
