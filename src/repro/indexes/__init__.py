"""Main-memory index structures (paper Section 3.2).

All eight structures from the paper's index study are implemented:

===========================  =============================================
Structure                    Module
===========================  =============================================
Array index [AHK85]          :mod:`repro.indexes.array_index`
AVL Tree [AHU74]             :mod:`repro.indexes.avl_tree`
B-Tree (original) [Com79]    :mod:`repro.indexes.btree`
**T-Tree** [LeC85]           :mod:`repro.indexes.ttree`
Chained Bucket Hash [Knu73]  :mod:`repro.indexes.chained_hash`
Extendible Hash [FNP79]      :mod:`repro.indexes.extendible_hash`
Linear Hash [Lit80]          :mod:`repro.indexes.linear_hash`
Modified Linear Hash [LeC85] :mod:`repro.indexes.modified_linear_hash`
===========================  =============================================

Indexes are built "in a main memory style" (Section 3.2.2): they store
*items* (tuple pointers in the DBMS, plain keys in standalone benchmarks)
and obtain each item's key through a caller-supplied extractor, never
copying key values into the structure.
"""

from repro.indexes.array_index import ArrayIndex
from repro.indexes.avl_tree import AVLTreeIndex
from repro.indexes.base import Index, OrderedIndex, identity_key
from repro.indexes.bplus_tree import BPlusTreeIndex
from repro.indexes.btree import BTreeIndex
from repro.indexes.chained_hash import ChainedBucketHashIndex
from repro.indexes.extendible_hash import ExtendibleHashIndex
from repro.indexes.linear_hash import LinearHashIndex
from repro.indexes.modified_linear_hash import ModifiedLinearHashIndex
from repro.indexes.ttree import TTreeIndex

#: Registry used by relations and benchmarks to construct indexes by name.
#: "bplus" is not one of the paper's eight structures — it exists to
#: verify footnote 3 (see bench_ablation_bplus.py).
INDEX_KINDS = {
    "array": ArrayIndex,
    "avl": AVLTreeIndex,
    "btree": BTreeIndex,
    "bplus": BPlusTreeIndex,
    "ttree": TTreeIndex,
    "chained_hash": ChainedBucketHashIndex,
    "extendible_hash": ExtendibleHashIndex,
    "linear_hash": LinearHashIndex,
    "modified_linear_hash": ModifiedLinearHashIndex,
}

#: The order-preserving subset (solid lines in the paper's graphs).
ORDERED_KINDS = ("array", "avl", "btree", "ttree")

#: The hash-based subset (dashed lines in the paper's graphs).
HASH_KINDS = (
    "chained_hash",
    "extendible_hash",
    "linear_hash",
    "modified_linear_hash",
)

__all__ = [
    "ArrayIndex",
    "AVLTreeIndex",
    "BPlusTreeIndex",
    "BTreeIndex",
    "ChainedBucketHashIndex",
    "ExtendibleHashIndex",
    "HASH_KINDS",
    "INDEX_KINDS",
    "Index",
    "LinearHashIndex",
    "ModifiedLinearHashIndex",
    "ORDERED_KINDS",
    "OrderedIndex",
    "TTreeIndex",
    "identity_key",
]
