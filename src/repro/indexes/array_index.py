"""The array index [AHK85]: a sorted array of items.

The paper uses the array as the *read-only* ordered index: "It is easy to
build and scan, but it is useful only as a read-only index because it does
not handle updates well" (Section 2.2).  Every insert or delete moves half
of the array on average, which is exactly why Graph 2 shows it two orders
of magnitude slower than everything else under a query mix.  It is also the
storage-cost baseline (one pointer per item, nothing else) and the backing
structure for the sort-merge join.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional

from repro.errors import DuplicateKeyError
from repro.indexes.base import POINTER_BYTES, OrderedIndex, compare_keys
from repro.instrument import count_compare, count_move, count_traverse


class ArrayIndex(OrderedIndex):
    """A sorted dynamic array of items with binary search.

    The binary search performs arithmetic on positions (unlike a binary
    *tree* search which just follows pointers); the paper notes this
    overhead makes array search slightly slower than AVL search.  The cost
    model charges one traversal-equivalent per probe for that arithmetic,
    which is what places the array between AVL and B-Tree in Graph 1.
    """

    kind = "array"

    def __init__(
        self,
        key_of: Callable[[Any], Any] = None,
        unique: bool = True,
        items: List[Any] = None,
        presorted: bool = False,
    ) -> None:
        """``items`` seeds the array; pass ``presorted=True`` to skip the
        sort when the caller guarantees ascending key order."""
        super().__init__(key_of, unique)
        self._items: List[Any] = list(items) if items else []
        if self._items and not presorted:
            self._items.sort(key=self.key_of)
        self._count = len(self._items)

    # ------------------------------------------------------------------ #
    # binary search helpers
    # ------------------------------------------------------------------ #

    def _lower_bound(self, key: Any) -> int:
        """First position whose key is >= ``key`` (counted probes).

        Each probe also counts one traversal-equivalent: "the overhead of
        the arithmetic calculation and movement of pointers is noticeable"
        versus the hardwired binary search of a binary tree (Graph 1).
        """
        lo, hi = 0, len(self._items)
        while lo < hi:
            mid = (lo + hi) // 2
            count_compare()
            count_traverse()
            if self.key_of(self._items[mid]) < key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _upper_bound(self, key: Any) -> int:
        """First position whose key is > ``key`` (counted probes)."""
        lo, hi = 0, len(self._items)
        while lo < hi:
            mid = (lo + hi) // 2
            count_compare()
            count_traverse()
            if key < self.key_of(self._items[mid]):
                hi = mid
            else:
                lo = mid + 1
        return lo

    # ------------------------------------------------------------------ #
    # Index API
    # ------------------------------------------------------------------ #

    def insert(self, item: Any) -> None:
        key = self.key_of(item)
        pos = self._lower_bound(key)
        if self.unique and pos < len(self._items):
            if compare_keys(self.key_of(self._items[pos]), key) == 0:
                raise DuplicateKeyError(f"array: duplicate key {key!r}")
        # Shifting the tail is the array's Achilles heel: |R|/2 moves on
        # average (Section 3.2.2, "Every update requires moving half of
        # the array, on the average").
        count_move(len(self._items) - pos + 1)
        self._items.insert(pos, item)
        self._count += 1

    def delete(self, item: Any) -> None:
        key = self.key_of(item)
        pos = self._lower_bound(key)
        while pos < len(self._items):
            candidate = self._items[pos]
            if compare_keys(self.key_of(candidate), key) != 0:
                break
            if candidate == item:
                count_move(len(self._items) - pos)
                del self._items[pos]
                self._count -= 1
                return
            pos += 1
        raise self._missing(key)

    def search(self, key: Any) -> Optional[Any]:
        pos = self._lower_bound(key)
        if pos < len(self._items):
            item = self._items[pos]
            if compare_keys(self.key_of(item), key) == 0:
                return item
        return None

    def search_all(self, key: Any) -> List[Any]:
        lo = self._lower_bound(key)
        hi = self._upper_bound(key)
        count_compare(max(0, hi - lo))
        return self._items[lo:hi]

    def scan(self) -> Iterator[Any]:
        return iter(self._items)

    def scan_from(self, key: Any) -> Iterator[Any]:
        pos = self._lower_bound(key)
        return iter(self._items[pos:])

    def scan_reverse(self) -> Iterator[Any]:
        """Descending-order scan ("be scanned in either direction")."""
        return reversed(self._items)

    def min_item(self) -> Optional[Any]:
        return self._items[0] if self._items else None

    def max_item(self) -> Optional[Any]:
        return self._items[-1] if self._items else None

    def at(self, position: int) -> Any:
        """Positional access; the merge join exploits this."""
        return self._items[position]

    def rows(self) -> List[Any]:
        """The backing list (shared, not copied) — contiguous scanning is
        the array's advantage in the merge join."""
        return self._items

    def storage_bytes(self) -> int:
        # One pointer per item — the minimum, the paper's baseline.
        return len(self._items) * POINTER_BYTES

    def sort_in_place(self, sorter: Callable[[List[Any]], None]) -> None:
        """Re-sort via an external sorter (the instrumented quicksort).

        The sort-merge join builds an *unsorted* array index and sorts it
        with the paper's quicksort + insertion-sort hybrid; this hook lets
        it do so while keeping the array's invariants.
        """
        sorter(self._items)

    @classmethod
    def build_unsorted(
        cls,
        items: List[Any],
        key_of: Callable[[Any], Any] = None,
        unique: bool = False,
    ) -> "ArrayIndex":
        """Create an array index whose contents are NOT yet sorted.

        The caller must invoke :meth:`sort_in_place` before searching or
        scanning.  Bulk-loading pointers this way costs one move per item,
        which is how the sort-merge join's build phase is charged.
        """
        index = cls.__new__(cls)
        OrderedIndex.__init__(index, key_of, unique)
        index._items = list(items)
        index._count = len(index._items)
        count_move(len(items))
        return index
