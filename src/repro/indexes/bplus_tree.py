"""The B+-Tree — implemented to verify the paper's footnote 3.

"We refer to the original B Tree, not the commonly used B+ Tree.  Tests
reported in [LeC85] showed that the B+ Tree uses more storage than the
B Tree and does not perform any better in main memory."

In a B+-Tree all items live in the leaves; internal nodes hold only
separator keys and child pointers, and the leaves are chained for
sequential scans.  On disk those properties buy locality; in main memory
they just duplicate the separator keys — footnote 4's argument in
reverse.  The ablation benchmark (`bench_ablation_bplus.py`) measures
both claims.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.errors import DuplicateKeyError
from repro.indexes.base import (
    CONTROL_BYTES,
    POINTER_BYTES,
    OrderedIndex,
)
from repro.instrument import count_alloc, count_compare, count_move, count_traverse

DEFAULT_NODE_SIZE = 20


class _Leaf:
    __slots__ = ("keys", "buckets", "next")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.buckets: List[List[Any]] = []  # items per key (duplicates)
        self.next: Optional[_Leaf] = None


class _Internal:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        self.keys: List[Any] = []  # separator keys (copies, the overhead)
        self.children: List[Any] = []


class BPlusTreeIndex(OrderedIndex):
    """A B+-Tree with chained leaves (the footnote-3 comparator)."""

    kind = "bplus"

    def __init__(
        self,
        key_of: Callable[[Any], Any] = None,
        unique: bool = True,
        node_size: int = DEFAULT_NODE_SIZE,
    ) -> None:
        super().__init__(key_of, unique)
        if node_size < 3:
            raise ValueError("B+-Tree node size must be at least 3")
        self.node_size = node_size
        self._min_keys = node_size // 2
        self._root: Any = _Leaf()
        count_alloc()
        self._leaf_count = 1
        self._internal_count = 0

    # ------------------------------------------------------------------ #
    # search helpers
    # ------------------------------------------------------------------ #

    def _child_position(self, node: _Internal, key: Any) -> int:
        """Binary search for the child subtree containing ``key``."""
        lo, hi = 0, len(node.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            count_compare()
            count_traverse()
            if node.keys[mid] <= key:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def _leaf_position(self, leaf: _Leaf, key: Any) -> Tuple[int, bool]:
        lo, hi = 0, len(leaf.keys)
        while lo < hi:
            mid = (lo + hi) // 2
            count_compare()
            count_traverse()
            if leaf.keys[mid] < key:
                lo = mid + 1
            else:
                hi = mid
        if lo < len(leaf.keys):
            count_compare()
            if leaf.keys[lo] == key:
                return lo, True
        return lo, False

    def _find_leaf(self, key: Any) -> _Leaf:
        node = self._root
        while isinstance(node, _Internal):
            count_traverse()
            node = node.children[self._child_position(node, key)]
        return node

    # ------------------------------------------------------------------ #
    # Index API
    # ------------------------------------------------------------------ #

    def search(self, key: Any) -> Optional[Any]:
        leaf = self._find_leaf(key)
        pos, match = self._leaf_position(leaf, key)
        return leaf.buckets[pos][0] if match else None

    def search_all(self, key: Any) -> List[Any]:
        leaf = self._find_leaf(key)
        pos, match = self._leaf_position(leaf, key)
        return list(leaf.buckets[pos]) if match else []

    def insert(self, item: Any) -> None:
        key = self.key_of(item)
        split = self._insert(self._root, key, item)
        if split is not None:
            separator, right = split
            new_root = _Internal()
            count_alloc()
            self._internal_count += 1
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
        self._count += 1

    def _insert(self, node: Any, key: Any, item: Any):
        if isinstance(node, _Leaf):
            pos, match = self._leaf_position(node, key)
            if match:
                if self.unique:
                    raise DuplicateKeyError(f"bplus: duplicate key {key!r}")
                node.buckets[pos].append(item)
                count_move(1)
                return None
            count_move(len(node.keys) - pos + 1)
            node.keys.insert(pos, key)
            node.buckets.insert(pos, [item])
            if len(node.keys) <= self.node_size:
                return None
            return self._split_leaf(node)
        pos = self._child_position(node, key)
        count_traverse()
        split = self._insert(node.children[pos], key, item)
        if split is None:
            return None
        separator, right = split
        count_move(len(node.keys) - pos + 1)
        node.keys.insert(pos, separator)
        node.children.insert(pos + 1, right)
        if len(node.keys) <= self.node_size:
            return None
        return self._split_internal(node)

    def _split_leaf(self, leaf: _Leaf):
        mid = len(leaf.keys) // 2
        right = _Leaf()
        count_alloc()
        self._leaf_count += 1
        right.keys = leaf.keys[mid:]
        right.buckets = leaf.buckets[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.buckets = leaf.buckets[:mid]
        right.next = leaf.next
        leaf.next = right
        count_move(len(right.keys))
        # The separator key is *copied* up — the B+-Tree's extra storage.
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = _Internal()
        count_alloc()
        self._internal_count += 1
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        count_move(len(right.keys) + len(right.children))
        return separator, right

    def delete(self, item: Any) -> None:
        key = self.key_of(item)
        leaf = self._find_leaf(key)
        pos, match = self._leaf_position(leaf, key)
        if not match or item not in leaf.buckets[pos]:
            raise self._missing(key)
        bucket = leaf.buckets[pos]
        if len(bucket) > 1:
            bucket.remove(item)
            count_move(1)
        else:
            count_move(len(leaf.keys) - pos)
            del leaf.keys[pos]
            del leaf.buckets[pos]
            # Simple rebalancing: leaves may underflow (like the array,
            # this comparator is evaluated on search/storage; the paper's
            # own B+ tests predate full delete rebalancing concerns).
            self._collapse_root()
        self._count -= 1

    def _collapse_root(self) -> None:
        while (
            isinstance(self._root, _Internal)
            and len(self._root.children) == 1
        ):
            self._root = self._root.children[0]
            self._internal_count -= 1

    def scan(self) -> Iterator[Any]:
        node = self._root
        while isinstance(node, _Internal):
            count_traverse()
            node = node.children[0]
        leaf: Optional[_Leaf] = node
        while leaf is not None:
            for bucket in leaf.buckets:
                yield from bucket
            count_traverse()  # the leaf chain hop
            leaf = leaf.next

    def scan_from(self, key: Any) -> Iterator[Any]:
        leaf: Optional[_Leaf] = self._find_leaf(key)
        pos, __ = self._leaf_position(leaf, key)
        while leaf is not None:
            for bucket in leaf.buckets[pos:]:
                yield from bucket
            pos = 0
            count_traverse()
            leaf = leaf.next

    def storage_bytes(self) -> int:
        # Main-memory accounting (pointer-sized slots, like the B-Tree):
        # leaves hold the item slots plus a next pointer; internal nodes
        # hold separator slots AND child pointers but no items at all —
        # an entire extra level of pure overhead, which is footnote 3's
        # "uses more storage than the B Tree".
        leaf_bytes = self._leaf_count * (
            self.node_size * POINTER_BYTES  # item slots
            + POINTER_BYTES  # next pointer
            + CONTROL_BYTES
        )
        extra_items = max(0, self._count - self._total_keys())
        internal_bytes = self._internal_count * (
            self.node_size * POINTER_BYTES  # separator slots
            + (self.node_size + 1) * POINTER_BYTES  # child pointers
            + CONTROL_BYTES
        )
        return leaf_bytes + internal_bytes + extra_items * POINTER_BYTES

    def _total_keys(self) -> int:
        total = 0
        node = self._root
        while isinstance(node, _Internal):
            node = node.children[0]
        leaf: Optional[_Leaf] = node
        while leaf is not None:
            total += len(leaf.keys)
            leaf = leaf.next
        return total

    def depth(self) -> int:
        """Levels from root to leaf (1 = a single leaf)."""
        node, levels = self._root, 1
        while isinstance(node, _Internal):
            node = node.children[0]
            levels += 1
        return levels
