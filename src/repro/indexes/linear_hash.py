"""Linear Hashing [Lit80].

A split pointer sweeps across the bucket table; buckets split (and merge)
one at a time in a fixed order, so the directory grows without doubling.
Splits and merges are driven by a target *storage utilization* — and that
is precisely the behaviour the paper indicts: "Linear Hashing ... was much
slower because, trying to maintain a particular storage utilization ...
it did a significant amount of data reorganization even though the number
of elements was relatively constant" (Section 3.2.2).  This implementation
keeps the utilization-driven policy so that the Graph 2 query-mix
benchmark reproduces the thrashing.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional

from repro.indexes.base import CONTROL_BYTES, POINTER_BYTES, Index
from repro.instrument import (
    count_alloc,
    count_compare,
    count_hash,
    count_move,
    count_traverse,
)

DEFAULT_NODE_SIZE = 8

#: The storage utilization Litwin's controlled splitting maintains: split
#: whenever utilization rises above it, and undo a split whenever the
#: result would stay at or below it.  Holding a tight target is exactly
#: what the paper blames for the query-mix thrash: near the boundary an
#: insert forces a split and the next delete forces the merge back.
TARGET_UTILIZATION = 0.80

#: Backwards-compatible aliases (tests reference the bounds).
UPPER_UTILIZATION = TARGET_UTILIZATION
LOWER_UTILIZATION = TARGET_UTILIZATION

_INITIAL_BUCKETS = 4


class LinearHashIndex(Index):
    """Linear hashing with ``node_size``-item primary buckets.

    Items beyond a bucket's primary capacity conceptually live in
    single-item overflow cells chained off the bucket; the implementation
    keeps one Python list per bucket and charges a pointer traversal per
    overflow element probed, plus the overflow cells' storage.
    """

    kind = "linear_hash"

    def __init__(
        self,
        key_of: Callable[[Any], Any] = None,
        unique: bool = True,
        node_size: int = DEFAULT_NODE_SIZE,
    ) -> None:
        super().__init__(key_of, unique)
        if node_size < 1:
            raise ValueError("bucket capacity must be positive")
        self.node_size = node_size
        self._buckets: List[List[Any]] = [[] for __ in range(_INITIAL_BUCKETS)]
        count_alloc(_INITIAL_BUCKETS)
        self._level = 0
        self._split_ptr = 0

    # ------------------------------------------------------------------ #
    # addressing
    # ------------------------------------------------------------------ #

    def _hash(self, key: Any) -> int:
        count_hash()
        h = hash(key)
        h ^= (h >> 16) ^ (h >> 31)
        return h * 0x9E3779B1 & 0xFFFFFFFF

    def _address(self, h: int) -> int:
        base = _INITIAL_BUCKETS << self._level
        addr = h % base
        if addr < self._split_ptr:
            addr = h % (base << 1)
        return addr

    def _bucket_for(self, key: Any) -> List[Any]:
        count_traverse()
        return self._buckets[self._address(self._hash(key))]

    # ------------------------------------------------------------------ #
    # utilization-driven reorganization
    # ------------------------------------------------------------------ #

    def utilization(self) -> float:
        """Fraction of primary bucket slots in use."""
        capacity = len(self._buckets) * self.node_size
        return self._count / capacity if capacity else 0.0

    def _maybe_split(self) -> None:
        while (
            self.utilization() > TARGET_UTILIZATION
            and len(self._buckets) < (1 << 24)
        ):
            self._split_one()

    def _maybe_contract(self) -> None:
        # Undo splits whenever one fewer bucket still meets the target —
        # the mirror image of the split rule, so the structure hugs the
        # target utilization from both sides (and thrashes when the
        # element count sits at a boundary, as the paper observed).
        while (
            len(self._buckets) > _INITIAL_BUCKETS
            and self._count
            <= TARGET_UTILIZATION * (len(self._buckets) - 1) * self.node_size
        ):
            self._contract_one()

    def _split_one(self) -> None:
        """Split the bucket at the split pointer (classic Litwin step).

        Both result buckets are rebuilt into freshly allocated fixed-size
        frames (alloc x2, frame initialisation moves): in the paper's
        environment this rewrite is the dominant reorganisation cost that
        makes Linear Hashing "much slower" under a query mix.
        """
        base = _INITIAL_BUCKETS << self._level
        victim = self._buckets[self._split_ptr]
        self._buckets.append([])
        count_alloc(2)
        count_move(self.node_size)  # two frames' slot initialisation
        new_mod = base << 1
        keep: List[Any] = []
        moved: List[Any] = []
        for item in victim:
            if self._hash(self.key_of(item)) % new_mod == self._split_ptr:
                keep.append(item)
            else:
                moved.append(item)
        count_move(len(victim))
        self._buckets[self._split_ptr] = keep
        self._buckets[-1] = moved
        self._split_ptr += 1
        if self._split_ptr == base:
            self._level += 1
            self._split_ptr = 0

    def _contract_one(self) -> None:
        """Undo the most recent split (merge the last bucket back).

        The merged bucket is rewritten into a fresh frame, mirroring the
        split cost.
        """
        if self._split_ptr == 0:
            if self._level == 0:
                return
            self._level -= 1
            self._split_ptr = _INITIAL_BUCKETS << self._level
        self._split_ptr -= 1
        moved = self._buckets.pop()
        count_alloc()
        count_move(self.node_size + len(moved))
        self._buckets[self._split_ptr].extend(moved)

    # ------------------------------------------------------------------ #
    # Index API
    # ------------------------------------------------------------------ #

    def insert(self, item: Any) -> None:
        key = self.key_of(item)
        bucket = self._bucket_for(key)
        if self.unique:
            for i, existing in enumerate(bucket):
                if i >= self.node_size:
                    count_traverse()
                count_compare()
                if self.key_of(existing) == key:
                    from repro.errors import DuplicateKeyError

                    raise DuplicateKeyError(
                        f"linear_hash: duplicate key {key!r}"
                    )
        count_move(1)
        bucket.append(item)
        self._count += 1
        self._maybe_split()

    def delete(self, item: Any) -> None:
        key = self.key_of(item)
        bucket = self._bucket_for(key)
        for i, existing in enumerate(bucket):
            if i >= self.node_size:
                count_traverse()
            count_compare()
            if self.key_of(existing) == key and existing == item:
                count_move(len(bucket) - i)
                del bucket[i]
                self._count -= 1
                self._maybe_contract()
                return
        raise self._missing(key)

    def search(self, key: Any) -> Optional[Any]:
        bucket = self._bucket_for(key)
        for i, item in enumerate(bucket):
            if i >= self.node_size:
                count_traverse()
            count_compare()
            if self.key_of(item) == key:
                return item
        return None

    def search_all(self, key: Any) -> List[Any]:
        bucket = self._bucket_for(key)
        result = []
        for i, item in enumerate(bucket):
            if i >= self.node_size:
                count_traverse()
            count_compare()
            if self.key_of(item) == key:
                result.append(item)
        return result

    def scan(self) -> Iterator[Any]:
        for bucket in self._buckets:
            count_traverse()
            yield from bucket

    def storage_bytes(self) -> int:
        total = 0
        for bucket in self._buckets:
            total += self.node_size * POINTER_BYTES + CONTROL_BYTES
            overflow = max(0, len(bucket) - self.node_size)
            total += overflow * 2 * POINTER_BYTES
        return total

    @property
    def bucket_count(self) -> int:
        """Current number of primary buckets."""
        return len(self._buckets)
