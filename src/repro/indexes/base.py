"""Common interface for all main-memory index structures.

Design decisions shared by every index (paper Section 2.2):

* Indexes store *items* — in the MM-DBMS these are tuple pointers
  (:class:`repro.storage.tuples.TupleRef`) — and never the key values
  themselves.  The key is extracted on demand through ``key_of``, the
  function handed to the constructor.  A single pointer therefore gives the
  index access both to the key and to the tuple.
* Key comparisons, data movement, hash calls, and pointer traversals are
  reported through :mod:`repro.instrument` so that benchmarks can use the
  paper's own machine-independent cost metrics.
* Every index can report its storage consumption in bytes
  (:meth:`Index.storage_bytes`) using era-appropriate 4-byte pointers, for
  the Section 3.2.2 storage-cost comparison.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.errors import DuplicateKeyError, KeyNotFoundError
from repro.instrument import count_compare
from repro.obs import runtime as obs_runtime

#: Size of one pointer (to a tuple or an index node) in bytes.  The VAX of
#: the paper, like the paper's own accounting ("4 bytes of pointer overhead
#: for each data item"), used 4-byte pointers.
POINTER_BYTES = 4

#: Size of per-node control information (counts, balance factors, depths).
CONTROL_BYTES = 4


def identity_key(item: Any) -> Any:
    """Key extractor for benchmarks that index plain keys directly."""
    return item


def compare_keys(a: Any, b: Any) -> int:
    """Three-way comparison, counted as one data comparison."""
    count_compare()
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


class Index(ABC):
    """Abstract base class for every index structure.

    Parameters
    ----------
    key_of:
        Function mapping a stored item to its key.  Defaults to identity,
        which is how the standalone index benchmarks run (30,000 unique
        keys inserted directly, Section 3.2.2).
    unique:
        When true (the configuration used in the paper's index tests —
        "the indices were configured to run as unique indices"), inserting
        a second item with an existing key raises
        :class:`~repro.errors.DuplicateKeyError`.
    """

    #: Human-readable structure name, set by each subclass.
    kind: str = "abstract"
    #: Whether the structure supports ordered scans and range queries.
    ordered: bool = False

    def __init__(
        self,
        key_of: Callable[[Any], Any] = None,
        unique: bool = True,
    ) -> None:
        self.key_of = key_of if key_of is not None else identity_key
        self.unique = unique
        self._count = 0

    # ------------------------------------------------------------------ #
    # core operations
    # ------------------------------------------------------------------ #

    @abstractmethod
    def insert(self, item: Any) -> None:
        """Add ``item`` under key ``key_of(item)``.

        Raises :class:`DuplicateKeyError` for an existing key when the
        index is unique.
        """

    @abstractmethod
    def delete(self, item: Any) -> None:
        """Remove ``item``; raises :class:`KeyNotFoundError` if absent.

        For non-unique indexes the specific item (pointer) is removed, not
        merely any item with a matching key.
        """

    @abstractmethod
    def search(self, key: Any) -> Optional[Any]:
        """Return one item whose key equals ``key``, or None."""

    @abstractmethod
    def search_all(self, key: Any) -> List[Any]:
        """Return every item whose key equals ``key`` (possibly empty)."""

    @abstractmethod
    def scan(self) -> Iterator[Any]:
        """Yield every item.

        Order-preserving indexes yield in ascending key order; hash
        indexes yield in arbitrary order.
        """

    @abstractmethod
    def storage_bytes(self) -> int:
        """Bytes of memory the structure occupies (pointers + control)."""

    # ------------------------------------------------------------------ #
    # conveniences shared by all structures
    # ------------------------------------------------------------------ #

    def probe_all(self, key: Any) -> List[Any]:
        """:meth:`search_all`, attributed to the active observability.

        The executor's index-access paths call this instead of
        ``search_all`` directly so that, when observability is active, the
        probe shows up as a child span of the operator that issued it (with
        its own counter roll-up and result cardinality) and bumps the
        ``index_probes_total{kind}`` metric.  With observability off this
        is a single global load plus the plain ``search_all`` call — no
        extra operation counts either way.
        """
        obs = obs_runtime.active()
        if obs is None:
            return self.search_all(key)
        with obs.span(
            f"IndexProbe[{self.kind}]", "index", index_kind=self.kind
        ) as probe:
            items = self.search_all(key)
            if probe is not None:
                probe.rows_out = len(items)
        obs.metric_inc("index_probes_total", kind=self.kind)
        return items

    def __len__(self) -> int:
        return self._count

    def __contains__(self, key: Any) -> bool:
        return self.search(key) is not None

    def __iter__(self) -> Iterator[Any]:
        return self.scan()

    def storage_factor(self) -> float:
        """Storage cost relative to the data alone (pointer per item).

        The paper expresses storage results "as a ratio of their storage
        cost to the array storage cost"; an array of n pointers is exactly
        ``n * POINTER_BYTES`` bytes, so this factor is directly comparable
        to the paper's numbers (AVL = 3, Chained Bucket Hash = 2.3, ...).
        """
        if self._count == 0:
            return 0.0
        return self.storage_bytes() / (self._count * POINTER_BYTES)

    def _check_duplicate(self, key: Any) -> None:
        """Raise if inserting ``key`` would violate uniqueness."""
        if self.unique and self.search(key) is not None:
            raise DuplicateKeyError(f"{self.kind}: duplicate key {key!r}")

    def _missing(self, key: Any) -> KeyNotFoundError:
        return KeyNotFoundError(f"{self.kind}: key {key!r} not found")


class OrderedIndex(Index):
    """Base class for order-preserving structures (solid-line family).

    Adds range queries and directional scans, the operations that
    distinguish the order-preserving structures from the hash family in
    the paper's study (hash structures were "excluded" from range-query
    tests).
    """

    ordered = True

    @abstractmethod
    def scan_from(self, key: Any) -> Iterator[Any]:
        """Yield items with key >= ``key`` in ascending order."""

    def range_scan(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Any]:
        """Yield items whose keys fall in [low, high] (None = unbounded)."""
        source = self.scan() if low is None else self.scan_from(low)
        for item in source:
            key = self.key_of(item)
            if low is not None and not include_low:
                count_compare()
                if key == low:
                    continue
            if high is not None:
                cmp = compare_keys(key, high)
                if cmp > 0 or (cmp == 0 and not include_high):
                    return
            yield item

    def min_item(self) -> Optional[Any]:
        """The item with the smallest key, or None when empty."""
        for item in self.scan():
            return item
        return None

    def max_item(self) -> Optional[Any]:
        """The item with the largest key, or None when empty."""
        last = None
        for item in self.scan():
            last = item
        return last

    def items_with_keys(self) -> Iterator[Tuple[Any, Any]]:
        """Yield ``(key, item)`` pairs in ascending key order."""
        for item in self.scan():
            yield self.key_of(item), item
