"""Log-shipped warm replicas with failover (DESIGN.md section 3.14).

The paper's recovery design (Section 5) keeps a disk copy current by
propagating a change-accumulation log.  This package points the same
log at a second *memory* copy: a :class:`ReplicaApplier` holds warm
partition images that a :class:`LogShipper` keeps current by shipping
checksummed record batches, and a :class:`FailoverCoordinator` turns
that warm copy into the database on primary failure (promotion) or
into a partition donor when a partial restart quarantines damage
(online heal).

Zero overhead when off: nothing here is imported, and the log device's
sink list stays empty, until ``db.configure_replication(...)`` runs.
"""

from repro.replication.batch import (
    ShippedBatch,
    corrupt_bytes,
    decode_batch,
    encode_batch,
)
from repro.replication.channel import (
    InlineChannel,
    ProcessChannel,
    process_channel_available,
)
from repro.replication.config import (
    CHANNEL_MODES,
    SHIP_TRANSPORTS,
    ReplicationConfig,
)
from repro.replication.coordinator import (
    FailoverCoordinator,
    HealStats,
    PromotionStats,
)
from repro.replication.replica import ReplicaApplier
from repro.replication.shipper import LogShipper

__all__ = [
    "CHANNEL_MODES",
    "SHIP_TRANSPORTS",
    "FailoverCoordinator",
    "HealStats",
    "InlineChannel",
    "LogShipper",
    "ProcessChannel",
    "PromotionStats",
    "ReplicaApplier",
    "ReplicationConfig",
    "ShippedBatch",
    "corrupt_bytes",
    "decode_batch",
    "encode_batch",
    "process_channel_available",
]
