"""The warm replica: a catalog copy kept current by applied log records.

A :class:`ReplicaApplier` holds partition images only — "warm" means
the data is in memory, decoded and merge-current, while indexes are
deliberately *not* maintained: exactly like the paper's restart path,
indexes rebuild from the partitions at promotion time.  That keeps
steady-state replication cost proportional to the update stream (one
:func:`~repro.recovery.log_device.apply_record` per shipped record)
and zero for reads.

Exactly-once apply: the applier tracks an applied-LSN watermark and
skips any record at or below it, so a batch re-shipped after a lost
acknowledgement deduplicates instead of double-applying.  All apply
work runs inside an isolated
:func:`~repro.instrument.counters_scope`, charging nothing to the
primary's Section 3.1 operation totals.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    CorruptImageError,
    ReplicationEpochError,
    ReplicationError,
)
from repro.instrument import counters_scope
from repro.recovery.framing import frame, unframe
from repro.recovery.log_device import apply_record
from repro.replication.batch import decode_batch
from repro.storage.partition import Partition, PartitionConfig

PartitionKey = Tuple[str, int]


class ReplicaApplier:
    """Applies shipped batches to a warm set of partition images."""

    def __init__(
        self,
        configs: Optional[Dict[str, Tuple[int, int]]] = None,
        epoch: int = 1,
    ) -> None:
        #: Per-relation (slot_capacity, heap_capacity) for partitions the
        #: replica must create itself (an insert into a partition born
        #: after bootstrap).
        self.configs: Dict[str, Tuple[int, int]] = dict(configs or {})
        self.epoch = int(epoch)
        #: Warm partition images, in arrival order — bootstrap order
        #: first (the primary disk's key order), then creation order.
        #: Promotion adopts them in this order, matching the order a
        #: primary restart would reload from disk.
        self.partitions: Dict[PartitionKey, Partition] = {}
        #: Exactly-once watermark: the highest LSN applied.
        self.applied_lsn = 0
        self.records_applied = 0
        self.records_skipped = 0
        self.batches_applied = 0
        self.batches_rejected = 0

    @classmethod
    def from_bootstrap(cls, payload: Dict[str, Any]) -> "ReplicaApplier":
        """Build an applier from a coordinator bootstrap payload."""
        applier = cls(payload.get("configs"), payload.get("epoch", 1))
        for key, framed in payload.get("images", {}).items():
            applier.load_image(key[0], key[1], framed)
        return applier

    # ------------------------------------------------------------------ #
    # bootstrap / registration
    # ------------------------------------------------------------------ #

    def register_relation(self, name: str, config: Tuple[int, int]) -> None:
        """Learn a relation's partition sizing (new DDL on the primary)."""
        self.configs[name] = tuple(config)

    def load_image(self, relation: str, partition_id: int, framed: bytes) -> None:
        """Install one CRC32-framed partition image (bootstrap path)."""
        payload = unframe(framed, context=f"{relation}[{partition_id}] image")
        self.partitions[(relation, partition_id)] = Partition.from_bytes(
            payload
        )

    def _partition_for(self, record) -> Partition:
        key = (record.relation, record.partition_id)
        partition = self.partitions.get(key)
        if partition is None:
            # A partition born after bootstrap: its first shipped record
            # is an insert into a fresh, empty image — the same starting
            # point the primary's base-image write established on disk.
            sizing = self.configs.get(record.relation)
            config = PartitionConfig(*sizing) if sizing else PartitionConfig()
            partition = Partition(record.partition_id, config)
            self.partitions[key] = partition
        return partition

    # ------------------------------------------------------------------ #
    # apply
    # ------------------------------------------------------------------ #

    def apply_batch(self, data: bytes) -> Dict[str, Any]:
        """Decode, verify, and apply one shipped batch; returns the ack.

        Raises :class:`~repro.errors.CorruptBatchError` when the frame
        or a record checksum fails (nothing applies), and
        :class:`~repro.errors.ReplicationEpochError` for a batch from a
        stale epoch (fencing).  Records at or below the applied-LSN
        watermark are skipped — exactly-once under re-shipping.
        """
        try:
            batch = decode_batch(data)
        except ReplicationError:
            self.batches_rejected += 1
            raise
        if batch.epoch < self.epoch:
            self.batches_rejected += 1
            raise ReplicationEpochError(
                f"batch seq={batch.seq} carries stale epoch "
                f"{batch.epoch} (replica epoch is {self.epoch})"
            )
        self.epoch = batch.epoch
        applied = 0
        skipped = 0
        # Replica work must not perturb the primary's operation totals:
        # apply_record charges count_move per replayed mutation, so the
        # whole application runs in an isolated counter scope.
        with counters_scope():
            for record in sorted(batch.records, key=lambda r: r.lsn):
                if record.lsn <= self.applied_lsn:
                    skipped += 1
                    continue
                apply_record(self._partition_for(record), record)
                self.applied_lsn = record.lsn
                applied += 1
        self.records_applied += applied
        self.records_skipped += skipped
        self.batches_applied += 1
        return {
            "ok": True,
            "epoch": self.epoch,
            "seq": batch.seq,
            "applied": applied,
            "skipped": skipped,
            "watermark": self.applied_lsn,
        }

    # ------------------------------------------------------------------ #
    # images out (promotion + heal)
    # ------------------------------------------------------------------ #

    def image(self, relation: str, partition_id: int) -> bytes:
        """One partition's current image, CRC32-framed for the hop back."""
        key = (relation, partition_id)
        partition = self.partitions.get(key)
        if partition is None:
            raise CorruptImageError(
                f"replica holds no image for {relation}[{partition_id}]"
            )
        with counters_scope():
            payload = partition.to_bytes()
        return frame(payload)

    def snapshot(self) -> List[Tuple[PartitionKey, bytes]]:
        """Every partition image, framed, in adoption order."""
        with counters_scope():
            return [
                (key, frame(partition.to_bytes()))
                for key, partition in self.partitions.items()
            ]

    # ------------------------------------------------------------------ #
    # channel dispatch
    # ------------------------------------------------------------------ #

    def handle(self, op: str, payload: Any) -> Any:
        """The channel's request dispatcher."""
        if op == "apply":
            return self.apply_batch(payload)
        if op == "image":
            return self.image(payload[0], payload[1])
        if op == "snapshot":
            return self.snapshot()
        if op == "register":
            self.register_relation(payload[0], payload[1])
            return True
        if op == "set_epoch":
            self.epoch = int(payload)
            return self.epoch
        if op == "state":
            return self.state()
        if op == "ping":
            return "pong"
        raise ReplicationError(f"unknown replica op {op!r}")

    def state(self) -> Dict[str, Any]:
        """Replica-side counters, for ``db.replication_state()``."""
        return {
            "epoch": self.epoch,
            "watermark": self.applied_lsn,
            "partitions": len(self.partitions),
            "records_applied": self.records_applied,
            "records_skipped": self.records_skipped,
            "batches_applied": self.batches_applied,
            "batches_rejected": self.batches_rejected,
        }
