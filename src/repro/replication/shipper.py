"""The log shipper: tails the accumulation log, ships checksummed batches.

A :class:`LogShipper` is registered as a sink on the primary's
:class:`~repro.recovery.log_device.LogDevice` — every record
``absorb()`` moves into the change-accumulation log is also enqueued
here.  The outbox drains in LSN order as CRC32-framed batches through
the replication channel, with acknowledged epochs/sequence numbers and
a bounded apply-lag watermark: once the outbox exceeds
``max_lag_records`` the next enqueue auto-ships (best effort — a
replica outage must never stall the primary's commit path).

Every shipping hop is fault-aware: the ``repl.ship`` and ``repl.apply``
points both fire *here*, parent-side, before the channel request — the
same discipline the morsel scheduler uses for ``pool.worker`` — so the
seeded RNG stream lives in one process and chaos runs replay exactly.
Failed hops retry up to ``retry_attempts`` times with the configured
:class:`~repro.fault.BackoffPolicy` slept between attempts.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import (
    CorruptBatchError,
    InjectedFaultError,
    ReplicationError,
)
from repro.fault import runtime as fault_runtime
from repro.fault.backoff import NO_BACKOFF
from repro.obs import runtime as obs_runtime
from repro.replication.batch import ShippedBatch, corrupt_bytes, encode_batch
from repro.replication.config import ReplicationConfig


class LogShipper:
    """Ships accumulated log records to the replica, in order, with acks."""

    def __init__(
        self,
        channel,
        config: Optional[ReplicationConfig] = None,
        epoch: int = 1,
    ) -> None:
        self.channel = channel
        self.config = config or ReplicationConfig()
        self.epoch = int(epoch)
        #: Unacknowledged records, LSN order (the apply lag).
        self.outbox: List[Any] = []
        #: Highest LSN the replica has acknowledged applying.
        self.acked_lsn = 0
        self.seq = 0
        self.batches_shipped = 0
        self.records_shipped = 0
        self.ship_retries = 0
        self.ship_errors = 0
        self.rejected_batches = 0
        self.backoff_waited = 0.0

    # ------------------------------------------------------------------ #
    # the sink side
    # ------------------------------------------------------------------ #

    @property
    def lag_records(self) -> int:
        """How many records sit shipped-but-unacknowledged or unshipped."""
        return len(self.outbox)

    def enqueue(self, records) -> None:
        """Accept newly absorbed records; auto-ship past the lag bound.

        This runs on the primary's commit path (via the LogDevice sink),
        so the auto-ship is strictly best effort: a failing replica
        leaves the records queued and the primary unharmed.
        """
        self.outbox.extend(records)
        self._publish_lag()
        if len(self.outbox) > self.config.max_lag_records:
            self.ship(best_effort=True)

    # ------------------------------------------------------------------ #
    # shipping
    # ------------------------------------------------------------------ #

    def ship(self, best_effort: bool = False) -> int:
        """Drain the outbox as batches; returns records acknowledged.

        ``best_effort=True`` (the commit-path auto-ship) swallows a
        fully exhausted retry budget and leaves the remainder queued;
        the explicit :meth:`flush` raises instead.
        """
        shipped = 0
        while self.outbox:
            batch_records = self.outbox[: self.config.batch_records]
            if not self._ship_one(batch_records, best_effort):
                break
            shipped += len(batch_records)
            del self.outbox[: len(batch_records)]
            self.acked_lsn = max(
                self.acked_lsn, batch_records[-1].lsn
            )
        self._publish_lag()
        return shipped

    def flush(self) -> int:
        """Ship everything queued; raises if the replica cannot take it."""
        shipped = self.ship(best_effort=False)
        if self.outbox:
            raise ReplicationError(
                f"replication flush left {len(self.outbox)} records "
                f"unacknowledged after {self.config.retry_attempts} attempts"
            )
        return shipped

    def _ship_one(self, records, best_effort: bool) -> bool:
        """One batch through the channel, with retries; True on ack."""
        self.seq += 1
        batch = ShippedBatch(
            epoch=self.epoch, seq=self.seq, records=tuple(records)
        )
        data = encode_batch(batch)
        backoff = self.config.backoff or NO_BACKOFF
        last_error: Optional[Exception] = None
        for attempt in range(self.config.retry_attempts):
            if attempt:
                self.ship_retries += 1
                self.backoff_waited += backoff.sleep(attempt - 1)
            wire = data
            try:
                # Both replication fault points draw their seeded
                # decisions here, parent-side, never in the replica.
                action = fault_runtime.fire(
                    "repl.ship", seq=batch.seq, records=len(records)
                )
                if action == "corrupt":
                    wire = corrupt_bytes(data)
                fault_runtime.fire("repl.apply", seq=batch.seq)
                ack = self.channel.request("apply", wire)
            except InjectedFaultError as exc:
                self.ship_errors += 1
                last_error = exc
                continue
            except CorruptBatchError as exc:
                # The replica rejected the frame whole — nothing
                # applied; re-encode is pointless (the corruption was
                # injected on the wire), resend the good bytes.
                self.rejected_batches += 1
                self.ship_errors += 1
                last_error = exc
                continue
            except ReplicationError as exc:
                self.ship_errors += 1
                last_error = exc
                continue
            self.batches_shipped += 1
            self.records_shipped += len(records)
            self._observe_ack(ack)
            return True
        if best_effort:
            return False
        if last_error is not None:
            raise last_error
        return False

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #

    def _observe_ack(self, ack) -> None:
        if isinstance(ack, dict):
            self.epoch = max(self.epoch, ack.get("epoch", self.epoch))

    def _publish_lag(self) -> None:
        obs = obs_runtime.active()
        if obs is not None and obs.metrics is not None:
            obs.metrics.gauge(
                "replication_lag_records",
                "Log records not yet acknowledged by the replica",
            ).set(len(self.outbox))

    def state(self) -> Dict[str, Any]:
        """Shipper-side counters for ``db.replication_state()``."""
        return {
            "epoch": self.epoch,
            "lag_records": len(self.outbox),
            "acked_lsn": self.acked_lsn,
            "batches_shipped": self.batches_shipped,
            "records_shipped": self.records_shipped,
            "ship_retries": self.ship_retries,
            "ship_errors": self.ship_errors,
            "rejected_batches": self.rejected_batches,
        }
