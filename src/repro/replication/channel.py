"""Replication channels: how requests reach the replica applier.

Two channel shapes implement one request contract —
``request(op, payload) -> result``:

* :class:`InlineChannel` holds the applier in-process, the same way
  :class:`~repro.recovery.disk.SimulatedDisk` models the disk: fully
  deterministic, fork-free, and the default.  With the ``shm``
  transport it still routes large apply payloads through a real
  shared-memory segment round-trip, so the blob path is exercised even
  inline.
* :class:`ProcessChannel` forks a worker process that owns the applier
  and serves requests over a pipe — a genuinely separate address space,
  the shape a real warm standby has.  A dead or wedged worker surfaces
  as :class:`~repro.errors.ReplicaUnavailableError`.

Channels are pure transport: no fault point fires here.  All seeded
fault decisions (``repl.ship``, ``repl.apply``) are drawn parent-side
in the :class:`~repro.replication.shipper.LogShipper`, keeping the
injector's RNG stream in one process — the same discipline the morsel
scheduler uses for ``pool.worker``.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, Optional

from repro.errors import ReplicationError, ReplicaUnavailableError
from repro.query.parallel import shm
from repro.replication.replica import ReplicaApplier


def process_channel_available() -> bool:
    """Process channels need the fork start method (worker inherits code)."""
    return "fork" in multiprocessing.get_all_start_methods()


def _maybe_via_shm(payload: Any, use_shm: bool, stats: Dict[str, int]) -> Any:
    """Route a large bytes payload through a shared-memory segment.

    Returns either the original payload or a blob descriptor; the
    caller is responsible for unlinking the segment after the request
    completes (the descriptor's name is element 1).
    """
    if (
        use_shm
        and isinstance(payload, bytes)
        and len(payload) >= shm.MIN_BLOB_BYTES
        and shm.available()
    ):
        descriptor = shm.write_blob(payload)
        stats["shipped_via_shm"] = stats.get("shipped_via_shm", 0) + 1
        return descriptor
    return payload


def _resolve_payload(payload: Any) -> Any:
    """Blob descriptors decode back to bytes on the replica side."""
    if shm.is_blob(payload):
        return shm.read_blob(payload)
    return payload


class InlineChannel:
    """The applier lives in this process; requests are direct calls."""

    def __init__(
        self, applier: ReplicaApplier, use_shm: bool = False
    ) -> None:
        self.applier = applier
        self.use_shm = use_shm
        self.stats: Dict[str, int] = {"requests": 0}
        self.closed = False

    def request(self, op: str, payload: Any = None) -> Any:
        if self.closed:
            raise ReplicaUnavailableError(
                "replication channel is closed"
            )
        self.stats["requests"] += 1
        wire = payload
        if op == "apply":
            wire = _maybe_via_shm(payload, self.use_shm, self.stats)
        try:
            return self.applier.handle(op, _resolve_payload(wire))
        finally:
            if shm.is_blob(wire):
                shm.arena().unlink(wire[1])

    def close(self) -> None:
        self.closed = True


def _replica_main(conn, bootstrap: Dict[str, Any]) -> None:
    """The forked replica process: serve requests until ``stop``."""
    applier = ReplicaApplier.from_bootstrap(bootstrap)
    while True:
        try:
            op, payload = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - parent died
            break
        if op == "stop":
            conn.send(("ok", True))
            break
        try:
            result = applier.handle(op, _resolve_payload(payload))
            conn.send(("ok", result))
        except Exception as exc:  # noqa: BLE001 - forwarded to the parent
            try:
                conn.send(("error", exc))
            except Exception:  # pragma: no cover - unpicklable error
                conn.send(
                    ("error", ReplicationError(f"replica failure: {exc!r}"))
                )
    conn.close()


class ProcessChannel:
    """The applier lives in a forked worker; requests cross a pipe."""

    def __init__(
        self, bootstrap: Dict[str, Any], use_shm: bool = False
    ) -> None:
        if not process_channel_available():
            raise ReplicationError(
                "process replication channel needs the fork start method; "
                "use channel='inline' on this platform"
            )
        self.use_shm = use_shm
        self.stats: Dict[str, int] = {"requests": 0}
        self.closed = False
        ctx = multiprocessing.get_context("fork")
        self._conn, child_conn = ctx.Pipe()
        self._proc = ctx.Process(
            target=_replica_main,
            args=(child_conn, bootstrap),
            daemon=True,
        )
        self._proc.start()
        child_conn.close()

    def request(self, op: str, payload: Any = None) -> Any:
        if self.closed or not self._proc.is_alive():
            raise ReplicaUnavailableError(
                "replica process is not running"
            )
        self.stats["requests"] += 1
        wire = payload
        if op == "apply":
            wire = _maybe_via_shm(payload, self.use_shm, self.stats)
        try:
            self._conn.send((op, wire))
            status, result = self._conn.recv()
        except (EOFError, OSError, BrokenPipeError) as exc:
            raise ReplicaUnavailableError(
                f"replica process dropped the channel: {exc!r}"
            ) from exc
        finally:
            if shm.is_blob(wire):
                shm.arena().unlink(wire[1])
        if status == "error":
            raise result
        return result

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        try:
            self._conn.send(("stop", None))
            self._conn.recv()
        except (EOFError, OSError, BrokenPipeError):
            pass
        self._conn.close()
        self._proc.join(timeout=5.0)
        if self._proc.is_alive():  # pragma: no cover - wedged replica
            self._proc.terminate()
            self._proc.join(timeout=5.0)


def make_channel(
    mode: str,
    applier: Optional[ReplicaApplier] = None,
    bootstrap: Optional[Dict[str, Any]] = None,
    use_shm: bool = False,
):
    """Channel factory keyed by :data:`~repro.replication.config.CHANNEL_MODES`."""
    if mode == "process":
        return ProcessChannel(bootstrap or {}, use_shm=use_shm)
    return InlineChannel(
        applier
        if applier is not None
        else ReplicaApplier.from_bootstrap(bootstrap or {}),
        use_shm=use_shm,
    )
