"""The replication wire format: checksummed record batches.

A shipped batch reuses the recovery stack's integrity machinery end to
end: each :class:`~repro.recovery.log.LogRecord` already carries its
append-time content checksum, and the pickled batch is wrapped in the
same CRC32 frame (:mod:`repro.recovery.framing`) the disk copy uses for
partition images.  Damage anywhere on the hop — a flipped byte in
flight, a truncated send — surfaces as a typed
:class:`~repro.errors.CorruptBatchError` at the replica's unframe, and
the whole batch is rejected before a single record applies.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Tuple

from repro.errors import CorruptBatchError, CorruptImageError
from repro.recovery.framing import frame, unframe
from repro.recovery.log import LogRecord


@dataclass(frozen=True)
class ShippedBatch:
    """One shipment: an epoch-stamped, LSN-ordered run of log records.

    ``epoch`` is the replication epoch the shipper held when encoding —
    the replica fences batches from a demoted primary by rejecting any
    epoch older than its own.  ``seq`` numbers shipments for the ack
    bookkeeping and the fault-injection context.
    """

    epoch: int
    seq: int
    records: Tuple[LogRecord, ...]

    @property
    def last_lsn(self) -> int:
        return self.records[-1].lsn if self.records else 0


def encode_batch(batch: ShippedBatch) -> bytes:
    """Serialise and CRC32-frame one batch for the shipping hop."""
    payload = pickle.dumps(
        (batch.epoch, batch.seq, tuple(batch.records)),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return frame(payload)


def decode_batch(data: bytes) -> ShippedBatch:
    """Validate the frame and reconstruct the batch.

    Any integrity failure — torn frame, checksum mismatch, bytes that
    do not unpickle into a batch — raises
    :class:`~repro.errors.CorruptBatchError`; nothing half-decodes.
    """
    try:
        payload = unframe(data, context="shipped batch")
    except CorruptImageError as exc:
        raise CorruptBatchError(str(exc)) from exc
    try:
        epoch, seq, records = pickle.loads(payload)
        records = tuple(records)
    except Exception as exc:
        raise CorruptBatchError(
            f"shipped batch does not decode: {exc!r}"
        ) from exc
    return ShippedBatch(epoch=epoch, seq=seq, records=records)


def corrupt_bytes(data: bytes) -> bytes:
    """Flip the last byte — the ``repl.ship`` fault's ``corrupt`` action.

    The last byte sits in the payload (never the header), so the frame
    parses but the CRC32 rejects it: exactly the failure mode the
    checksummed wire exists to catch.
    """
    if not data:
        return data
    damaged = bytearray(data)
    damaged[-1] ^= 0xFF
    return bytes(damaged)
