"""Replication configuration (DESIGN.md section 3.14).

``db.configure_replication`` accepts a :class:`ReplicationConfig` (or
its fields as keywords) and establishes a warm replica fed by shipping
the change-accumulation log.  The ``REPRO_REPLICATION`` environment
variable selects a channel mode for every durable database in the
process (the CI failover lane runs the whole suite replicated this
way); explicit ``configure_replication`` calls still override.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigError
from repro.fault.backoff import BackoffPolicy

#: Where the replica applier runs.  ``inline`` models the replica
#: in-process (the same way :class:`~repro.recovery.disk.SimulatedDisk`
#: models a disk) — deterministic, fork-free, the default; ``process``
#: runs it in a forked worker process connected by a pipe.
CHANNEL_MODES = ("inline", "process")

#: How batch bytes reach the replica.  ``pickle`` sends them through
#: the channel directly; ``shm`` moves any batch at least
#: ``repro.query.parallel.shm.MIN_BLOB_BYTES`` long through a named
#: shared-memory segment (the PR 8 blob path) and ships only the
#: descriptor.
SHIP_TRANSPORTS = ("pickle", "shm")

#: Bounded apply lag: once this many records sit unacknowledged in the
#: shipper's outbox, the next enqueue triggers an automatic ship.
DEFAULT_MAX_LAG_RECORDS = 512

#: Records per shipped batch.
DEFAULT_BATCH_RECORDS = 256

#: Attempts per shipping hop before the hop is abandoned (best-effort
#: enqueue) or raised (explicit flush/promotion).
DEFAULT_SHIP_ATTEMPTS = 3


@dataclass(frozen=True)
class ReplicationConfig:
    """How the warm replica is fed and when failover triggers.

    ``max_lag_records`` is the bounded apply-lag watermark; crossing it
    auto-ships.  ``retry_attempts`` bounds each shipping hop, with
    ``backoff`` (a :class:`~repro.fault.BackoffPolicy`; None means
    retry immediately) slept between attempts.  ``heartbeat_timeout``
    > 0 arms :meth:`FailoverCoordinator.check`: a primary that has not
    called ``db.replication_heartbeat()`` within the window is treated
    as failed and the replica promotes.
    """

    channel: str = "inline"
    transport: str = "pickle"
    max_lag_records: int = DEFAULT_MAX_LAG_RECORDS
    batch_records: int = DEFAULT_BATCH_RECORDS
    retry_attempts: int = DEFAULT_SHIP_ATTEMPTS
    backoff: Optional[BackoffPolicy] = None
    heartbeat_timeout: float = 0.0

    def __post_init__(self) -> None:
        if self.channel not in CHANNEL_MODES:
            raise ConfigError(
                f"unknown replication channel {self.channel!r}; "
                f"choose one of {CHANNEL_MODES}"
            )
        if self.transport not in SHIP_TRANSPORTS:
            raise ConfigError(
                f"unknown replication transport {self.transport!r}; "
                f"choose one of {SHIP_TRANSPORTS}"
            )
        if not isinstance(self.max_lag_records, int) or isinstance(
            self.max_lag_records, bool
        ) or self.max_lag_records < 1:
            raise ConfigError(
                f"max_lag_records must be a positive integer, "
                f"got {self.max_lag_records!r}"
            )
        if not isinstance(self.batch_records, int) or isinstance(
            self.batch_records, bool
        ) or self.batch_records < 1:
            raise ConfigError(
                f"batch_records must be a positive integer, "
                f"got {self.batch_records!r}"
            )
        if not isinstance(self.retry_attempts, int) or isinstance(
            self.retry_attempts, bool
        ) or self.retry_attempts < 1:
            raise ConfigError(
                f"retry_attempts must be a positive integer, "
                f"got {self.retry_attempts!r}"
            )
        if self.backoff is not None and not isinstance(
            self.backoff, BackoffPolicy
        ):
            raise ConfigError(
                f"backoff must be a BackoffPolicy or None, "
                f"got {self.backoff!r}"
            )
        if (
            not isinstance(self.heartbeat_timeout, (int, float))
            or isinstance(self.heartbeat_timeout, bool)
            or self.heartbeat_timeout < 0
        ):
            raise ConfigError(
                f"heartbeat_timeout must be a non-negative number, "
                f"got {self.heartbeat_timeout!r}"
            )
