"""Failover: establish a warm replica, promote it, heal from it.

The :class:`FailoverCoordinator` owns one primary's replication state:

* :meth:`establish` bootstraps the replica from the disk copy (images
  plus the unpropagated accumulation-log suffix) and taps the log
  device so every subsequently absorbed record ships;
* :meth:`promote` is failover: replay the unacknowledged log suffix,
  swap the replica's partition images into the catalog (bumping every
  ``Relation.version`` so plan/result caches invalidate), rebuild
  indexes, re-point the morsel scheduler's catalog registry, and fence
  the old epoch;
* :meth:`heal_quarantined` is online partition repair: a partition a
  partial restart condemned is fetched from the replica — whose image
  already reflects the full shipped log — and atomically swapped in,
  repairing the disk copy too, with no full restart.

Promotion triggers three ways: explicitly (``db.demote()``), by
heartbeat timeout (:meth:`check`), or by observed worker kills
(:meth:`maybe_promote_on_faults` scanning the injector's
``pool.worker`` events — the chaos lane's kill-primary signal).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import (
    CorruptImageError,
    RecoveryError,
    ReplicationError,
    TornWriteError,
)
from repro.fault import runtime as fault_runtime
from repro.fault.backoff import NO_BACKOFF
from repro.obs import runtime as obs_runtime
from repro.recovery.framing import frame, unframe
from repro.replication.channel import InlineChannel, ProcessChannel
from repro.replication.config import ReplicationConfig
from repro.replication.replica import ReplicaApplier
from repro.replication.shipper import LogShipper
from repro.storage.partition import Partition

PartitionKey = Tuple[str, int]


def _metric(name: str, amount: int = 1, **labels) -> None:
    if amount:
        obs = obs_runtime.active()
        if obs is not None:
            obs.metric_inc(name, amount, **labels)


@dataclass
class PromotionStats:
    """What one failover did."""

    reason: str = ""
    epoch: int = 0
    partitions_restored: int = 0
    records_replayed: int = 0
    elapsed_seconds: float = 0.0


@dataclass
class HealStats:
    """What one online repair pass did."""

    partitions_healed: int = 0
    records_replayed: int = 0
    healed: List[PartitionKey] = field(default_factory=list)
    elapsed_seconds: float = 0.0


class FailoverCoordinator:
    """Wires one database's log device to a warm replica."""

    def __init__(self, db, config: Optional[ReplicationConfig] = None) -> None:
        self.db = db
        self.config = config or ReplicationConfig()
        self.channel = None
        self.shipper: Optional[LogShipper] = None
        self.state = "idle"
        self.failovers = 0
        self.partition_heals = 0
        self.last_promotion: Optional[PromotionStats] = None
        self.last_heal: Optional[HealStats] = None
        self._last_heartbeat: Optional[float] = None
        self._sink_installed = False
        #: Relation names the replica knows about (config registration).
        self._known_relations: set = set()

    # ------------------------------------------------------------------ #
    # bootstrap
    # ------------------------------------------------------------------ #

    def _read_image(self, relation: str, partition_id: int) -> bytes:
        """One disk image, framed for the hop, retrying transient reads."""
        manager = self.db.recovery
        backoff = self.config.backoff or NO_BACKOFF
        last_error: Optional[RecoveryError] = None
        for attempt in range(self.config.retry_attempts):
            if attempt:
                backoff.sleep(attempt - 1)
            try:
                return frame(
                    manager.disk.read_partition(relation, partition_id)
                )
            except (CorruptImageError, TornWriteError) as exc:
                last_error = exc
        raise ReplicationError(
            f"cannot bootstrap replica image for "
            f"{relation}[{partition_id}]: {last_error}"
        )

    def establish(self) -> "FailoverCoordinator":
        """Bootstrap the replica and start shipping.

        The replica starts from the disk copy: every stored partition
        image, plus the accumulation log's unpropagated suffix seeded
        into the shipper's outbox and flushed.  Relations with no disk
        image yet are checkpointed first so replay has a base.
        """
        manager = self.db._require_durable()
        device = manager.log_device
        device.absorb()
        if not manager.disk.partition_keys() and any(
            relation.partitions for relation in self.db.catalog
        ):
            # Nothing imaged yet (a fresh durable database that was
            # loaded before replication came on): take the base images.
            manager.checkpoint_all()
        configs: Dict[str, Tuple[int, int]] = {}
        for relation in self.db.catalog:
            configs[relation.name] = (
                relation.partition_config.slot_capacity,
                relation.partition_config.heap_capacity,
            )
        self._known_relations = set(configs)
        images: Dict[PartitionKey, bytes] = {}
        for key in manager.disk.partition_keys():
            images[key] = self._read_image(key[0], key[1])
        bootstrap = {"configs": configs, "epoch": 1, "images": images}
        use_shm = self.config.transport == "shm"
        if self.config.channel == "process":
            self.channel = ProcessChannel(bootstrap, use_shm=use_shm)
        else:
            self.channel = InlineChannel(
                ReplicaApplier.from_bootstrap(bootstrap), use_shm=use_shm
            )
        self.shipper = LogShipper(self.channel, self.config, epoch=1)
        # The suffix absorbed before the tap was installed still needs
        # shipping: seed it and drain (best effort — establishment must
        # not fail on a flaky first hop; flush() calls catch up later).
        pending = device.all_pending()
        if pending:
            self.shipper.outbox.extend(pending)
            self.shipper.ship(best_effort=True)
        device.add_sink(self._sink)
        self._sink_installed = True
        self.state = "active"
        self.heartbeat()
        return self

    def _sink(self, records) -> None:
        """The log-device tap: every absorbed record batch lands here."""
        self._sync_relations()
        self.shipper.enqueue(records)

    def _sync_relations(self) -> None:
        """Teach the replica about relations created after establish."""
        if len(self._known_relations) == len(self.db.catalog):
            return
        for relation in self.db.catalog:
            if relation.name not in self._known_relations:
                self.channel.request(
                    "register",
                    (
                        relation.name,
                        (
                            relation.partition_config.slot_capacity,
                            relation.partition_config.heap_capacity,
                        ),
                    ),
                )
                self._known_relations.add(relation.name)

    # ------------------------------------------------------------------ #
    # heartbeats / failure detection
    # ------------------------------------------------------------------ #

    def heartbeat(self) -> None:
        """The primary's liveness stamp."""
        self._last_heartbeat = time.monotonic()

    def check(self) -> bool:
        """Promote if the heartbeat window has lapsed; True if promoted."""
        if (
            self.state == "active"
            and self.config.heartbeat_timeout > 0
            and self._last_heartbeat is not None
            and time.monotonic() - self._last_heartbeat
            > self.config.heartbeat_timeout
        ):
            self.promote(reason="heartbeat timeout")
            return True
        return False

    def maybe_promote_on_faults(self) -> bool:
        """Promote when the injector shows the primary's workers dying.

        The chaos lane's kill-primary signal: any ``pool.worker`` kill
        event recorded by the active injector is treated as the primary
        failing mid-workload.  True if this call promoted.
        """
        if self.state != "active":
            return False
        injector = fault_runtime.active()
        if injector is None:
            return False
        for event in injector.events:
            if event.point == "pool.worker" and event.action == "kill":
                self.promote(reason="pool.worker kill")
                return True
        return False

    # ------------------------------------------------------------------ #
    # failover
    # ------------------------------------------------------------------ #

    def promote(self, reason: str = "demoted") -> PromotionStats:
        """Fail over to the replica; the catalog adopts its images.

        Replays the unacknowledged log suffix first (the ``repl.ship`` /
        ``repl.apply`` fault points fire on every hop of that replay),
        then swaps every replica partition into the catalog — clearing
        quarantine marks, bumping relation versions, rebuilding indexes
        — re-points the morsel scheduler's catalog registry, and bumps
        the replication epoch so any straggler batch from the demoted
        primary is fenced.
        """
        if self.state != "active":
            raise ReplicationError(
                f"cannot promote from state {self.state!r}"
            )
        started = time.perf_counter()
        manager = self.db._require_durable()
        device = manager.log_device
        device.absorb()
        # Replay the unacknowledged suffix.  This is the promotion's
        # correctness step: the replica must reach the last committed
        # record before its images become the database.
        replayed = len(self.shipper.outbox)
        self.shipper.flush()
        snapshot = self.channel.request("snapshot")
        stats = PromotionStats(reason=reason, records_replayed=replayed)
        for relation in self.db.catalog:
            relation._partitions.clear()
            relation._count = 0
            relation.clear_quarantined()
        touched = []
        for (relation_name, __), framed in snapshot:
            payload = unframe(
                framed, context=f"promoted image {relation_name}"
            )
            relation = self.db.catalog.relation(relation_name)
            relation.adopt_partition(Partition.from_bytes(payload))
            if relation_name not in touched:
                touched.append(relation_name)
            stats.partitions_restored += 1
        for relation_name in touched:
            self.db.catalog.relation(relation_name).rebuild_indexes()
        # Re-point the morsel scheduler's registry: worker forks must
        # resolve morsels against the promoted catalog, not the dead
        # primary's fingerprints.
        scheduler = getattr(self.db.executor, "scheduler", None)
        if scheduler is not None:
            from repro.query.parallel import tasks

            tasks.register_catalog(scheduler.token, self.db.catalog)
        # Fence the old epoch: a straggler batch stamped with the
        # pre-promotion epoch now raises ReplicationEpochError.
        new_epoch = self.shipper.epoch + 1
        self.shipper.epoch = new_epoch
        self.channel.request("set_epoch", new_epoch)
        stats.epoch = new_epoch
        # The promoted database is whole: pending background reloads and
        # quarantine reports from any earlier partial restart are moot.
        manager._pending_background = []
        last = manager.last_restart_stats
        if last is not None:
            last.quarantined.clear()
        device.remove_sink(self._sink)
        self._sink_installed = False
        self.state = "promoted"
        self.failovers += 1
        stats.elapsed_seconds = time.perf_counter() - started
        self.last_promotion = stats
        _metric("failovers_total", reason=reason)
        return stats

    # ------------------------------------------------------------------ #
    # online partition repair
    # ------------------------------------------------------------------ #

    def heal_quarantined(self) -> HealStats:
        """Repair every quarantined partition from the replica, online.

        The replica's image already reflects the full shipped log, so a
        heal is: flush the suffix, fetch the image, adopt it (clearing
        the quarantine mark), rewrite the disk copy (repairing the
        damaged stored image), and drop the now-reflected accumulation
        records.  ``quarantine_report()`` drains to empty with no full
        restart.
        """
        if self.state != "active":
            raise ReplicationError(
                f"cannot heal from state {self.state!r}; "
                "replication is not active"
            )
        started = time.perf_counter()
        manager = self.db._require_durable()
        device = manager.log_device
        device.absorb()
        self.shipper.flush()
        stats = HealStats()
        last = manager.last_restart_stats
        quarantined = list(last.quarantined) if last is not None else []
        touched = []
        for (relation_name, partition_id), __ in quarantined:
            framed = self.channel.request(
                "image", (relation_name, partition_id)
            )
            payload = unframe(
                framed,
                context=f"healed image {relation_name}[{partition_id}]",
            )
            partition = Partition.from_bytes(payload)
            relation = self.db.catalog.relation(relation_name)
            relation.adopt_partition(partition)  # clears the mark
            # Repair the disk copy too: the stored image was the damage.
            manager.disk.write_partition(
                relation_name, partition_id, partition.to_bytes()
            )
            stats.records_replayed += device.discard_pending(
                relation_name, partition_id
            )
            if relation_name not in touched:
                touched.append(relation_name)
            stats.partitions_healed += 1
            stats.healed.append((relation_name, partition_id))
            self.partition_heals += 1
            _metric("partition_heals_total", relation=relation_name)
        for relation_name in touched:
            self.db.catalog.relation(relation_name).rebuild_indexes()
        if last is not None and quarantined:
            healed = set(stats.healed)
            last.quarantined = [
                entry for entry in last.quarantined if entry[0] not in healed
            ]
            manager._pending_background = [
                key
                for key in manager._pending_background
                if key not in healed
            ]
        stats.elapsed_seconds = time.perf_counter() - started
        self.last_heal = stats
        return stats

    # ------------------------------------------------------------------ #
    # introspection / teardown
    # ------------------------------------------------------------------ #

    def replication_state(self) -> Dict[str, Any]:
        """One dict for reports: shipper + replica + coordinator state."""
        state: Dict[str, Any] = {
            "state": self.state,
            "channel": self.config.channel,
            "transport": self.config.transport,
            "failovers": self.failovers,
            "partition_heals": self.partition_heals,
        }
        if self.shipper is not None:
            state["shipper"] = self.shipper.state()
        if self.channel is not None and self.state == "active":
            try:
                state["replica"] = self.channel.request("state")
            except ReplicationError as exc:
                state["replica"] = {"error": str(exc)}
        return state

    def close(self) -> None:
        """Detach the sink and stop the replica."""
        if self._sink_installed:
            self.db.recovery.log_device.remove_sink(self._sink)
            self._sink_installed = False
        if self.channel is not None:
            try:
                self.channel.close()
            except ReplicationError:  # pragma: no cover - teardown race
                pass
        if self.state != "promoted":
            self.state = "closed"
