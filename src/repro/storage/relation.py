"""Relations: partitioned tuple storage accessed only through indexes.

Section 2.1 rules implemented here:

* a relation is a set of partitions;
* "the relations will not be allowed to be traversed directly, so all
  access to a relation is through an index (Note that this requires all
  relations to have at least one index)";
* tuples never move; a heap overflow relocates the tuple and leaves a
  forwarding address (footnote 1), which :meth:`Relation.resolve` follows
  transparently;
* indexes hold tuple pointers and extract attribute values through them
  (Section 2.2), implemented by :meth:`Relation.key_extractor`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.errors import (
    HeapOverflowError,
    PartitionFullError,
    SchemaError,
    ShardUnavailableError,
    StorageError,
)
from repro.indexes import INDEX_KINDS
from repro.indexes.base import Index, OrderedIndex
from repro.instrument import count_traverse
from repro.storage.partition import Partition, PartitionConfig
from repro.storage.schema import FieldType, Schema
from repro.storage.tuples import TupleRef


# Global monotonic clock for relation versions.  Every mutation of any
# relation takes a fresh tick, so a (name, version) pair is never reused —
# even across DROP TABLE / CREATE TABLE of the same name — which is what
# lets the reuse caches validate staleness with one integer comparison.
_version_clock = 0


def _next_version() -> int:
    global _version_clock
    _version_clock += 1
    return _version_clock


def _index_covers(index: Index, field_name: str) -> bool:
    """Whether an index's key involves ``field_name`` (handles
    multi-attribute indexes, whose field_name is a tuple)."""
    label = getattr(index, "field_name", None)
    if isinstance(label, tuple):
        return field_name in label
    return label == field_name


class Relation:
    """A named relation stored across partitions, with mandatory indexes.

    The constructor does *not* create an index; callers must call
    :meth:`create_index` before :meth:`insert` — mirroring the paper's
    requirement that every relation have at least one index.  The engine
    facade (:class:`repro.engine.database.MainMemoryDatabase`) does this
    automatically.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        partition_config: PartitionConfig = None,
    ) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        self.name = name
        self.schema = schema  # logical schema (FK declarations intact)
        self.physical_schema = schema.physical()
        self.partition_config = (
            partition_config if partition_config is not None else PartitionConfig()
        )
        self._partitions: Dict[int, Partition] = {}
        self._next_partition_id = 0
        self._indexes: Dict[str, Index] = {}
        self._count = 0
        #: Partitions a partial restart condemned: id -> reason.  A
        #: statement routed here gets a typed ShardUnavailableError
        #: instead of a bare missing-partition StorageError, and healing
        #: (adopting a good image) clears the mark.
        self._quarantined: Dict[int, str] = {}
        # Monotonic version: bumped by every insert/update/delete and by
        # index DDL (plans depend on available access paths).  Cached
        # plans/results record the versions they observed; a mismatch
        # means potential staleness (Section 2.3's temporary lists are
        # cheap to retain but must never outlive their inputs).
        self.version = _next_version()
        # Optional hook receiving physical-change events (dicts); the
        # engine installs one to produce write-ahead log records.
        self.change_listener: Optional[Callable[[Dict[str, Any]], None]] = None

    def _emit(self, event: Dict[str, Any]) -> None:
        if self.change_listener is not None:
            self.change_listener(event)

    def bump_version(self) -> int:
        """Advance this relation's version (any mutation or index DDL).

        Called *before* the mutation so that a partially applied failure
        still invalidates dependent cache entries (false invalidation is
        safe; a stale hit is not).
        """
        self.version = _next_version()
        return self.version

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return self._count

    @property
    def cardinality(self) -> int:
        """|R| — the number of live tuples."""
        return self._count

    @property
    def indexes(self) -> Dict[str, Index]:
        """Mapping of index name to index object (read-only view)."""
        return dict(self._indexes)

    @property
    def partitions(self) -> List[Partition]:
        """The partitions, for the recovery and locking subsystems."""
        return list(self._partitions.values())

    def partition(self, partition_id: int) -> Partition:
        """Look up a partition by id.

        A partition quarantined by a partial restart raises the typed
        :class:`~repro.errors.ShardUnavailableError` so routing layers
        (and operators) can distinguish "degraded, heal me" from a
        plain bad partition id.
        """
        try:
            return self._partitions[partition_id]
        except KeyError:
            reason = self._quarantined.get(partition_id)
            if reason is not None:
                raise ShardUnavailableError(
                    self.name, partition_id, reason
                ) from None
            raise StorageError(
                f"{self.name}: no partition {partition_id}"
            ) from None

    # ------------------------------------------------------------------ #
    # quarantine marks (partial-restart degraded state)
    # ------------------------------------------------------------------ #

    @property
    def quarantined_partitions(self) -> Dict[int, str]:
        """Quarantined partition ids and reasons (read-only view)."""
        return dict(self._quarantined)

    def mark_quarantined(self, partition_id: int, reason: str) -> None:
        """Record that ``partition_id`` failed to reload and is absent."""
        self._quarantined[partition_id] = reason

    def clear_quarantined(self, partition_id: int = None) -> None:
        """Drop a quarantine mark (all marks when ``partition_id`` is
        None) — the partition was healed or the memory image reset."""
        if partition_id is None:
            self._quarantined.clear()
        else:
            self._quarantined.pop(partition_id, None)

    # ------------------------------------------------------------------ #
    # index management
    # ------------------------------------------------------------------ #

    def key_extractor(self, field_name: str) -> Callable[[TupleRef], Any]:
        """A function extracting ``field_name`` through a tuple pointer.

        This is the paper's "a single tuple pointer provides the index
        with access to both the attribute value of a tuple and the tuple
        itself".  Each extraction counts one pointer traversal.
        """
        position = self.physical_schema.position(field_name)

        def extract(ref: TupleRef) -> Any:
            count_traverse()
            part, slot = self._locate(ref)
            return part.read_field(slot, position)

        return extract

    def multi_key_extractor(
        self, field_names: Sequence[str]
    ) -> Callable[[TupleRef], tuple]:
        """Composite-key extractor for multi-attribute indexes.

        Section 2.2: "since a single tuple pointer provides access to any
        field in the tuple, multi-attribute indices will need less in the
        way of special mechanisms" — here it is simply a tuple of fields.
        """
        positions = [self.physical_schema.position(n) for n in field_names]

        def extract(ref: TupleRef) -> tuple:
            count_traverse()
            part, slot = self._locate(ref)
            return tuple(part.read_field(slot, p) for p in positions)

        return extract

    def create_index(
        self,
        index_name: str,
        field_name: Any,
        kind: str = "ttree",
        unique: bool = False,
        parallel: bool = False,
        **index_options: Any,
    ) -> Index:
        """Create and register an index over one field or several.

        ``kind`` is a key of :data:`repro.indexes.INDEX_KINDS` ("ttree" and
        "modified_linear_hash" are the two dynamic structures the MM-DBMS
        design uses; the others exist for the paper's comparisons).
        ``field_name`` may be a list/tuple of field names for a
        multi-attribute index — "since a single tuple pointer provides
        access to any field in the tuple, multi-attribute indices will
        need less in the way of special mechanisms" (Section 2.2); the
        key is simply the tuple of field values.  Existing tuples are
        bulk-loaded into the new index.

        ``parallel=True`` prefetches every key through the morsel pool
        (when ``db.configure_execution(..., workers=N)`` installed one;
        in-process otherwise) and bulk-loads through the prefetch memo:
        identical structure and identical Section 3.1 counter totals to
        the sequential build — the insert loop still charges one logical
        traversal per key extraction — with the avoided physical
        dereferences tallied under ``deref_saved_traversals``.
        """
        if index_name in self._indexes:
            raise SchemaError(
                f"{self.name}: index {index_name!r} already exists"
            )
        try:
            index_cls = INDEX_KINDS[kind]
        except KeyError:
            raise SchemaError(
                f"unknown index kind {kind!r}; choose from "
                f"{sorted(INDEX_KINDS)}"
            ) from None
        if isinstance(field_name, (list, tuple)):
            extractor = self.multi_key_extractor(list(field_name))
            label: Any = tuple(field_name)
        else:
            extractor = self.key_extractor(field_name)
            label = field_name
        index = index_cls(
            key_of=extractor,
            unique=unique,
            **index_options,
        )
        index.field_name = label
        if parallel:
            # Deferred import: the storage layer must not depend on the
            # query engine at import time (the slot pattern of
            # repro.query.parallel.runtime keeps the layering acyclic).
            from repro.query.parallel.build import bulk_load_parallel

            bulk_load_parallel(self, index, label, extractor)
        else:
            for ref in self._all_refs():
                index.insert(ref)
        self._indexes[index_name] = index
        self.bump_version()  # new access path: cached plans are stale
        return index

    def index(self, index_name: str) -> Index:
        """Look up an index by name."""
        try:
            return self._indexes[index_name]
        except KeyError:
            raise SchemaError(
                f"{self.name}: no index {index_name!r}; have "
                f"{sorted(self._indexes)}"
            ) from None

    def drop_index(self, index_name: str) -> None:
        """Remove an index; at least one must remain."""
        if index_name not in self._indexes:
            raise SchemaError(f"{self.name}: no index {index_name!r}")
        if len(self._indexes) == 1:
            raise SchemaError(
                f"{self.name}: cannot drop the last index; all relation "
                "access is through an index (paper Section 2.1)"
            )
        del self._indexes[index_name]
        self.bump_version()  # cached plans may rely on the dropped path

    def index_on(self, field_name: str, ordered: bool = None) -> Optional[Index]:
        """Find an index keyed on ``field_name``, or None.

        ``ordered`` filters by structure family: True → order-preserving
        only, False → hash only, None → either (ordered preferred).
        """
        matches = [
            idx
            for idx in self._indexes.values()
            if getattr(idx, "field_name", None) == field_name
        ]
        if ordered is True:
            matches = [idx for idx in matches if idx.ordered]
        elif ordered is False:
            matches = [idx for idx in matches if not idx.ordered]
        if not matches:
            return None
        # Prefer ordered structures: they serve both exact and range access.
        matches.sort(key=lambda idx: not idx.ordered)
        return matches[0]

    def any_index(self) -> Index:
        """Any index (used for full sequential scans through an index)."""
        if not self._indexes:
            raise SchemaError(
                f"{self.name}: relation has no index; create one first"
            )
        return next(iter(self._indexes.values()))

    # ------------------------------------------------------------------ #
    # tuple operations
    # ------------------------------------------------------------------ #

    def _partition_with_room(self, heap_bytes: int) -> Partition:
        for part in self._partitions.values():
            if part.has_room(heap_bytes):
                return part
        part = Partition(self._next_partition_id, self.partition_config)
        self._partitions[part.id] = part
        self._next_partition_id += 1
        return part

    def insert(self, values: Sequence[object]) -> TupleRef:
        """Insert a physical row; returns its (stable) tuple pointer.

        ``values`` follow the physical schema: foreign-key fields must
        already be :class:`TupleRef`\\ s (the engine resolves them).  On
        index-maintenance failure (e.g. a unique violation) the insert is
        rolled back completely.
        """
        if not self._indexes:
            raise SchemaError(
                f"{self.name}: create at least one index before inserting "
                "(all relation access is through an index)"
            )
        if len(values) != len(self.physical_schema):
            raise SchemaError(
                f"{self.name}: row has {len(values)} values, schema has "
                f"{len(self.physical_schema)} fields"
            )
        self.bump_version()
        heap_bytes = Partition.heap_bytes_for(values)
        part = self._partition_with_room(heap_bytes)
        slot = part.insert(values)
        ref = TupleRef(part.id, slot)
        maintained: List[Index] = []
        try:
            for index in self._indexes.values():
                index.insert(ref)
                maintained.append(index)
        except Exception:
            for index in maintained:
                index.delete(ref)
            part.delete(slot)
            raise
        self._count += 1
        self._emit(
            {
                "kind": "insert",
                "relation": self.name,
                "partition": part.id,
                "slot": slot,
                "values": list(values),
            }
        )
        return ref

    def _locate(self, ref: TupleRef):
        """Resolve a ref to (partition, slot), following forwarding."""
        part = self.partition(ref.partition_id)
        target = part.forwarding(ref.slot)
        hops = 0
        while target is not None:
            count_traverse()
            part = self.partition(target.partition_id)
            slot = target.slot
            target = part.forwarding(slot)
            ref = TupleRef(part.id, slot)
            hops += 1
            if hops > len(self._partitions) + 1:
                raise StorageError(f"{self.name}: forwarding cycle at {ref}")
        return part, ref.slot

    def resolve(self, ref: TupleRef) -> TupleRef:
        """Canonicalise a ref (follow forwarding addresses)."""
        part, slot = self._locate(ref)
        return TupleRef(part.id, slot)

    def fetch(self, ref: TupleRef) -> List[object]:
        """Materialise the full physical row behind ``ref``."""
        part, slot = self._locate(ref)
        return part.read(slot)

    def read_field(self, ref: TupleRef, field_name: str) -> object:
        """Materialise one field behind ``ref`` (physical value)."""
        position = self.physical_schema.position(field_name)
        part, slot = self._locate(ref)
        return part.read_field(slot, position)

    def update(self, ref: TupleRef, field_name: str, value: object) -> None:
        """Update one field in place, maintaining affected indexes.

        If the partition's heap overflows, the tuple is relocated to a
        partition with room and a forwarding address is left behind; the
        original ``ref`` stays valid (footnote 1 of the paper).  Indexes
        are keyed by extraction through the pointer, so only indexes on
        the changed field need maintenance.
        """
        position = self.physical_schema.position(field_name)
        field_def = self.physical_schema.fields[position]
        if field_def.type is not FieldType.REF:
            field_def.type.validate(value)
        self.bump_version()
        affected = [
            idx
            for idx in self._indexes.values()
            if _index_covers(idx, field_name)
        ]
        canonical = self.resolve(ref)
        for idx in affected:
            idx.delete(canonical)
        try:
            part, slot = self._locate(ref)
            try:
                part.update_field(slot, position, value)
                self._emit(
                    {
                        "kind": "update",
                        "relation": self.name,
                        "partition": part.id,
                        "slot": slot,
                        "position": position,
                        "value": value,
                    }
                )
            except HeapOverflowError:
                self._relocate(part, slot, position, value)
        finally:
            for idx in affected:
                idx.insert(canonical)

    def _relocate(
        self, part: Partition, slot: int, position: int, value: object
    ) -> None:
        """Move a tuple whose update overflowed its partition's heap."""
        row = part.read(slot)
        row[position] = value
        heap_bytes = Partition.heap_bytes_for(row)
        # Find a different partition with room (never the full one).
        target: Optional[Partition] = None
        for candidate in self._partitions.values():
            if candidate is not part and candidate.has_room(heap_bytes):
                target = candidate
                break
        if target is None:
            target = Partition(self._next_partition_id, self.partition_config)
            self._partitions[target.id] = target
            self._next_partition_id += 1
        new_slot = target.insert(row)
        part.set_forwarding(slot, TupleRef(target.id, new_slot))
        self._emit(
            {
                "kind": "insert",
                "relation": self.name,
                "partition": target.id,
                "slot": new_slot,
                "values": list(row),
            }
        )
        self._emit(
            {
                "kind": "forward",
                "relation": self.name,
                "partition": part.id,
                "slot": slot,
                "target": TupleRef(target.id, new_slot),
            }
        )

    def delete(self, ref: TupleRef) -> None:
        """Delete the tuple behind ``ref`` from storage and all indexes."""
        self.bump_version()
        canonical = self.resolve(ref)
        for index in self._indexes.values():
            index.delete(canonical)
        part, slot = self._locate(canonical)
        part.delete(slot)
        self._count -= 1
        self._emit(
            {
                "kind": "delete",
                "relation": self.name,
                "partition": part.id,
                "slot": slot,
            }
        )

    def _all_refs(self) -> Iterator[TupleRef]:
        """Internal scan of every live tuple pointer.

        Private on purpose: user-level access must go through an index.
        Used for index builds and recovery only.
        """
        for part in self._partitions.values():
            for slot, __ in part.scan():
                yield TupleRef(part.id, slot)

    # ------------------------------------------------------------------ #
    # recovery integration
    # ------------------------------------------------------------------ #

    def adopt_partition(self, partition: Partition) -> None:
        """Install a partition object (used by recovery when reloading)."""
        self.bump_version()
        self._partitions[partition.id] = partition
        self._next_partition_id = max(self._next_partition_id, partition.id + 1)
        # A good image arriving is exactly what heals a quarantine.
        self._quarantined.pop(partition.id, None)

    def rebuild_indexes(self) -> None:
        """Rebuild every index from storage (after a recovery reload).

        Main-memory indexes are *not* persisted — like the paper's design,
        they are reconstructed from the reloaded partitions.
        """
        self.bump_version()
        rebuilt: Dict[str, Index] = {}
        for name, old in self._indexes.items():
            options = {}
            if hasattr(old, "node_size"):
                options["node_size"] = old.node_size
            if hasattr(old, "chain_target"):
                options["chain_target"] = old.chain_target
            if isinstance(old.field_name, tuple):
                extractor = self.multi_key_extractor(list(old.field_name))
            else:
                extractor = self.key_extractor(old.field_name)
            index = type(old)(
                key_of=extractor,
                unique=old.unique,
                **options,
            )
            index.field_name = old.field_name
            for ref in self._all_refs():
                index.insert(ref)
            rebuilt[name] = index
        self._indexes = rebuilt
        self._count = sum(p.live_tuples for p in self._partitions.values())
