"""Partitions: the unit of storage and recovery.

Section 2.1: "Every relation in the MM-DBMS will be broken up into
partitions; a partition is a unit of recovery that is larger than a typical
disk page, probably on the order of one or two disk tracks."

A :class:`Partition` holds a slot array of fixed-size tuple rows plus a heap
for variable-length fields.  Tuples never move once inserted; in the rare
case that an update overflows the heap, the tuple is relocated by the
relation and a *forwarding address* is left in the old slot (paper
footnote 1).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import (
    CorruptImageError,
    DanglingPointerError,
    HeapOverflowError,
    PartitionFullError,
    StorageError,
)
from repro.instrument import count_move
from repro.storage.tuples import HeapPtr, TupleRef


@dataclass(frozen=True)
class PartitionConfig:
    """Sizing of a partition.

    The defaults model "one or two disk tracks": mid-1980s disk tracks held
    roughly 25-50 KB, so the default heap is 32 KB and the slot count is
    sized for a few hundred modest tuples.
    """

    slot_capacity: int = 256
    heap_capacity: int = 32768


class _Tombstone:
    """Marker for a deleted slot."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<deleted>"


_TOMBSTONE = _Tombstone()


@dataclass(frozen=True)
class Forward:
    """A forwarding address left behind when a tuple had to be moved."""

    target: TupleRef


class Partition:
    """A slot array plus heap space, with dirty tracking for recovery.

    Rows are stored as Python lists in which variable-length (``str``)
    values have been replaced by :class:`HeapPtr` into :attr:`_heap`.  The
    heap is a bump allocator; space freed by deletes or updates is not
    reclaimed until the partition is rebuilt, which mirrors the paper's
    simple heap-space model.
    """

    def __init__(self, partition_id: int, config: PartitionConfig = None) -> None:
        self.id = partition_id
        self.config = config if config is not None else PartitionConfig()
        self._slots: List[object] = []
        self._free_slots: List[int] = []
        self._heap = bytearray(self.config.heap_capacity)
        self._heap_used = 0
        self._live = 0
        # Monotone version number, bumped on every mutation.  The recovery
        # subsystem compares it against the disk copy's version to decide
        # whether change-accumulation entries still need merging.
        self.version = 0

    # ------------------------------------------------------------------ #
    # capacity / bookkeeping
    # ------------------------------------------------------------------ #

    @property
    def live_tuples(self) -> int:
        """Number of live (non-deleted, non-forwarded) tuples."""
        return self._live

    @property
    def heap_free(self) -> int:
        """Bytes remaining in the heap."""
        return self.config.heap_capacity - self._heap_used

    def has_room(self, heap_bytes_needed: int = 0) -> bool:
        """Whether a new tuple with ``heap_bytes_needed`` heap bytes fits."""
        slot_free = (
            bool(self._free_slots)
            or len(self._slots) < self.config.slot_capacity
        )
        return slot_free and heap_bytes_needed <= self.heap_free

    def _touch(self) -> None:
        self.version += 1

    # ------------------------------------------------------------------ #
    # heap
    # ------------------------------------------------------------------ #

    def _heap_store(self, value: str) -> HeapPtr:
        data = value.encode("utf-8")
        if len(data) > self.heap_free:
            raise HeapOverflowError(
                f"partition {self.id}: need {len(data)} heap bytes, "
                f"have {self.heap_free}"
            )
        offset = self._heap_used
        self._heap[offset : offset + len(data)] = data
        self._heap_used += len(data)
        count_move(1)
        return HeapPtr(offset, len(data))

    def _heap_load(self, ptr: HeapPtr) -> str:
        return self._heap[ptr.offset : ptr.offset + ptr.length].decode("utf-8")

    @staticmethod
    def heap_bytes_for(values: Sequence[object]) -> int:
        """Heap bytes a row of raw values will consume when stored."""
        return sum(
            len(v.encode("utf-8")) for v in values if isinstance(v, str)
        )

    # ------------------------------------------------------------------ #
    # row operations
    # ------------------------------------------------------------------ #

    def insert(self, values: Sequence[object]) -> int:
        """Store a row; returns the slot number.

        ``values`` are physical values: fixed-size Python objects or
        ``str`` (moved into the heap).  Raises :class:`PartitionFullError`
        if no slot is free, :class:`HeapOverflowError` if the heap cannot
        hold the row's variable-length data.
        """
        needed = self.heap_bytes_for(values)
        if needed > self.heap_free:
            raise HeapOverflowError(
                f"partition {self.id}: need {needed} heap bytes, "
                f"have {self.heap_free}"
            )
        if self._free_slots:
            slot = self._free_slots.pop()
        elif len(self._slots) < self.config.slot_capacity:
            slot = len(self._slots)
            self._slots.append(_TOMBSTONE)
        else:
            raise PartitionFullError(
                f"partition {self.id} has no free slots"
            )
        row = [
            self._heap_store(v) if isinstance(v, str) else v for v in values
        ]
        count_move(len(row))
        self._slots[slot] = row
        self._live += 1
        self._touch()
        return slot

    def insert_at(self, slot: int, values: Sequence[object]) -> None:
        """Place a row at a specific slot (log replay during recovery).

        Extends the slot array with tombstones as needed; raises
        :class:`StorageError` if the slot is already occupied.
        """
        needed = self.heap_bytes_for(values)
        if needed > self.heap_free:
            raise HeapOverflowError(
                f"partition {self.id}: need {needed} heap bytes, "
                f"have {self.heap_free}"
            )
        while len(self._slots) <= slot:
            self._free_slots.append(len(self._slots))
            self._slots.append(_TOMBSTONE)
        if self._slots[slot] is not _TOMBSTONE:
            raise StorageError(
                f"partition {self.id} slot {slot} already occupied"
            )
        row = [
            self._heap_store(v) if isinstance(v, str) else v for v in values
        ]
        self._slots[slot] = row
        self._free_slots = [s for s in self._free_slots if s != slot]
        self._live += 1
        self._touch()

    def compact(self) -> None:
        """Rewrite the heap, dropping abandoned variable-length values.

        Tuples do not move (slots are preserved); only their heap
        pointers are refreshed.  Used by log replay when accumulated
        updates exhaust a disk image's bump-allocated heap.
        """
        new_heap = bytearray(self.config.heap_capacity)
        used = 0
        for entry in self._slots:
            if entry is _TOMBSTONE or isinstance(entry, Forward):
                continue
            for position, value in enumerate(entry):
                if not isinstance(value, HeapPtr):
                    continue
                data = self._heap[value.offset : value.offset + value.length]
                new_heap[used : used + len(data)] = data
                entry[position] = HeapPtr(used, len(data))
                used += len(data)
        self._heap = new_heap
        self._heap_used = used
        self._touch()

    def _row(self, slot: int) -> List[object]:
        if slot < 0 or slot >= len(self._slots):
            raise DanglingPointerError(
                f"partition {self.id} has no slot {slot}"
            )
        entry = self._slots[slot]
        if entry is _TOMBSTONE:
            raise DanglingPointerError(
                f"partition {self.id} slot {slot} was deleted"
            )
        if isinstance(entry, Forward):
            raise StorageError(
                f"partition {self.id} slot {slot} is a forwarding address; "
                "resolve it through the relation"
            )
        return entry

    def forwarding(self, slot: int) -> Optional[TupleRef]:
        """The forwarding target for ``slot``, or None if it holds a row."""
        if slot < 0 or slot >= len(self._slots):
            raise DanglingPointerError(
                f"partition {self.id} has no slot {slot}"
            )
        entry = self._slots[slot]
        if isinstance(entry, Forward):
            return entry.target
        return None

    def read(self, slot: int) -> List[object]:
        """Materialise the row at ``slot`` (heap pointers resolved)."""
        row = self._row(slot)
        return [
            self._heap_load(v) if isinstance(v, HeapPtr) else v for v in row
        ]

    def read_field(self, slot: int, position: int) -> object:
        """Materialise a single field of the row at ``slot``."""
        row = self._row(slot)
        value = row[position]
        if isinstance(value, HeapPtr):
            return self._heap_load(value)
        return value

    def update_field(self, slot: int, position: int, value: object) -> None:
        """Overwrite one field in place.

        A growing ``str`` value is re-stored at the end of the heap (the
        old bytes are abandoned); if the heap is exhausted,
        :class:`HeapOverflowError` propagates and the relation relocates
        the tuple, leaving a forwarding address.
        """
        row = self._row(slot)
        if isinstance(value, str):
            old = row[position]
            if (
                isinstance(old, HeapPtr)
                and len(value.encode("utf-8")) <= old.length
            ):
                # Overwrite in place when the new value fits.
                data = value.encode("utf-8")
                start = old.offset
                self._heap[start : start + old.length] = b"\x00" * old.length
                self._heap[start : start + len(data)] = data
                row[position] = HeapPtr(start, len(data))
            else:
                row[position] = self._heap_store(value)
        else:
            row[position] = value
        count_move(1)
        self._touch()

    def delete(self, slot: int) -> None:
        """Remove the row at ``slot``, leaving a tombstone."""
        self._row(slot)  # validates liveness
        self._slots[slot] = _TOMBSTONE
        self._free_slots.append(slot)
        self._live -= 1
        self._touch()

    def set_forwarding(self, slot: int, target: TupleRef) -> None:
        """Replace the row at ``slot`` with a forwarding address."""
        self._row(slot)  # validates liveness
        self._slots[slot] = Forward(target)
        self._live -= 1
        self._touch()

    def scan(self) -> Iterator[Tuple[int, List[object]]]:
        """Yield ``(slot, materialised_row)`` for every live tuple.

        Used only by the storage layer itself (recovery, index rebuild);
        user-level access must go through an index per Section 2.1.
        """
        for slot, entry in enumerate(self._slots):
            if entry is _TOMBSTONE or isinstance(entry, Forward):
                continue
            yield slot, self.read(slot)

    # ------------------------------------------------------------------ #
    # recovery support
    # ------------------------------------------------------------------ #

    def to_bytes(self) -> bytes:
        """Serialise the partition for the simulated disk copy."""
        state = {
            "id": self.id,
            "config": (self.config.slot_capacity, self.config.heap_capacity),
            "slots": [
                ("T",)
                if entry is _TOMBSTONE
                else ("F", entry.target)
                if isinstance(entry, Forward)
                else ("R", list(entry))
                for entry in self._slots
            ],
            "free": list(self._free_slots),
            "heap": bytes(self._heap),
            "heap_used": self._heap_used,
            "live": self._live,
            "version": self.version,
        }
        return pickle.dumps(state)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Partition":
        """Reconstruct a partition from :meth:`to_bytes` output.

        Bytes that do not decode as a partition image raise
        :class:`~repro.errors.CorruptImageError` — the disk frame's
        CRC32 catches damage to a valid image, and this catches images
        that were never valid.
        """
        try:
            state = pickle.loads(data)
            if not isinstance(state, dict) or "slots" not in state:
                raise ValueError("not a partition image")
        except CorruptImageError:
            raise
        except Exception as exc:
            raise CorruptImageError(
                f"partition image does not decode: {exc!r}"
            ) from exc
        slot_capacity, heap_capacity = state["config"]
        part = cls(state["id"], PartitionConfig(slot_capacity, heap_capacity))
        part._slots = [
            _TOMBSTONE
            if tag[0] == "T"
            else Forward(tag[1])
            if tag[0] == "F"
            else tag[1]
            for tag in state["slots"]
        ]
        part._free_slots = list(state["free"])
        part._heap = bytearray(state["heap"])
        part._heap_used = state["heap_used"]
        part._live = state["live"]
        part.version = state["version"]
        return part
