"""Relation schemas: fields, types, and Date-style foreign keys.

Section 2.1 of the paper: if foreign keys are identified "in the manner
proposed by Date", the MM-DBMS substitutes a tuple-pointer field for the
foreign-key field.  A :class:`ForeignKey` declaration on a :class:`Field`
instructs :class:`repro.engine.database.MainMemoryDatabase` to perform that
substitution on insert, which is what makes precomputed joins possible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SchemaError


class FieldType(enum.Enum):
    """Supported column types.

    ``INT`` and ``FLOAT`` are fixed-size and stored inline in the tuple
    slot.  ``STR`` is variable-length: the slot holds a pointer into the
    partition's heap space (paper Section 2.1).  ``REF`` is a tuple pointer
    — the materialised form of a foreign key.
    """

    INT = "int"
    FLOAT = "float"
    STR = "str"
    REF = "ref"

    @property
    def inline_bytes(self) -> int:
        """Bytes occupied in the fixed-size tuple slot.

        Uses the paper's era-appropriate sizes: 4-byte integers and
        pointers, 8-byte floats.  A STR field occupies a 4-byte heap
        pointer plus a 2-byte length in the slot.
        """
        if self is FieldType.INT:
            return 4
        if self is FieldType.FLOAT:
            return 8
        if self is FieldType.STR:
            return 6
        return 4  # REF: one tuple pointer

    def validate(self, value: object) -> None:
        """Raise :class:`SchemaError` if ``value`` does not fit this type."""
        if value is None:
            return  # NULLs are allowed in every column
        if self is FieldType.INT and not isinstance(value, int):
            raise SchemaError(f"expected int, got {type(value).__name__}")
        if self is FieldType.FLOAT and not isinstance(value, (int, float)):
            raise SchemaError(f"expected float, got {type(value).__name__}")
        if self is FieldType.STR and not isinstance(value, str):
            raise SchemaError(f"expected str, got {type(value).__name__}")


@dataclass(frozen=True)
class ForeignKey:
    """Declares that a field references the key of another relation.

    ``relation`` names the referenced relation and ``field`` the referenced
    (unique-indexed) field there.  When a tuple is inserted, the engine
    looks the value up in the referenced relation and stores the resulting
    tuple pointer instead of the value — Section 2.1's precomputed join.
    """

    relation: str
    field: str


@dataclass(frozen=True)
class Field:
    """One column of a relation schema."""

    name: str
    type: FieldType
    references: Optional[ForeignKey] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("field name must be non-empty")
        if self.references is not None and self.type is FieldType.REF:
            raise SchemaError(
                "declare foreign keys on the value type (e.g. INT); the "
                "engine converts them to REF fields internally"
            )


class Schema:
    """An ordered collection of :class:`Field` definitions.

    The schema used by the storage layer is the *physical* schema: foreign
    key fields declared by the user are converted to ``REF`` fields by
    :meth:`physical`, and the logical declaration is retained so that
    queries can still address the column by name and get the referenced
    value back.
    """

    def __init__(self, fields: Sequence[Field]) -> None:
        if not fields:
            raise SchemaError("a schema needs at least one field")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate field names in {names}")
        self._fields: Tuple[Field, ...] = tuple(fields)
        self._index_of: Dict[str, int] = {
            f.name: i for i, f in enumerate(self._fields)
        }

    @property
    def fields(self) -> Tuple[Field, ...]:
        """The fields, in declaration order."""
        return self._fields

    @property
    def names(self) -> List[str]:
        """Field names in declaration order."""
        return [f.name for f in self._fields]

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self):
        return iter(self._fields)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._fields == other._fields

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{f.name}:{f.type.value}" for f in self._fields)
        return f"Schema({cols})"

    def field(self, name: str) -> Field:
        """Return the field named ``name`` or raise :class:`SchemaError`."""
        try:
            return self._fields[self._index_of[name]]
        except KeyError:
            raise SchemaError(
                f"no field {name!r}; have {self.names}"
            ) from None

    def position(self, name: str) -> int:
        """Return the slot position of field ``name``."""
        self.field(name)  # raises on unknown names
        return self._index_of[name]

    def foreign_keys(self) -> List[Field]:
        """All fields carrying a :class:`ForeignKey` declaration."""
        return [f for f in self._fields if f.references is not None]

    def physical(self) -> "Schema":
        """The physical schema: FK fields become tuple-pointer fields."""
        converted = [
            Field(f.name, FieldType.REF) if f.references is not None else f
            for f in self._fields
        ]
        return Schema(converted)

    def fixed_slot_bytes(self) -> int:
        """Bytes per tuple slot under the physical layout."""
        return sum(f.type.inline_bytes for f in self.physical())

    def validate_row(self, values: Sequence[object]) -> None:
        """Type-check a row of raw (logical) values against the schema."""
        if len(values) != len(self._fields):
            raise SchemaError(
                f"row has {len(values)} values, schema has "
                f"{len(self._fields)} fields"
            )
        for field_def, value in zip(self._fields, values):
            field_def.type.validate(value)
