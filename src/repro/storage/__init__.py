"""Storage engine: partitions, tuples, relations, and temporary lists.

This package implements the MM-DBMS storage architecture of Section 2 of
the paper:

* relations are broken into *partitions* (the unit of recovery, sized like
  one or two disk tracks) — :mod:`repro.storage.partition`;
* tuples never move once entered; variable-length fields live in the
  partition's heap space and are referenced by pointers from the fixed-size
  tuple slot — :mod:`repro.storage.tuples`;
* relations may not be traversed directly; all access goes through an
  index — :mod:`repro.storage.relation`;
* foreign-key fields are materialised as tuple pointers, enabling
  precomputed joins — :mod:`repro.storage.schema` declares them;
* intermediate query results are *temporary lists* of tuple pointers plus a
  result descriptor — :mod:`repro.storage.temporary`.
"""

from repro.storage.catalog import Catalog
from repro.storage.partition import Partition, PartitionConfig
from repro.storage.relation import Relation
from repro.storage.schema import Field, FieldType, ForeignKey, Schema
from repro.storage.temporary import ResultColumn, ResultDescriptor, TemporaryList
from repro.storage.tuples import TupleRef

__all__ = [
    "Catalog",
    "Field",
    "FieldType",
    "ForeignKey",
    "Partition",
    "PartitionConfig",
    "Relation",
    "ResultColumn",
    "ResultDescriptor",
    "Schema",
    "TemporaryList",
    "TupleRef",
]
