"""Tuple pointers and heap pointers.

In the paper's MM-DBMS, "tuples in a partition will be referred to directly
by memory addresses, so tuples must not change locations once they have been
entered into the database" (Section 2.1).  Python has no raw addresses, so
the reproduction uses :class:`TupleRef` — a (partition id, slot) pair that
dereferences in O(1) through the owning relation's partition table.  All the
properties the paper relies on hold:

* a ``TupleRef`` is small (one machine word each for partition and slot);
* it is stable for the lifetime of the tuple (tuples never move; a rare
  heap overflow leaves a forwarding address, see
  :mod:`repro.storage.partition`);
* indexes store ``TupleRef``\\ s instead of key values and extract the key
  through the pointer on demand (Section 2.2);
* equality and hashing are identity-like and cheap, which is what makes
  pointer-based joins (Query 2 in the paper) faster than value joins.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class TupleRef:
    """A stable pointer to a tuple slot: ``(partition_id, slot)``.

    Ordering is defined (lexicographic on the pair) only so that pointer
    lists can be sorted deterministically in tests; it carries no semantic
    meaning.
    """

    partition_id: int
    slot: int

    def __reduce__(self):
        # Compact pickling: morsel workers and partition snapshots move
        # refs across the process boundary in bulk, and the positional
        # form is several times smaller/faster than dataclass state.
        return (TupleRef, (self.partition_id, self.slot))

    def __repr__(self) -> str:
        return f"TupleRef({self.partition_id}:{self.slot})"


@dataclass(frozen=True)
class HeapPtr:
    """A pointer into a partition's heap space for a variable-length field.

    The tuple slot stores this pointer; the bytes live in the heap
    (Section 2.1: "the tuple itself will contain a pointer to the field in
    the partition's heap space, so tuple growth will not cause tuples to
    move").
    """

    offset: int
    length: int
