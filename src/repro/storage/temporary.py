"""Temporary lists: intermediate query results (paper Section 2.3).

"A temporary list is a list of tuple pointers plus an associated result
descriptor.  The pointers point to the source relation(s) from which the
temporary relation was formed, and the result descriptor identifies the
fields that are contained in the relation that the temporary list
represents.  The descriptor takes the place of projection — no width
reduction is ever done ...  Unlike regular relations, a temporary list can
be traversed directly; however, it is also possible to have an index on a
temporary list."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import QueryError, SchemaError
from repro.indexes import INDEX_KINDS
from repro.indexes.base import Index
from repro.instrument import count_traverse
from repro.storage.relation import Relation
from repro.storage.tuples import TupleRef


@dataclass(frozen=True)
class ResultColumn:
    """One output column: which source slot it comes from, and the field.

    ``source`` is the position within each result row's pointer tuple (a
    join of two relations produces rows of two pointers; Figure 1's result
    list holds (Employee ptr, Department ptr) pairs).
    """

    source: int
    field: str
    label: Optional[str] = None

    @property
    def name(self) -> str:
        """The column's output name."""
        return self.label if self.label is not None else self.field


class ResultDescriptor:
    """Describes the visible fields of a temporary list.

    Holds the source relations (in pointer-tuple order) and the projected
    columns.  Projection by descriptor costs nothing at query time: "no
    width reduction is ever done, so there is little motivation for
    computing projections before the last step of query processing unless
    a significant number of duplicates can be eliminated".
    """

    def __init__(
        self,
        sources: Sequence[Relation],
        columns: Sequence[ResultColumn],
    ) -> None:
        if not sources:
            raise QueryError("a result descriptor needs at least one source")
        self.sources: Tuple[Relation, ...] = tuple(sources)
        for col in columns:
            if not 0 <= col.source < len(self.sources):
                raise QueryError(
                    f"column {col.name!r} references source {col.source}, "
                    f"but there are only {len(self.sources)} sources"
                )
            # Validate the field exists now rather than at materialisation.
            self.sources[col.source].physical_schema.position(col.field)
        self.columns: Tuple[ResultColumn, ...] = tuple(columns)
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate output column names: {names}")

    @property
    def column_names(self) -> List[str]:
        """Output column names in order."""
        return [c.name for c in self.columns]

    def column(self, name: str) -> ResultColumn:
        """Find a column by output name.

        Resolution is forgiving about qualification: an exact label match
        wins; otherwise a bare name matches a uniquely determined
        ``Relation.name`` label, and a qualified ``Relation.field`` name
        matches the column with that source relation and field even when
        its label is unqualified.  Ambiguity raises.
        """
        for col in self.columns:
            if col.name == name:
                return col
        # Bare name against qualified labels ("Age" -> "Employee.Age").
        suffix_matches = [
            col for col in self.columns
            if "." in col.name and col.name.rsplit(".", 1)[1] == name
        ]
        if len(suffix_matches) == 1:
            return suffix_matches[0]
        if len(suffix_matches) > 1:
            raise QueryError(
                f"column {name!r} is ambiguous: "
                f"{[c.name for c in suffix_matches]}"
            )
        # Qualified name against source relation + field.
        if "." in name:
            rel_name, field_name = name.rsplit(".", 1)
            qualified_matches = [
                col for col in self.columns
                if self.sources[col.source].name == rel_name
                and col.field == field_name
            ]
            if len(qualified_matches) == 1:
                return qualified_matches[0]
            if len(qualified_matches) > 1:
                raise QueryError(
                    f"column {name!r} is ambiguous (self-join); use the "
                    f"output labels {self.column_names}"
                )
        raise QueryError(
            f"no result column {name!r}; have {self.column_names}"
        )

    def project(self, names: Sequence[str]) -> "ResultDescriptor":
        """A narrower descriptor over the same sources — zero-copy
        projection (Section 2.3)."""
        return ResultDescriptor(self.sources, [self.column(n) for n in names])

    @classmethod
    def whole_relation(cls, relation: Relation) -> "ResultDescriptor":
        """Descriptor exposing every field of a single relation."""
        columns = [
            ResultColumn(0, f.name) for f in relation.physical_schema.fields
        ]
        return cls([relation], columns)


class TemporaryList:
    """A directly traversable list of tuple-pointer rows.

    Each row is a tuple of :class:`TupleRef` — one pointer per source
    relation.  Materialising values follows the pointers; nothing is ever
    copied out of the base relations (the paper: "tuples are never copied,
    only pointed to").
    """

    def __init__(
        self,
        descriptor: ResultDescriptor,
        rows: Optional[List[Tuple[TupleRef, ...]]] = None,
    ) -> None:
        self.descriptor = descriptor
        self._rows: List[Tuple[TupleRef, ...]] = rows if rows is not None else []
        self._indexes: Dict[str, Index] = {}

    # ------------------------------------------------------------------ #
    # list behaviour (temporary lists ARE directly traversable)
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Tuple[TupleRef, ...]]:
        return iter(self._rows)

    def __getitem__(self, i: int) -> Tuple[TupleRef, ...]:
        return self._rows[i]

    def append(self, row: Tuple[TupleRef, ...]) -> None:
        """Add one pointer row (arity-checked against the descriptor)."""
        if len(row) != len(self.descriptor.sources):
            raise QueryError(
                f"row arity {len(row)} != source count "
                f"{len(self.descriptor.sources)}"
            )
        self._rows.append(row)
        for index in self._indexes.values():
            index.insert(row)

    def extend(self, rows: Sequence[Tuple[TupleRef, ...]]) -> None:
        """Bulk-append pointer rows (one arity check pass, one splice).

        The batch engine drains operator pipelines through this instead
        of per-row :meth:`append`, so the common no-index case is a
        single list splice.
        """
        arity = len(self.descriptor.sources)
        for row in rows:
            if len(row) != arity:
                raise QueryError(
                    f"row arity {len(row)} != source count {arity}"
                )
        self._rows.extend(rows)
        for index in self._indexes.values():
            for row in rows:
                index.insert(row)

    def rows(self) -> List[Tuple[TupleRef, ...]]:
        """The underlying pointer rows (shared, not copied)."""
        return self._rows

    # ------------------------------------------------------------------ #
    # value access
    # ------------------------------------------------------------------ #

    def value_extractor(
        self, column_name: str
    ) -> Callable[[Tuple[TupleRef, ...]], Any]:
        """A function mapping a pointer row to one output column's value."""
        col = self.descriptor.column(column_name)
        relation = self.descriptor.sources[col.source]
        position = relation.physical_schema.position(col.field)
        source = col.source

        def extract(row: Tuple[TupleRef, ...]) -> Any:
            count_traverse()
            part, slot = relation._locate(row[source])
            return part.read_field(slot, position)

        return extract

    def materialize_row(
        self, row: Tuple[TupleRef, ...], resolve_refs: bool = False
    ) -> Tuple[Any, ...]:
        """Follow the pointers of one row and return its visible values.

        With ``resolve_refs=True``, a foreign-key pointer field is
        presented as the referenced key value — one extra pointer follow,
        the paper's "simply follow the pointer to the foreign relation
        tuple to obtain the desired value".
        """
        values = []
        for col in self.descriptor.columns:
            relation = self.descriptor.sources[col.source]
            count_traverse()
            value = relation.read_field(row[col.source], col.field)
            if resolve_refs and isinstance(value, TupleRef):
                logical = relation.schema.field(col.field)
                if logical.references is not None:
                    count_traverse()
                    value = self._follow_fk(relation, logical, value)
            values.append(value)
        return tuple(values)

    @staticmethod
    def _follow_fk(relation: Relation, logical_field, pointer: TupleRef) -> Any:
        """Resolve a foreign-key pointer to the referenced key value.

        Relations know only their own storage, so the engine facade wires
        a catalog-aware ``fk_resolver`` attribute onto each relation; when
        absent (bare storage-layer use) the raw pointer is returned.
        """
        resolver = getattr(relation, "fk_resolver", None)
        if resolver is None:
            return pointer
        return resolver(logical_field.references, pointer)

    def materialize(self, resolve_refs: bool = False) -> List[Tuple[Any, ...]]:
        """Materialise every row — the final step of query processing."""
        return [self.materialize_row(row, resolve_refs) for row in self._rows]

    def to_dicts(self, resolve_refs: bool = False) -> List[Dict[str, Any]]:
        """Materialise as dictionaries keyed by output column name."""
        names = self.descriptor.column_names
        return [
            dict(zip(names, vals)) for vals in self.materialize(resolve_refs)
        ]

    # ------------------------------------------------------------------ #
    # indexing a temporary list (paper: "it is also possible to have an
    # index on a temporary list")
    # ------------------------------------------------------------------ #

    def create_index(
        self,
        index_name: str,
        column_name: str,
        kind: str = "chained_hash",
        unique: bool = False,
        **index_options: Any,
    ) -> Index:
        """Build an index over one output column of this temporary list."""
        if index_name in self._indexes:
            raise SchemaError(f"index {index_name!r} already exists")
        try:
            index_cls = INDEX_KINDS[kind]
        except KeyError:
            raise SchemaError(f"unknown index kind {kind!r}") from None
        index = index_cls(
            key_of=self.value_extractor(column_name),
            unique=unique,
            **index_options,
        )
        index.field_name = column_name
        for row in self._rows:
            index.insert(row)
        self._indexes[index_name] = index
        return index

    def index(self, index_name: str) -> Index:
        """Look up an index by name."""
        try:
            return self._indexes[index_name]
        except KeyError:
            raise SchemaError(f"no index {index_name!r} on temporary list") from None

    # ------------------------------------------------------------------ #
    # derivation helpers used by the executor
    # ------------------------------------------------------------------ #

    def project(self, names: Sequence[str]) -> "TemporaryList":
        """Descriptor-only projection: same rows, narrower descriptor."""
        return TemporaryList(self.descriptor.project(names), self._rows)

    @classmethod
    def from_refs(
        cls, relation: Relation, refs: Sequence[TupleRef]
    ) -> "TemporaryList":
        """Wrap single-relation pointers as a temporary list."""
        descriptor = ResultDescriptor.whole_relation(relation)
        return cls(descriptor, [(ref,) for ref in refs])
