"""The catalog: name → relation mapping plus foreign-key wiring.

The catalog is where the engine resolves :class:`repro.storage.schema.ForeignKey`
declarations against referenced relations, and where recovery finds every
partition in the database.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.errors import CatalogError
from repro.storage.partition import Partition, PartitionConfig
from repro.storage.relation import Relation
from repro.storage.schema import Schema


class Catalog:
    """All relations of one database instance."""

    def __init__(self) -> None:
        self._relations: Dict[str, Relation] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    @property
    def names(self) -> List[str]:
        """Relation names in creation order."""
        return list(self._relations)

    def create_relation(
        self,
        name: str,
        schema: Schema,
        partition_config: PartitionConfig = None,
    ) -> Relation:
        """Register a new relation; validates FK targets exist."""
        if name in self._relations:
            raise CatalogError(f"relation {name!r} already exists")
        for field in schema.foreign_keys():
            fk = field.references
            if fk.relation not in self._relations and fk.relation != name:
                raise CatalogError(
                    f"{name}.{field.name} references unknown relation "
                    f"{fk.relation!r}"
                )
        relation = Relation(name, schema, partition_config)
        self._relations[name] = relation
        return relation

    def relation(self, name: str) -> Relation:
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise CatalogError(
                f"no relation {name!r}; have {self.names}"
            ) from None

    def drop_relation(self, name: str) -> None:
        """Remove a relation, refusing while other relations reference it."""
        self.relation(name)  # raises if absent
        for other in self._relations.values():
            if other.name == name:
                continue
            for field in other.schema.foreign_keys():
                if field.references.relation == name:
                    raise CatalogError(
                        f"cannot drop {name!r}: referenced by "
                        f"{other.name}.{field.name}"
                    )
        del self._relations[name]

    def all_partitions(self) -> List[Tuple[str, Partition]]:
        """Every (relation name, partition) pair — the recovery unit list."""
        result = []
        for relation in self._relations.values():
            for part in relation.partitions:
                result.append((relation.name, part))
        return result
