"""Plan cache: skip lexing, parsing, and optimisation for repeat SQL.

Two LRU layers keyed on normalized statement text:

* an **AST cache** (``plan_ast``) that skips the lexer and recursive-
  descent parser, and
* a **plan cache** (``plan``) that additionally skips the optimizer's
  access-path selection for the read core of a SELECT.

Cached plans carry the version of every relation in their dependency
closure; :meth:`PlanCache.plan_for` validates those versions on every
hit, so DDL (index create/drop, table drop) and mutations that could
change the optimizer's choice invalidate entries lazily in O(relations-
in-plan) without a catalog-wide sweep.
"""

from __future__ import annotations

import re
from typing import Any, Optional, Tuple

from repro.cache.fingerprint import (
    FingerprintError,
    dependency_closure,
    plan_relations,
)
from repro.cache.lru import LRUCache
from repro.errors import CatalogError
from repro.obs import runtime as obs_runtime

_WHITESPACE = re.compile(r"\s+")


def _record(layer: str, outcome: str) -> None:
    """Count one cache request into the active metrics registry."""
    obs = obs_runtime.active()
    if obs is not None:
        obs.metric_inc("cache_requests_total", layer=layer, outcome=outcome)


def normalize_sql(text: str) -> str:
    """Canonical cache key for a SQL statement.

    Strips surrounding whitespace and a trailing ``;`` and collapses
    internal whitespace runs — but only when the statement contains no
    quote character, because whitespace inside string literals is
    significant (``'a  b'`` and ``'a b'`` are different constants).
    """
    text = text.strip()
    if text.endswith(";"):
        text = text[:-1].rstrip()
    if "'" not in text and '"' not in text:
        text = _WHITESPACE.sub(" ", text)
    return text


class PlanCache:
    """Normalized-text → AST and normalized-text → optimized-plan caches."""

    def __init__(self, ast_capacity: int = 128, plan_capacity: int = 128) -> None:
        self.ast_cache = LRUCache(ast_capacity, "plan_ast")
        self.plan_cache = LRUCache(plan_capacity, "plan")

    # -- parsed-statement layer -------------------------------------------

    def statement_for(self, key: Any):
        """Cached parsed AST for a normalized statement key, or None."""
        statement = self.ast_cache.get(key)
        _record("ast", "miss" if statement is None else "hit")
        return statement

    def store_statement(self, key: Any, statement) -> None:
        self.ast_cache.put(key, statement)

    # -- optimized-plan layer ---------------------------------------------

    def plan_for(self, key: Any, catalog) -> Optional[Any]:
        """Cached optimized plan for ``key`` if still valid, else None.

        A stale entry (any depended-on relation changed version, or was
        dropped) is discarded before reporting a miss.
        """
        entry = self.plan_cache.get(key)
        if entry is None:
            _record("plan", "miss")
            return None
        plan, versions = entry
        for name, version in versions.items():
            try:
                relation = catalog.relation(name)
            except CatalogError:
                relation = None
            if relation is None or relation.version != version:
                self.plan_cache.invalidate(key)
                _record("plan", "stale")
                return None
        _record("plan", "hit")
        return plan

    def store_plan(self, key: Any, plan, catalog) -> None:
        """Record an optimized plan with its dependency versions.

        Plans the fingerprinter cannot analyse (or whose relations have
        already been dropped) are silently left uncached.
        """
        try:
            closure = dependency_closure(catalog, plan_relations(plan))
            versions = {
                name: catalog.relation(name).version for name in closure
            }
        except (FingerprintError, CatalogError):
            return
        self.plan_cache.put(key, (plan, versions))

    # -- maintenance ------------------------------------------------------

    def clear(self) -> None:
        self.ast_cache.clear()
        self.plan_cache.clear()

    def stats(self) -> dict:
        return {
            "ast": self.ast_cache.stats(),
            "plan": self.plan_cache.stats(),
        }
