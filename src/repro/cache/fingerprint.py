"""Canonical plan fingerprints and dependency extraction.

The result-reuse cache keys cached :class:`TemporaryList`\\ s on a
*canonical plan fingerprint*: a nested tuple that is equal exactly when
two plan trees would compute the same result over the same relation
versions.  Alongside the fingerprint, :func:`plan_relations` names every
relation a plan reads — including foreign-key targets reached through
rewritten predicates — so staleness checks are O(relations-in-plan).

Plans containing user-supplied predicate objects the fingerprinter does
not understand raise :class:`FingerprintError`; callers treat such plans
as uncacheable and simply execute them.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, Tuple

from repro.errors import CatalogError
from repro.query.plan import (
    FilterNode,
    IndexLookupNode,
    IndexMultiLookupNode,
    IndexRangeNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
)
from repro.query.predicates import Comparison, Conjunction, Disjunction, Predicate
from repro.storage.tuples import TupleRef

#: Attribute used to memoize a node's fingerprint (plans are never mutated
#: after construction, so the memo cannot go stale).
_FP_ATTR = "_repro_fingerprint"
_DEPS_ATTR = "_repro_dependencies"


class FingerprintError(Exception):
    """The plan contains a node or value the fingerprinter cannot
    canonicalise; the plan is executable but not cacheable."""


def _value_fingerprint(value: Any) -> Any:
    """Canonical, hashable form of a literal embedded in a plan."""
    if value is None or isinstance(value, (int, float, str, bool)):
        return value
    if isinstance(value, TupleRef):
        return ("ref", value.partition_id, value.slot)
    if isinstance(value, tuple):
        return tuple(_value_fingerprint(v) for v in value)
    raise FingerprintError(f"uncacheable literal {value!r}")


def _predicate_fingerprint(predicate: Predicate) -> Tuple:
    if isinstance(predicate, Comparison):
        return (
            "cmp",
            predicate.field,
            predicate.op.value,
            _value_fingerprint(predicate.value),
            _value_fingerprint(predicate.high),
        )
    if isinstance(predicate, Conjunction):
        return ("and",) + tuple(
            _predicate_fingerprint(p) for p in predicate.parts
        )
    if isinstance(predicate, Disjunction):
        return ("or",) + tuple(
            _predicate_fingerprint(p) for p in predicate.parts
        )
    # Engine-internal predicate classes (imported lazily: the engine
    # module imports this package at load time).
    from repro.engine.database import _FKValueComparison, _NeverMatches

    if isinstance(predicate, _NeverMatches):
        return ("never", predicate.field_name)
    if isinstance(predicate, _FKValueComparison):
        return (
            "fk",
            _predicate_fingerprint(predicate.comparison),
            predicate.target.name,
            predicate.key_field,
        )
    raise FingerprintError(
        f"uncacheable predicate {type(predicate).__name__}"
    )


def _predicate_relations(predicate: Predicate) -> FrozenSet[str]:
    """Relations a predicate reads *in addition to* its host relation."""
    if isinstance(predicate, (Conjunction, Disjunction)):
        deps: FrozenSet[str] = frozenset()
        for part in predicate.parts:
            deps |= _predicate_relations(part)
        return deps
    from repro.engine.database import _FKValueComparison

    if isinstance(predicate, _FKValueComparison):
        return frozenset((predicate.target.name,))
    return frozenset()


def plan_fingerprint(plan: PlanNode) -> Tuple:
    """Canonical nested-tuple fingerprint of a plan tree (memoized)."""
    cached = getattr(plan, _FP_ATTR, None)
    if cached is not None:
        return cached
    if isinstance(plan, ScanNode):
        pred = (
            None if plan.predicate is None
            else _predicate_fingerprint(plan.predicate)
        )
        fp: Tuple = ("scan", plan.relation_name, pred)
    elif isinstance(plan, IndexLookupNode):
        fp = (
            "lookup",
            plan.relation_name,
            plan.field_name,
            plan.prefer,
            _value_fingerprint(plan.key),
        )
    elif isinstance(plan, IndexMultiLookupNode):
        fp = (
            "multilookup",
            plan.relation_name,
            plan.field_name,
            plan.prefer,
            _value_fingerprint(plan.keys),
        )
    elif isinstance(plan, IndexRangeNode):
        fp = (
            "range",
            plan.relation_name,
            plan.field_name,
            _value_fingerprint(plan.low),
            _value_fingerprint(plan.high),
            plan.include_low,
            plan.include_high,
        )
    elif isinstance(plan, FilterNode):
        fp = (
            "filter",
            plan_fingerprint(plan.child),
            _predicate_fingerprint(plan.predicate),
        )
    elif isinstance(plan, JoinNode):
        fp = (
            "join",
            plan.method,
            plan.op,
            plan.left_col,
            plan.right_col,
            plan_fingerprint(plan.left),
            plan_fingerprint(plan.right),
        )
    elif isinstance(plan, ProjectNode):
        fp = (
            "project",
            plan_fingerprint(plan.child),
            plan.columns,
            plan.deduplicate,
            plan.dedup_method,
        )
    else:
        raise FingerprintError(f"uncacheable plan node {type(plan).__name__}")
    setattr(plan, _FP_ATTR, fp)
    return fp


def plan_relations(plan: PlanNode) -> FrozenSet[str]:
    """Every relation a plan reads directly (memoized), pre-closure."""
    cached = getattr(plan, _DEPS_ATTR, None)
    if cached is not None:
        return cached
    if isinstance(plan, (IndexLookupNode, IndexMultiLookupNode, IndexRangeNode)):
        deps = frozenset((plan.relation_name,))
    elif isinstance(plan, ScanNode):
        deps = frozenset((plan.relation_name,))
        if plan.predicate is not None:
            deps |= _predicate_relations(plan.predicate)
    elif isinstance(plan, FilterNode):
        deps = plan_relations(plan.child) | _predicate_relations(plan.predicate)
    elif isinstance(plan, JoinNode):
        deps = plan_relations(plan.left) | plan_relations(plan.right)
    elif isinstance(plan, ProjectNode):
        deps = plan_relations(plan.child)
    else:
        raise FingerprintError(f"uncacheable plan node {type(plan).__name__}")
    # A cost-ordered plan's shape depends on the statistics of every
    # relation the orderer looked at; the root records them so staleness
    # checks cover the full set even if the plan itself were to drop a
    # scan leaf.
    extra = getattr(plan, "_repro_extra_relations", None)
    if extra:
        deps |= frozenset(extra)
    setattr(plan, _DEPS_ATTR, deps)
    return deps


def dependency_closure(catalog, names: Iterable[str]) -> FrozenSet[str]:
    """``names`` plus every relation reachable through foreign keys.

    Plans and results can embed resolved tuple pointers into FK target
    relations (the paper's precomputed-join substitution), so a cached
    entry is stale whenever *any* relation in this closure changes.
    """
    closure = set()
    frontier = list(names)
    while frontier:
        name = frontier.pop()
        if name in closure:
            continue
        closure.add(name)
        relation = catalog.relation(name)  # raises CatalogError if dropped
        for field in relation.schema.foreign_keys():
            if field.references.relation not in closure:
                frontier.append(field.references.relation)
    return frozenset(closure)


def dependency_versions(catalog, plan: PlanNode):
    """``{relation name: version}`` for a plan's full dependency closure."""
    closure = dependency_closure(catalog, plan_relations(plan))
    return {name: catalog.relation(name).version for name in closure}


def versions_current(catalog, versions) -> bool:
    """Whether every recorded (name, version) pair still holds."""
    for name, version in versions.items():
        try:
            relation = catalog.relation(name)
        except CatalogError:
            return False
        if relation.version != version:
            return False
    return True
