"""Bounded LRU map shared by the reuse caches.

A thin ``OrderedDict`` wrapper that records hits, misses, evictions, and
explicit invalidations both locally (for ``cache_stats()`` reports) and
through the instrumentation counters (``<prefix>_hits`` etc. land in the
active :class:`~repro.instrument.OpCounters` scope, so benchmarks can
report reuse rates alongside the paper's comparison/move counters).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.instrument import count_event

_MISSING = object()


class LRUCache:
    """Least-recently-used cache with instrumented hit/miss/evict stats."""

    def __init__(self, capacity: int, event_prefix: str) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be at least 1")
        self.capacity = capacity
        self.event_prefix = event_prefix
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        return key in self._entries

    def items(self) -> Iterator[Tuple[Any, Any]]:
        """(key, value) pairs, least-recently-used first."""
        return iter(self._entries.items())

    def get(self, key: Any) -> Optional[Any]:
        """Return the cached value (refreshing recency), or None."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            count_event(f"{self.event_prefix}_misses")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        count_event(f"{self.event_prefix}_hits")
        return value

    def put(self, key: Any, value: Any) -> None:
        """Insert or refresh an entry, evicting the LRU one if over
        capacity."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            count_event(f"{self.event_prefix}_evictions")

    def invalidate(self, key: Any) -> bool:
        """Drop one entry (a version-staleness discard, not an LRU
        eviction); returns whether it was present."""
        if key in self._entries:
            del self._entries[key]
            self.invalidations += 1
            count_event(f"{self.event_prefix}_invalidations")
            return True
        return False

    def clear(self) -> None:
        """Drop every entry (stats are kept)."""
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Current size plus lifetime hit/miss/evict/invalidate counts."""
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }
