"""Result-reuse cache: memoized subtree and statement results.

Implements the reuse layer sketched in Dursun et al., "Revisiting Reuse
in Main Memory Database Systems": because every intermediate result in
the MM-DBMS design is a :class:`TemporaryList` of *tuple pointers* (not
copied data), a memoized subtree result stays truthful as long as the
underlying relations are unchanged — which the relation version counters
certify in O(relations-in-plan).

Two keyspaces share one LRU:

* ``("plan", fingerprint)`` — executor subtree results, hit from
  :meth:`Executor.execute` before dispatching a plan node; and
* ``("stmt", key)`` — final SELECT statement results (after projection,
  aggregation, ORDER BY, LIMIT), hit from the SQL interpreter.

Payloads are snapshotted on store and re-snapshotted on hit so callers
can never mutate a cached row list; each copy is charged to the ``moves``
counter (the reuse path's honest cost — still far below re-executing).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Tuple

from repro.cache.fingerprint import (
    FingerprintError,
    dependency_closure,
    dependency_versions,
    plan_fingerprint,
    versions_current,
)
from repro.cache.lru import LRUCache
from repro.errors import CatalogError
from repro.instrument import count_move
from repro.obs import runtime as obs_runtime
from repro.query.aggregate import ValueTable
from repro.storage.temporary import TemporaryList


def _snapshot(payload: Any) -> Any:
    """Defensive copy of a cacheable payload, charged as data movement."""
    if isinstance(payload, TemporaryList):
        rows = payload.rows()
        count_move(len(rows))
        return TemporaryList(payload.descriptor, list(rows))
    if isinstance(payload, ValueTable):
        rows = payload.rows()
        count_move(len(rows))
        return ValueTable(payload.columns, list(rows))
    return payload


class ResultCache:
    """Version-validated LRU of executor and statement results."""

    def __init__(self, catalog, capacity: int = 64) -> None:
        self.catalog = catalog
        self.cache = LRUCache(capacity, "result")

    # -- executor subtree layer -------------------------------------------

    def lookup_plan(self, plan) -> Optional[Any]:
        """Cached result for a plan subtree, or None (stale entries are
        discarded)."""
        try:
            key = ("plan", plan_fingerprint(plan))
        except FingerprintError:
            return None
        return self._lookup(key)

    def store_plan(self, plan, result) -> None:
        try:
            key = ("plan", plan_fingerprint(plan))
            versions = dependency_versions(self.catalog, plan)
        except (FingerprintError, CatalogError):
            return
        self.cache.put(key, (versions, _snapshot(result)))

    # -- statement layer ---------------------------------------------------

    def lookup_statement(self, key: Any) -> Optional[Any]:
        return self._lookup(("stmt", key))

    def store_statement(
        self, key: Any, result, dep_names: Iterable[str]
    ) -> None:
        """Record a final statement result depending on ``dep_names``
        (closed over foreign keys)."""
        try:
            closure = dependency_closure(self.catalog, dep_names)
            versions = {
                name: self.catalog.relation(name).version for name in closure
            }
        except CatalogError:
            return
        self.cache.put(("stmt", key), (versions, _snapshot(result)))

    # -- shared internals --------------------------------------------------

    def _lookup(self, key: Tuple) -> Optional[Any]:
        obs = obs_runtime.active()
        layer = key[0] if isinstance(key, tuple) else "result"
        with (
            obs_runtime.NULL_SPAN
            if obs is None
            else obs.span(f"ResultCache[{layer}]", "cache", layer=layer)
        ) as span:
            outcome, payload = self._lookup_inner(key)
            if span is not None:
                span.attrs["outcome"] = outcome
                if payload is not None:
                    span.rows_out = self._payload_rows(payload)
        if obs is not None:
            obs.metric_inc("cache_requests_total", layer="result", outcome=outcome)
        return payload

    def _lookup_inner(self, key: Tuple) -> Tuple[str, Optional[Any]]:
        entry = self.cache.get(key)
        if entry is None:
            return "miss", None
        versions, payload = entry
        if not versions_current(self.catalog, versions):
            self.cache.invalidate(key)
            return "stale", None
        return "hit", _snapshot(payload)

    @staticmethod
    def _payload_rows(payload: Any) -> Optional[int]:
        try:
            return len(payload)
        except TypeError:
            return None

    def clear(self) -> None:
        self.cache.clear()

    def stats(self) -> dict:
        return self.cache.stats()
