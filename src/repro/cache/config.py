"""Configuration knobs for the query-reuse subsystem.

Caching is **off by default**: a :class:`MainMemoryDatabase` built
without a :class:`CacheConfig` behaves byte-for-byte like the un-cached
engine (same plans, same counters).  Benchmarks and applications opt in
via ``db.configure_cache(CacheConfig(...))`` or ``db.configure_cache()``
for the defaults.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CacheConfig:
    """Capacities and enable flags for the reuse caches."""

    #: LRU capacity of the normalized-SQL → parsed-AST cache.
    ast_capacity: int = 128
    #: LRU capacity of the normalized-SQL → optimized-plan cache.
    plan_capacity: int = 128
    #: LRU capacity of the fingerprint → result cache (subtree + statement).
    result_capacity: int = 64
    #: Master switch for the parse/plan layer.
    enable_plans: bool = True
    #: Master switch for the result-reuse layer.
    enable_results: bool = True
