"""Multi-layer query reuse: plan cache, prepared statements' plan keys,
and a versioned result-reuse cache.

See DESIGN.md ("Query reuse subsystem") for the layer diagram and the
invalidation protocol.  Everything here is opt-in; the engine's default
behaviour is unchanged when no :class:`CacheConfig` is installed.
"""

from repro.cache.config import CacheConfig
from repro.cache.fingerprint import (
    FingerprintError,
    dependency_closure,
    dependency_versions,
    plan_fingerprint,
    plan_relations,
    versions_current,
)
from repro.cache.lru import LRUCache
from repro.cache.plan_cache import PlanCache, normalize_sql
from repro.cache.result_cache import ResultCache

__all__ = [
    "CacheConfig",
    "FingerprintError",
    "LRUCache",
    "PlanCache",
    "ResultCache",
    "dependency_closure",
    "dependency_versions",
    "normalize_sql",
    "plan_fingerprint",
    "plan_relations",
    "versions_current",
]
