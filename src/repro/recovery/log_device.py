"""The active log device with its change-accumulation log.

"During normal operation, the log device reads the updates of committed
transactions from the stable log buffer and updates the disk copy of the
database.  The log device holds a change accumulation log, so it does not
need to update the disk version of the database every time a partition is
modified."

The device accumulates committed records per partition and propagates them
to the disk copy lazily (:meth:`LogDevice.propagate`).  At restart, the
records still pending for a partition are merged into its disk image "on
the fly" (:meth:`LogDevice.load_partition_with_merge`).
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.errors import HeapOverflowError, RecoveryError
from repro.fault import runtime as fault_runtime
from repro.obs import runtime as obs_runtime
from repro.recovery.disk import SimulatedDisk
from repro.recovery.log import LogRecord, StableLogBuffer, verify_record
from repro.storage.partition import Partition

PartitionKey = Tuple[str, int]


def _metric(name: str, amount: int, **labels) -> None:
    """Bump a log-device metric when observability is active."""
    if amount:
        obs = obs_runtime.active()
        if obs is not None:
            obs.metric_inc(name, amount, **labels)


def apply_record(partition: Partition, record: LogRecord) -> None:
    """Replay one physical log record against a partition image.

    Update replays that exhaust the image's bump-allocated heap trigger a
    compaction and retry — tuple slots never move, so replay determinism
    is preserved.

    Records sealed with a checksum are verified first: a record damaged
    between append and application raises
    :class:`~repro.errors.CorruptLogRecordError` *before* touching the
    partition, so a bad record never half-applies.
    """
    try:
        verify_record(record)
    except RecoveryError:
        obs = obs_runtime.active()
        if obs is not None:
            obs.metric_inc(
                "checksum_failures_total",
                device="log",
                kind="CorruptLogRecordError",
            )
        raise
    payload = record.payload
    if record.kind == "insert":
        try:
            partition.insert_at(payload["slot"], payload["values"])
        except HeapOverflowError:
            partition.compact()
            partition.insert_at(payload["slot"], payload["values"])
    elif record.kind == "update":
        try:
            partition.update_field(
                payload["slot"], payload["position"], payload["value"]
            )
        except HeapOverflowError:
            partition.compact()
            partition.update_field(
                payload["slot"], payload["position"], payload["value"]
            )
    elif record.kind == "delete":
        partition.delete(payload["slot"])
    elif record.kind == "forward":
        partition.set_forwarding(payload["slot"], payload["target"])
    else:
        raise RecoveryError(f"unknown log record kind {record.kind!r}")


class LogDevice:
    """Drains the stable buffer and maintains the disk copy."""

    def __init__(self, disk: SimulatedDisk, stable_log: StableLogBuffer) -> None:
        self.disk = disk
        self.stable_log = stable_log
        self._mutex = threading.Lock()
        self._accumulation: Dict[PartitionKey, List[LogRecord]] = {}
        self.records_absorbed = 0
        self.records_propagated = 0
        #: Absorb observers (the replication log shipper).  Empty — the
        #: default — costs one falsy check per absorb; the recovery wire
        #: stays byte-identical with replication off.
        self._sinks: List = []

    def add_sink(self, sink) -> None:
        """Register a callable fed every newly absorbed record batch."""
        self._sinks.append(sink)

    def remove_sink(self, sink) -> None:
        """Unregister a sink (tolerates one already removed)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    # ------------------------------------------------------------------ #
    # normal operation
    # ------------------------------------------------------------------ #

    def absorb(self) -> int:
        """Pull committed records from the stable buffer into the
        change-accumulation log.  Returns how many were absorbed."""
        records = self.stable_log.drain_committed()
        with self._mutex:
            for record in records:
                key = (record.relation, record.partition_id)
                self._accumulation.setdefault(key, []).append(record)
            self.records_absorbed += len(records)
        _metric("log_records_absorbed_total", len(records))
        if records and self._sinks:
            # Replication taps the accumulation log here: every record
            # that enters it is also offered to each registered sink.
            for sink in list(self._sinks):
                sink(records)
        return len(records)

    def ensure_base_image(self, relation: str, partition_id: int) -> None:
        """Create an empty base image for a brand-new partition."""
        if not self.disk.has_partition(relation, partition_id):
            # An empty partition image; its config defaults match the
            # relation's because replay re-creates content, not sizing.
            raise RecoveryError(
                f"no base image for {relation}[{partition_id}]; "
                "checkpoint the partition first"
            )

    def propagate(self, max_partitions: Optional[int] = None) -> int:
        """Apply accumulated records to the disk copy.

        Processes up to ``max_partitions`` partitions (all, when None) —
        the background behaviour of the paper's log device.  Returns the
        number of records applied.
        """
        with self._mutex:
            keys = list(self._accumulation)
            if max_partitions is not None:
                keys = keys[:max_partitions]
            batches = {key: self._accumulation.pop(key) for key in keys}
        applied = 0
        written = 0
        injector = fault_runtime.active()
        try:
            for key in list(batches):
                relation, partition_id = key
                if injector is not None:
                    # The crash window between absorb and propagation:
                    # an injected flush fault aborts here, and the
                    # except clause below requeues everything not yet
                    # written — a crash at this point loses nothing.
                    injector.fire(
                        "log.flush",
                        relation=relation,
                        partition=partition_id,
                    )
                records = batches[key]
                image = self.disk.read_partition(relation, partition_id)
                partition = Partition.from_bytes(image)
                for record in sorted(records, key=lambda r: r.lsn):
                    apply_record(partition, record)
                self.disk.write_partition(
                    relation, partition_id, partition.to_bytes()
                )
                batches[key] = []
                applied += len(records)
                written += 1
        except Exception:
            # Propagation is partition-atomic: fully-written partitions
            # keep their fresh images, everything else returns to the
            # accumulation log for the next propagate (or for restart's
            # on-the-fly merge).
            with self._mutex:
                for key, pending in batches.items():
                    if pending:
                        self._accumulation.setdefault(key, []).extend(
                            pending
                        )
                self.records_propagated += applied
            raise
        with self._mutex:
            self.records_propagated += applied
        _metric("log_records_propagated_total", applied)
        _metric("log_partition_writes_total", written)
        return applied

    # ------------------------------------------------------------------ #
    # restart support
    # ------------------------------------------------------------------ #

    def pending_for(self, relation: str, partition_id: int) -> List[LogRecord]:
        """Unpropagated records for one partition (copy, LSN order)."""
        with self._mutex:
            records = list(self._accumulation.get((relation, partition_id), ()))
        return sorted(records, key=lambda r: r.lsn)

    def discard_pending(self, relation: str, partition_id: int) -> int:
        """Drop accumulated records for a partition that was just
        checkpointed — its fresh disk image already reflects them.
        Returns the number of records discarded."""
        with self._mutex:
            records = self._accumulation.pop((relation, partition_id), [])
            self.records_propagated += len(records)
            return len(records)

    def pending_count(self) -> int:
        """Total unpropagated records across all partitions."""
        with self._mutex:
            return sum(len(v) for v in self._accumulation.values())

    def all_pending(self) -> List[LogRecord]:
        """Every unpropagated record, LSN order (replication bootstrap)."""
        with self._mutex:
            records = [
                record
                for batch in self._accumulation.values()
                for record in batch
            ]
        return sorted(records, key=lambda r: r.lsn)

    def load_partition_with_merge(
        self, relation: str, partition_id: int
    ) -> Partition:
        """Restart path: disk image + pending log records, merged on the
        fly.

        "Each partition that participates in the working set is read from
        the disk copy of the database.  The log device is checked for any
        updates to that partition that have not yet been propagated to
        the disk copy.  Any updates that exist are merged with the
        partition on the fly and the updated partition is placed in
        memory."

        The merged records are consumed (they are now reflected in
        memory and will be re-propagated from the reloaded state by the
        next checkpoint).
        """
        image = self.disk.read_partition(relation, partition_id)
        partition = Partition.from_bytes(image)
        with self._mutex:
            records = self._accumulation.pop((relation, partition_id), [])
        try:
            for record in sorted(records, key=lambda r: r.lsn):
                apply_record(partition, record)
        except Exception:
            # The merge failed (e.g. a corrupt record): nothing was
            # consumed.  Requeue so a retry — or the quarantine report —
            # still sees every pending record.
            with self._mutex:
                self._accumulation.setdefault(
                    (relation, partition_id), []
                ).extend(records)
            raise
        _metric("log_restart_merges_total", 1)
        _metric("log_restart_records_merged_total", len(records))
        if records:
            # The memory copy is now newer than the disk image; write the
            # merged image back so the disk copy converges too.
            self.disk.write_partition(
                relation, partition_id, partition.to_bytes()
            )
            with self._mutex:
                self.records_propagated += len(records)
        return partition

    def survive_crash(self) -> "LogDevice":
        """The log device and its accumulation log survive a crash of
        main memory (it is a separate device in Figure 2)."""
        return self
