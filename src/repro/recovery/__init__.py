"""Recovery (paper Section 2.4, Figure 2).

Components, matching Figure 2:

* :class:`~repro.recovery.log.StableLogBuffer` — battery-backed RAM that
  receives log records *before* updates are applied;
* :class:`~repro.recovery.disk.SimulatedDisk` — the disk copy of the
  database (partition images), with I/O counters;
* :class:`~repro.recovery.log_device.LogDevice` — "reads the updates of
  committed transactions from the stable log buffer and updates the disk
  copy of the database"; holds a change-accumulation log so it need not
  write the disk copy on every modification;
* :mod:`repro.recovery.restart` — crash restart: working-set partitions
  are read first (merging unpropagated log entries on the fly), the
  database resumes, and a background pass reloads the rest.
"""

from repro.recovery.disk import SimulatedDisk
from repro.recovery.log import CommitRecord, LogRecord, StableLogBuffer
from repro.recovery.log_device import LogDevice
from repro.recovery.restart import RecoveryManager, RestartStats

__all__ = [
    "CommitRecord",
    "LogDevice",
    "LogRecord",
    "RecoveryManager",
    "RestartStats",
    "SimulatedDisk",
    "StableLogBuffer",
]
