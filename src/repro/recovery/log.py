"""Log records and the stable log buffer.

"The MM-DBMS writes all log information directly into a stable log buffer
before the actual update is done to the database, as is done in IMS
FASTPATH.  If the transaction aborts, then the log entry is removed and no
undo is needed.  If the transaction commits, then the updates are
propagated to the database."

The stable buffer models battery-backed RAM: it survives a crash of the
main memory (the :meth:`StableLogBuffer.survive_crash` contract) but not a
media failure — that is what the disk copy is for.
"""

from __future__ import annotations

import pickle
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import CorruptLogRecordError
from repro.fault import runtime as fault_runtime


def record_checksum(
    lsn: int,
    txn_id: int,
    relation: str,
    partition_id: int,
    kind: str,
    payload: Dict[str, Any],
) -> int:
    """CRC32 over a record's canonical content (payload keys sorted)."""
    canonical = (
        lsn,
        txn_id,
        relation,
        partition_id,
        kind,
        tuple(sorted(payload.items(), key=lambda item: item[0])),
    )
    return zlib.crc32(pickle.dumps(canonical, protocol=4))


@dataclass(frozen=True)
class LogRecord:
    """One physical change to one partition.

    ``kind`` is "insert" | "update" | "delete" | "forward"; ``payload``
    carries the kind-specific fields (slot, values, position, target...).
    The (relation, partition) pair is the paper's recovery unit.

    ``checksum`` is sealed at append time by the stable buffer; replay
    verifies it (:func:`verify_record`) so a record damaged between
    append and application surfaces as a typed error instead of silent
    misreplay.  Hand-built records without a checksum skip verification.
    """

    lsn: int
    txn_id: int
    relation: str
    partition_id: int
    kind: str
    payload: Dict[str, Any]
    checksum: Optional[int] = None

    def sealed(self) -> "LogRecord":
        """A copy with its checksum computed from the current content."""
        return LogRecord(
            self.lsn,
            self.txn_id,
            self.relation,
            self.partition_id,
            self.kind,
            self.payload,
            record_checksum(
                self.lsn,
                self.txn_id,
                self.relation,
                self.partition_id,
                self.kind,
                self.payload,
            ),
        )


def verify_record(record: LogRecord) -> None:
    """Raise :class:`CorruptLogRecordError` on a checksum mismatch."""
    if record.checksum is None:
        return
    actual = record_checksum(
        record.lsn,
        record.txn_id,
        record.relation,
        record.partition_id,
        record.kind,
        record.payload,
    )
    if actual != record.checksum:
        raise CorruptLogRecordError(
            f"log record lsn={record.lsn} for "
            f"{record.relation}[{record.partition_id}] fails its checksum "
            f"(stored 0x{record.checksum:08x}, content 0x{actual:08x})"
        )


@dataclass(frozen=True)
class CommitRecord:
    """Marks ``txn_id`` as durably committed at ``lsn``."""

    lsn: int
    txn_id: int


class StableLogBuffer:
    """Battery-backed RAM holding log records until the log device drains
    them.

    Records of a transaction become visible to the log device only after
    its :class:`CommitRecord` arrives; aborting removes them outright.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._next_lsn = 1
        self._pending: Dict[int, List[LogRecord]] = {}
        self._committed: List[LogRecord] = []
        self.records_written = 0
        self.commits = 0
        self.aborts = 0

    def append(
        self,
        txn_id: int,
        relation: str,
        partition_id: int,
        kind: str,
        payload: Dict[str, Any],
    ) -> LogRecord:
        """Write one record on behalf of an active transaction.

        The record is sealed with its content checksum.  The
        ``log.append`` fault point can fail the append (``error``) or
        seal the record with a damaged checksum (``corrupt``), which
        replay later detects as :class:`CorruptLogRecordError`.
        """
        action = None
        injector = fault_runtime.active()
        if injector is not None:
            action = injector.fire(
                "log.append", relation=relation, partition=partition_id
            )
        with self._mutex:
            record = LogRecord(
                self._next_lsn, txn_id, relation, partition_id, kind, payload
            ).sealed()
            if action == "corrupt":
                record = LogRecord(
                    record.lsn,
                    record.txn_id,
                    record.relation,
                    record.partition_id,
                    record.kind,
                    record.payload,
                    record.checksum ^ 0xFFFF,
                )
            self._next_lsn += 1
            self._pending.setdefault(txn_id, []).append(record)
            self.records_written += 1
            return record

    def commit(self, txn_id: int) -> CommitRecord:
        """Seal a transaction's records; they become drainable."""
        with self._mutex:
            records = self._pending.pop(txn_id, [])
            self._committed.extend(records)
            commit = CommitRecord(self._next_lsn, txn_id)
            self._next_lsn += 1
            self.commits += 1
            return commit

    def abort(self, txn_id: int) -> int:
        """Discard a transaction's records ("no undo is needed").

        Returns the number of records removed.
        """
        with self._mutex:
            removed = self._pending.pop(txn_id, [])
            self.aborts += 1
            return len(removed)

    def drain_committed(self) -> List[LogRecord]:
        """Hand all committed records to the log device, removing them.

        Order is LSN order, preserving the write sequence across
        transactions.
        """
        with self._mutex:
            drained = sorted(self._committed, key=lambda r: r.lsn)
            self._committed = []
            return drained

    @property
    def committed_backlog(self) -> int:
        """Committed records not yet drained by the log device."""
        with self._mutex:
            return len(self._committed)

    @property
    def pending_transactions(self) -> int:
        """Active transactions with buffered records."""
        with self._mutex:
            return len(self._pending)

    def survive_crash(self) -> "StableLogBuffer":
        """A crash of main memory: the stable buffer persists as-is.

        Pending (uncommitted) records are dropped — their transactions
        died with the crash and, under deferred updates, never touched
        the database.
        """
        with self._mutex:
            self._pending.clear()
            return self
